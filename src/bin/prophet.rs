//! `prophet` — command-line front end for the Fuzzy Prophet engine.
//!
//! ```text
//! prophet <scenario.sql> [options]
//!
//! options:
//!   --mode online|offline|both   which interface to run (default: both,
//!                                gated on which directives the script has)
//!   --worlds N                   Monte Carlo worlds per point (default 300)
//!   --set name=value             set a slider before rendering (repeatable)
//!   --no-fingerprints            disable fingerprint reuse (baseline mode)
//!   --csv                        emit series/answers as CSV instead of text
//!   --map p1,p2                  render the Figure-4 exploration map over
//!                                two parameters after an offline run
//!   --demo                       run the built-in Figure-2 scenario
//! ```
//!
//! The bundled models (`DemandModel`, `CapacityModel`, `RevenueModel`,
//! `InventoryModel`, `QueueModel`) are pre-registered; scenarios reference
//! them by name.

use std::process::ExitCode;

use fuzzy_prophet::prelude::*;
use fuzzy_prophet::render::{ascii_chart, series_csv};
use fuzzy_prophet::scenario::FIGURE2_SQL;
use prophet_models::full_registry;

struct Options {
    scenario_path: Option<String>,
    demo: bool,
    mode: Mode,
    worlds: usize,
    sets: Vec<(String, i64)>,
    fingerprints: bool,
    csv: bool,
    map: Option<(String, String)>,
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Online,
    Offline,
    Both,
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("prophet: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scenario_path: None,
        demo: false,
        mode: Mode::Both,
        worlds: 300,
        sets: Vec::new(),
        fingerprints: true,
        csv: false,
        map: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                opts.mode = match args.next().as_deref() {
                    Some("online") => Mode::Online,
                    Some("offline") => Mode::Offline,
                    Some("both") => Mode::Both,
                    other => {
                        return Err(format!("--mode needs online|offline|both, got {other:?}"))
                    }
                };
            }
            "--worlds" => {
                opts.worlds = args
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&w| w > 0)
                    .ok_or("--worlds needs a positive integer")?;
            }
            "--set" => {
                let spec = args.next().ok_or("--set needs name=value")?;
                let (name, value) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--set `{spec}` is not name=value"))?;
                let value: i64 = value
                    .parse()
                    .map_err(|_| format!("--set `{spec}`: bad integer"))?;
                opts.sets
                    .push((name.trim_start_matches('@').to_owned(), value));
            }
            "--no-fingerprints" => opts.fingerprints = false,
            "--csv" => opts.csv = true,
            "--map" => {
                let spec = args.next().ok_or("--map needs p1,p2")?;
                let (a, b) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("--map `{spec}` is not p1,p2"))?;
                opts.map = Some((a.trim().to_owned(), b.trim().to_owned()));
            }
            "--demo" => opts.demo = true,
            "--help" | "-h" => {
                println!("usage: prophet <scenario.sql> [--demo] [--mode online|offline|both]");
                println!("               [--worlds N] [--set name=value]... [--no-fingerprints]");
                println!("               [--csv] [--map p1,p2]");
                std::process::exit(0);
            }
            path if !path.starts_with('-') => opts.scenario_path = Some(path.to_owned()),
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;

    let source = if opts.demo {
        FIGURE2_SQL.to_owned()
    } else {
        let path = opts
            .scenario_path
            .as_ref()
            .ok_or("no scenario file given (or pass --demo); see --help")?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
    };
    let scenario = Scenario::parse(&source).map_err(|e| e.to_string())?;
    let config = EngineConfig {
        worlds_per_point: opts.worlds,
        fingerprints_enabled: opts.fingerprints,
        ..EngineConfig::default()
    };

    let has_graph = scenario.script().graph.is_some();
    let has_optimize = scenario.script().optimize.is_some();

    // One service instance for both modes: the online render and the
    // offline sweep share the scenario's basis store, so whichever runs
    // second reuses the first one's simulations.
    let prophet = Prophet::builder()
        .scenario(SCENARIO, scenario)
        .registry(full_registry())
        .config(config)
        .build()
        .map_err(|e| e.to_string())?;

    if opts.mode != Mode::Offline {
        if has_graph {
            run_online(&prophet, &opts)?;
        } else if opts.mode == Mode::Online {
            return Err("scenario has no GRAPH OVER directive; online mode unavailable".into());
        }
    }
    if opts.mode != Mode::Online {
        if has_optimize {
            run_offline(&prophet, &opts)?;
        } else if opts.mode == Mode::Offline {
            return Err("scenario has no OPTIMIZE directive; offline mode unavailable".into());
        }
    }
    Ok(())
}

/// The service-local name the CLI registers its single scenario under.
const SCENARIO: &str = "scenario";

fn run_online(prophet: &Prophet, opts: &Options) -> Result<(), String> {
    let mut session = prophet.online(SCENARIO).map_err(|e| e.to_string())?;
    for (name, value) in &opts.sets {
        session.set_param(name, *value).map_err(|e| e.to_string())?;
    }
    let report = session.refresh().map_err(|e| e.to_string())?;

    if opts.csv {
        let series: Vec<_> = session.graph().iter().collect();
        print!("{}", series_csv(&series));
        return Ok(());
    }
    println!("== online: {} ==", describe_sliders(&session));
    println!(
        "render: {} weeks ({} simulated / {} mapped / {} cached) in {:?}",
        report.weeks_total,
        report.weeks_simulated,
        report.weeks_mapped,
        report.weeks_cached,
        report.wall
    );
    let series: Vec<_> = session.graph().iter().collect();
    println!("{}", ascii_chart(&series, 100, 18));
    println!("engine: {}", session.engine().metrics());
    Ok(())
}

fn describe_sliders(session: &OnlineSession) -> String {
    session
        .sliders()
        .iter()
        .map(|(n, v)| format!("@{n}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn run_offline(prophet: &Prophet, opts: &Options) -> Result<(), String> {
    let optimizer = prophet.offline(SCENARIO).map_err(|e| e.to_string())?;
    let scenario = prophet.scenario(SCENARIO).map_err(|e| e.to_string())?;

    let mut map = match &opts.map {
        Some((a, b)) => {
            let pa = scenario
                .script()
                .param(a)
                .ok_or_else(|| format!("--map: unknown parameter @{a}"))?
                .clone();
            let pb = scenario
                .script()
                .param(b)
                .ok_or_else(|| format!("--map: unknown parameter @{b}"))?
                .clone();
            Some(ExplorationMap::new(&pa, &pb))
        }
        None => None,
    };

    let report = optimizer
        .run_with_observer(|_, full, outcome| {
            if let Some(m) = map.as_mut() {
                m.record(full, outcome);
            }
        })
        .map_err(|e| e.to_string())?;

    if opts.csv {
        println!(
            "rank,feasible,{},{}",
            join_params(&report),
            join_constraints(&report)
        );
        for (i, a) in report.answers.iter().enumerate() {
            let params: Vec<String> = a.point.iter().map(|(_, v)| v.to_string()).collect();
            let constraints: Vec<String> =
                a.constraint_values.iter().map(|v| v.to_string()).collect();
            println!(
                "{},{},{},{}",
                i + 1,
                a.feasible,
                params.join(","),
                constraints.join(",")
            );
        }
        return Ok(());
    }

    println!(
        "== offline: {} groups ({} feasible) in {:?} ==",
        report.groups_total,
        report.feasible().count(),
        report.wall
    );
    match &report.best {
        Some(best) => {
            let desc: Vec<String> = best
                .point
                .iter()
                .map(|(n, v)| format!("@{n}={v}"))
                .collect();
            println!(
                "best: {} (constraints: {:?})",
                desc.join(" "),
                best.constraint_values
            );
        }
        None => println!("best: none — no feasible group"),
    }
    println!("engine: {}", report.metrics);
    if let Some(m) = map {
        println!("\n{}", m.render_ascii());
    }
    Ok(())
}

fn join_params(report: &OfflineReport) -> String {
    report
        .answers
        .first()
        .map(|a| {
            a.point
                .iter()
                .map(|(n, _)| n.to_owned())
                .collect::<Vec<_>>()
                .join(",")
        })
        .unwrap_or_default()
}

fn join_constraints(report: &OfflineReport) -> String {
    report
        .answers
        .first()
        .map(|a| {
            (0..a.constraint_values.len())
                .map(|i| format!("constraint{}", i + 1))
                .collect::<Vec<_>>()
                .join(",")
        })
        .unwrap_or_default()
}
