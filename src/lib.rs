//! Workspace facade for the Fuzzy Prophet reproduction.
//!
//! This crate exists so that the repository's top-level `examples/` and
//! `tests/` directories can exercise the whole stack through one dependency.
//! All functionality lives in the member crates; this facade only re-exports.

pub use fuzzy_prophet;
pub use prophet_data;
pub use prophet_fingerprint;
pub use prophet_mc;
pub use prophet_models;
pub use prophet_sql;
pub use prophet_vg;
