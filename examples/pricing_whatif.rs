//! Pricing what-if: a non-datacenter enterprise scenario on the same
//! engine — choose a subscription price and a promo week under uncertain
//! subscriber growth and price elasticity.
//!
//! Demonstrates that Fuzzy Prophet's DSL + fingerprint machinery is not
//! specific to the demo models: `RevenueModel` is just another registered
//! VG-Function.
//!
//! ```sh
//! cargo run --release --example pricing_whatif
//! ```

use fuzzy_prophet::prelude::*;
use fuzzy_prophet::render::{ascii_chart, series_csv};
use prophet_models::full_registry;
use prophet_models::scenarios::PRICING_WHATIF;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prophet = Prophet::builder()
        .scenario_sql("pricing", PRICING_WHATIF)?
        .registry(full_registry())
        .config(EngineConfig {
            worlds_per_point: 250,
            ..EngineConfig::default()
        })
        .build()?;

    // Online view: sweep revenue across the price axis for a mid-year week.
    let mut session = prophet.online("pricing")?;
    session.set_param("week", 24)?;
    println!("=== Revenue vs price (week 24) ===");
    let series: Vec<_> = session.graph().iter().collect();
    println!("{}", ascii_chart(&series, 90, 16));
    print!("{}", series_csv(&series));

    // The revenue curve is a downward parabola in price: the maximizer is
    // interior, the miss probability explodes at both extremes.
    let revenue = session.series("revenue").expect("declared in GRAPH");
    let (best_price, best_revenue) = revenue
        .points
        .iter()
        .map(|p| (p.x, p.y))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("series populated");
    println!("\nrevenue-maximizing price at week 24: {best_price} (≈ {best_revenue:.0}/week)");

    // Offline: the highest price whose worst-case miss risk stays under 50%
    // across the whole year. The optimizer shares the online session's
    // basis store, so the week-24 column is already warm.
    let optimizer = prophet.offline("pricing")?;
    let report = optimizer.run()?;
    println!(
        "\nOPTIMIZE: highest sustainable price across the year: {:?}",
        report.best.as_ref().map(|b| b.point.get("price").unwrap())
    );
    println!("engine: {}", report.metrics);
    Ok(())
}
