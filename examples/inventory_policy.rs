//! Inventory policy what-if: pick an (s, Q) reorder policy under uncertain
//! demand with a delivery lead time.
//!
//! A third domain on the same engine — the scenario asks for the *leanest*
//! policy (lowest reorder point, i.e. least working capital) that keeps the
//! stockout probability acceptable across the year, and shows how the
//! materialized `results` relation of the paper can be exported.
//!
//! ```sh
//! cargo run --release --example inventory_policy
//! ```

use fuzzy_prophet::prelude::*;
use prophet_mc::{summary_table, SampleSet};
use prophet_models::full_registry;
use prophet_models::scenarios::INVENTORY_POLICY;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prophet = Prophet::builder()
        .scenario_sql("inventory", INVENTORY_POLICY)?
        .registry(full_registry())
        .config(EngineConfig {
            worlds_per_point: 200,
            ..EngineConfig::default()
        })
        .build()?;

    println!("=== Inventory policy optimization ===\n");
    let optimizer = prophet.offline("inventory")?;
    let report = optimizer.run()?;
    match &report.best {
        Some(best) => println!(
            "leanest viable policy: reorder at {} units, order {} units \
             (worst-week stockout probability {:.3})",
            best.point.get("reorder_point").unwrap(),
            best.point.get("reorder_qty").unwrap(),
            best.constraint_values[0]
        ),
        None => println!("no policy in the grid keeps stockout risk under 5%"),
    }
    println!(
        "{} policies evaluated ({} feasible) in {:?}; engine: {}\n",
        report.groups_total,
        report.feasible().count(),
        report.wall,
        report.metrics
    );

    // Export the aggregated `results` relation for the best policy across
    // the year — the paper's INTO results, materialized.
    if let Some(best) = &report.best {
        // Same service, same shared store: every point below was already
        // simulated by the sweep, so this export is pure cache hits.
        let engine = prophet.engine("inventory")?;
        let mut sets: Vec<SampleSet> = Vec::new();
        for week in (4..=52).step_by(4) {
            let point = best.point.with("week", week);
            let (samples, _) = engine.evaluate(&point)?;
            sets.push(samples);
        }
        let table = summary_table(&sets)?;
        println!("=== results (aggregated) for the chosen policy ===");
        println!("{table}");
        println!("-- as CSV --");
        print!("{}", prophet_data::csv::to_csv(&table)?);
    }
    Ok(())
}
