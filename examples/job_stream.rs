//! Asynchronous jobs: submit a sweep, watch it stream, overtake it with
//! interactive work, cancel it, and reuse what it published.
//!
//! The paper's posture is *interactive* exploration — heavy Monte Carlo
//! work runs behind the scenes while the user keeps moving sliders. This
//! example drives that posture through the job API:
//!
//! 1. a whole OPTIMIZE sweep is submitted at `Priority::Low` and consumed
//!    incrementally (chunk events + progress polling, no blocking);
//! 2. a `Priority::High` graph refresh submitted *behind* it returns
//!    first — its chunks overtake the sweep's on the shared scheduler;
//! 3. the sweep is cancelled mid-flight: unstarted chunks are dropped,
//!    in-flight chunks finish and publish;
//! 4. a resubmitted sweep reuses everything the cancelled one published
//!    and returns the exact full answer.
//!
//! ```sh
//! cargo run --release --example job_stream
//! ```

use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;
use prophet_models::scenarios::figure2_coarse_sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prophet = Prophet::builder()
        .scenario_sql("capacity", &figure2_coarse_sql(0.05))?
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: 32,
            threads: 4,
            ..EngineConfig::default()
        })
        .build()?;

    // 1. Submit the sweep; the call returns immediately with a handle.
    let sweep = prophet.submit(JobSpec::sweep("capacity").with_priority(Priority::Low))?;
    println!(
        "submitted sweep job #{} at {:?}: {} points across {} workers",
        sweep.id(),
        sweep.priority(),
        sweep.progress().points_total,
        prophet.scheduler().workers(),
    );

    // 2. Interactive work submitted behind it finishes first.
    let sliders =
        ParamPoint::from_pairs([("purchase1", 16i64), ("purchase2", 40), ("feature", 12)]);
    let refresh =
        prophet.submit(JobSpec::refresh("capacity", sliders).with_priority(Priority::High))?;
    let weeks = refresh.wait()?.into_points()?;
    let overtaken = sweep.progress();
    println!(
        "high-priority refresh served {} weeks while the sweep was {:.0}% done",
        weeks.len(),
        overtaken.fraction() * 100.0,
    );

    // 3. Stream the sweep until a third of it is done, then cancel.
    let mut streamed = 0usize;
    for event in sweep.events() {
        match event {
            JobEvent::Chunk(update) => {
                streamed += update.results.len();
                let progress = sweep.progress();
                if streamed % 512 < update.results.len() {
                    println!(
                        "  … {:>5}/{} points ({} simulated, {} mapped, {} cached)",
                        progress.points_done,
                        progress.points_total,
                        progress.metrics.points_simulated,
                        progress.metrics.points_mapped,
                        progress.metrics.points_cached,
                    );
                }
                if progress.fraction() > 0.33 {
                    sweep.cancel();
                }
            }
            JobEvent::Cancelled => {
                println!(
                    "sweep cancelled after {} of {} points; {} basis entries published",
                    sweep.progress().points_done,
                    sweep.progress().points_total,
                    prophet.basis_len("capacity")?,
                );
                break;
            }
            JobEvent::Final(_) => {
                println!("sweep finished before the cancel landed");
                break;
            }
            JobEvent::Failed(err) => return Err(err.into()),
        }
    }

    // 4. Resubmit: the published bases are reused, the answer is exact.
    let report = prophet
        .submit(JobSpec::sweep("capacity"))?
        .wait()?
        .into_sweep()?;
    println!(
        "resubmitted sweep: {} of {} groups feasible, best {} \
         ({} of {} points reused from the cancelled run)",
        report.feasible().count(),
        report.groups_total,
        report.best.as_ref().map_or_else(
            || "none at this threshold".to_string(),
            |b| b.point.to_string()
        ),
        report.metrics.points_cached + report.metrics.points_mapped,
        report.metrics.points_total(),
    );
    println!("\nper-scenario store stats:");
    for (name, stats) in prophet.basis_stats_all() {
        println!(
            "  {name}: {} hits / {} misses / {} in-flight waits",
            stats.hits, stats.misses, stats.inflight_waits
        );
    }
    Ok(())
}
