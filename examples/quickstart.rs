//! Quickstart: stand up a `Prophet` service on the paper's Figure-2
//! scenario, run it in both modes, and show a second session starting warm
//! off the first session's shared basis store.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fuzzy_prophet::prelude::*;
use fuzzy_prophet::render::ascii_chart;
use prophet_models::demo_registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The scenario, exactly as printed in the paper, registered with a
    //    long-lived service.
    let scenario = Scenario::figure2()?;
    println!("=== Scenario (paper Figure 2) ===");
    println!("{}", scenario.source().trim());
    println!(
        "\nparameter space: {} points ({} parameters)\n",
        scenario.parameter_space_size(),
        scenario.script().params.len()
    );

    let prophet = Prophet::builder()
        .scenario("figure2", scenario.clone())
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: 300,
            ..EngineConfig::default()
        })
        .build()?;

    // 2. Online mode: set the sliders the demo uses and render the graph.
    let mut session = prophet.online("figure2")?;
    session.set_param("purchase1", 16)?;
    session.set_param("purchase2", 36)?;
    session.set_param("feature", 12)?;
    let report = session.refresh()?;
    println!("=== Online mode (Figure 3) ===");
    println!(
        "refresh: {} weeks ({} simulated, {} mapped, {} cached) in {:?}",
        report.weeks_total,
        report.weeks_simulated,
        report.weeks_mapped,
        report.weeks_cached,
        report.wall
    );
    let series: Vec<_> = session.graph().iter().collect();
    println!("{}", ascii_chart(&series, 100, 18));

    // A second adjustment re-renders only part of the graph (§3.2).
    let adjust = session.set_param("purchase2", 44)?;
    println!(
        "slider moved (@purchase2 36 → 44): re-rendered {:.0}% of the graph ({} of {} weeks)",
        adjust.rerender_fraction() * 100.0,
        adjust.weeks_simulated,
        adjust.weeks_total
    );

    // A *second session* shares the scenario's basis store: its first
    // render re-uses everything the first session computed.
    let mut second = prophet.online("figure2")?;
    second.set_param("purchase1", 16)?;
    second.set_param("purchase2", 44)?;
    second.set_param("feature", 12)?;
    let warm = second.refresh()?;
    println!(
        "second session's first render: {} simulated / {} reused of {} weeks \
         (shared store holds {} entries)\n",
        warm.weeks_simulated,
        warm.weeks_reused(),
        warm.weeks_total,
        prophet.basis_len("figure2")?
    );

    // 3. Offline mode: run the OPTIMIZE directive. The full Figure-2 grid
    // has 31 164 points — fine for a batch job, long for a quickstart — so
    // this demo coarsens the sweep (weeks step 2, purchases step 8) while
    // keeping the scenario and its answer structure identical. Run
    // `--example capacity_planning` or the `experiments` binary for the
    // full-fidelity sweeps.
    println!("=== Offline mode (OPTIMIZE, coarsened grid) ===");
    let coarse_src = scenario
        .source()
        .replace("RANGE 0 TO 52 STEP BY 1", "RANGE 0 TO 52 STEP BY 2")
        .replace("RANGE 0 TO 52 STEP BY 4", "RANGE 0 TO 52 STEP BY 8")
        .replace("< 0.01", "< 0.05");
    let batch = Prophet::builder()
        .scenario_sql("figure2-coarse", &coarse_src)?
        .registry(demo_registry())
        .worlds_per_point(120)
        .build()?;
    let optimizer = batch.offline("figure2-coarse")?;
    let result = optimizer.run()?;
    println!(
        "swept {} groups in {:?} — engine: {}",
        result.groups_total, result.wall, result.metrics
    );
    match &result.best {
        Some(best) => {
            println!(
                "latest safe purchase plan: purchase1=week {}, purchase2=week {}, feature=week {} \
                 (max overload risk {:.3})",
                best.point.get("purchase1").unwrap_or(-1),
                best.point.get("purchase2").unwrap_or(-1),
                best.point.get("feature").unwrap_or(-1),
                best.constraint_values[0]
            );
        }
        None => println!("no feasible plan under the 5% overload constraint"),
    }
    Ok(())
}
