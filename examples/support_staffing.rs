//! Support staffing: a queueing what-if on the Fuzzy Prophet engine.
//!
//! Ticket volume grows ~1.5% per week; each agent resolves a Poisson number
//! of tickets per hour. The scenario asks: per quarter, how many agents
//! keep the average backlog under 25 tickets — and what is the cheapest
//! (smallest) such team?
//!
//! Structurally this is the paper's risk-vs-cost-of-ownership trade-off in
//! a second domain: staffing late saves salary but risks an exploding
//! backlog, exactly like deferring hardware purchases.
//!
//! ```sh
//! cargo run --release --example support_staffing
//! ```

use fuzzy_prophet::prelude::*;
use fuzzy_prophet::render::ascii_chart;
use prophet_models::full_registry;
use prophet_models::scenarios::SUPPORT_STAFFING;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prophet = Prophet::builder()
        .scenario_sql("staffing", SUPPORT_STAFFING)?
        .registry(full_registry())
        .config(EngineConfig {
            worlds_per_point: 200,
            ..EngineConfig::default()
        })
        .build()?;

    // Online: watch the backlog across the year for two staffing levels.
    let mut session = prophet.online("staffing")?;
    for agents in [8i64, 14] {
        let report = session.set_param("agents", agents)?;
        println!("=== Backlog across the year with {agents} agents ===");
        println!(
            "(refresh: {} simulated / {} mapped / {} cached weeks)",
            report.weeks_simulated, report.weeks_mapped, report.weeks_cached
        );
        let series: Vec<_> = session.graph().iter().collect();
        println!("{}", ascii_chart(&series, 80, 12));
    }

    // Offline: smallest team whose worst-quarter breach probability < 20%.
    // Shares the online session's basis store, so the two staffing levels
    // rendered above are already warm.
    let optimizer = prophet.offline("staffing")?;
    let report = optimizer.run()?;
    match &report.best {
        Some(best) => println!(
            "cheapest viable team: {} agents (worst-week breach probability {:.3})",
            best.point.get("agents").unwrap(),
            best.constraint_values[0]
        ),
        None => println!("no staffing level under 21 agents satisfies the breach constraint"),
    }
    println!(
        "swept {} staffing levels in {:?} — engine: {}",
        report.groups_total, report.wall, report.metrics
    );
    Ok(())
}
