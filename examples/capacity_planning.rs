//! Capacity planning: the demo's offline walkthrough (§3.3) in depth.
//!
//! Runs the Figure-2 OPTIMIZE query at both the SQL text's 1% threshold and
//! the prose's 5% threshold, renders the Figure-4 exploration map showing
//! which (purchase1, purchase2) cells were computed vs fingerprint-mapped,
//! and compares engine work with fingerprints on and off.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;
use prophet_models::scenarios::figure2_coarse_sql;

fn run_threshold(
    threshold: f64,
    fingerprints: bool,
) -> Result<(OfflineReport, ExplorationMap), Box<dyn std::error::Error>> {
    // Smaller grid than Figure 2 (weeks step 2, purchases step 8) so the
    // example finishes in seconds while preserving the experiment's shape.
    let scenario = Scenario::parse(&figure2_coarse_sql(threshold))?;
    let p1 = scenario.script().param("purchase1").unwrap().clone();
    let p2 = scenario.script().param("purchase2").unwrap().clone();
    let optimizer = Prophet::builder()
        .scenario("capacity", scenario)
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: 150,
            fingerprints_enabled: fingerprints,
            ..EngineConfig::default()
        })
        .build()?
        .offline("capacity")?;
    let mut map = ExplorationMap::new(&p1, &p2);
    let report = optimizer.run_with_observer(|_, full, outcome| {
        map.record(full, outcome);
    })?;
    Ok((report, map))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Offline optimization: risk vs cost of ownership (§3.3) ===\n");
    for threshold in [0.01, 0.05] {
        let (report, _) = run_threshold(threshold, true)?;
        println!("overload risk threshold {:.0}%:", threshold * 100.0);
        match &report.best {
            Some(best) => println!(
                "  latest safe purchases: purchase1=week {}, purchase2=week {} (feature week {}), \
                 max E[overload] = {:.4}",
                best.point.get("purchase1").unwrap(),
                best.point.get("purchase2").unwrap(),
                best.point.get("feature").unwrap(),
                best.constraint_values[0],
            ),
            None => println!("  no feasible plan"),
        }
        println!(
            "  {} groups, {} feasible, wall {:?}",
            report.groups_total,
            report.feasible().count(),
            report.wall
        );
        println!("  engine: {}\n", report.metrics);
    }

    println!("=== Figure 4: fingerprint mappings across (purchase1, purchase2) ===\n");
    let (report, map) = run_threshold(0.05, true)?;
    println!("{}", map.render_ascii());
    let (computed, mapped, cached, pending) = map.tally();
    println!(
        "cells: {computed} computed, {mapped} mapped, {cached} cached, {pending} pending \
         (reuse fraction {:.0}%)\n",
        map.reuse_fraction() * 100.0
    );

    println!("=== Fingerprints on vs off ===\n");
    let (without, _) = run_threshold(0.05, false)?;
    let with_m = &report.metrics;
    let without_m = &without.metrics;
    println!(
        "with fingerprints:    {} worlds simulated, {} probe evaluations, wall {:?}",
        with_m.worlds_simulated, with_m.probe_evaluations, report.wall
    );
    println!(
        "without fingerprints: {} worlds simulated, {} probe evaluations, wall {:?}",
        without_m.worlds_simulated, without_m.probe_evaluations, without.wall
    );
    let saved = 1.0 - (with_m.worlds_simulated as f64 / without_m.worlds_simulated.max(1) as f64);
    println!(
        "Monte Carlo worlds avoided by fingerprinting: {:.0}%",
        saved * 100.0
    );
    Ok(())
}
