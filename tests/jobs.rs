//! Differential and behavioural suite for the asynchronous job API.
//!
//! The scheduled pipeline is *defined* by bit-identity with the blocking
//! executor (`Engine::evaluate_batch` / `OfflineOptimizer::run_with_observer`),
//! and this file is the contract's enforcement:
//!
//! * `submit(Sweep).wait()` against the blocking sweep across the bundled
//!   OPTIMIZE scenarios — identical best plan, per-group answers, chosen
//!   mapping sources (streamed chunk outcomes), and work counters — for
//!   chunk sizes {1, default, whole-sweep} and 1 vs 8 workers;
//! * `submit(Points)` against `evaluate_batch` across all five bundled
//!   scenarios — bit-identical samples and outcomes per point;
//! * two concurrent jobs at different priorities, each bit-identical to
//!   its blocking run, plus priority-overtaking;
//! * the cancellation satellites: cancel drops unstarted chunks (and a
//!   resubmit reuses the published bases), cancel racing
//!   `SharedBasisStore::clear`, and a dropped handle detaching (job still
//!   completes, store state identical);
//! * the progressive-estimate fix: partial progress is published to the
//!   store and handed back to the guide instead of silently discarded.

use std::collections::HashMap;

use fuzzy_prophet::prelude::*;
use prophet_mc::guide::Guide;
use prophet_mc::GridGuide;
use prophet_models::scenarios::{
    figure2_coarse_sql, INVENTORY_POLICY, PRICING_WHATIF, SUPPORT_STAFFING,
};
use prophet_models::{demo_registry, full_registry};

#[derive(Clone, Copy)]
enum Reg {
    Demo,
    Full,
}

impl Reg {
    fn build(self) -> prophet_vg::VgRegistry {
        match self {
            Reg::Demo => demo_registry(),
            Reg::Full => full_registry(),
        }
    }
}

fn config(worlds: usize) -> EngineConfig {
    EngineConfig {
        worlds_per_point: worlds,
        threads: 2,
        ..EngineConfig::default()
    }
}

fn service(
    name: &str,
    src: &str,
    reg: Reg,
    cfg: EngineConfig,
    workers: usize,
    chunk: usize,
) -> Prophet {
    Prophet::builder()
        .scenario_sql(name, src)
        .unwrap()
        .registry(reg.build())
        .config(cfg)
        .scheduler(SchedulerConfig {
            workers,
            chunk_points: chunk,
            ..SchedulerConfig::default()
        })
        .build()
        .unwrap()
}

/// Run a scheduled sweep, collecting the streamed per-point outcomes and
/// the final report.
fn run_scheduled_sweep(
    prophet: &Prophet,
    name: &str,
    priority: Priority,
) -> (OfflineReport, HashMap<ParamPoint, EvalOutcome>) {
    let handle = prophet
        .submit(JobSpec::sweep(name).with_priority(priority))
        .unwrap();
    collect_sweep(handle)
}

fn collect_sweep(handle: JobHandle) -> (OfflineReport, HashMap<ParamPoint, EvalOutcome>) {
    let mut outcomes = HashMap::new();
    let mut report = None;
    for event in handle.events() {
        match event {
            JobEvent::Chunk(update) => {
                for (point, outcome) in update.results {
                    outcomes.insert(point, outcome);
                }
            }
            JobEvent::Final(output) => report = Some(output.into_sweep().unwrap()),
            other => panic!("unexpected event {other:?}"),
        }
    }
    (report.expect("sweep must finish"), outcomes)
}

/// Blocking reference sweep on a private engine (no scheduler involved).
fn run_blocking_sweep(
    src: &str,
    reg: Reg,
    cfg: EngineConfig,
) -> (OfflineReport, HashMap<ParamPoint, EvalOutcome>) {
    let engine = Engine::new(&Scenario::parse(src).unwrap(), reg.build(), cfg).unwrap();
    let optimizer = OfflineOptimizer::open(engine).unwrap();
    let mut outcomes = HashMap::new();
    let report = optimizer
        .run_with_observer(|_, full, outcome| {
            outcomes.insert(full.clone(), outcome.clone());
        })
        .unwrap();
    (report, outcomes)
}

fn assert_sweeps_identical(
    label: &str,
    scheduled: &(OfflineReport, HashMap<ParamPoint, EvalOutcome>),
    reference: &(OfflineReport, HashMap<ParamPoint, EvalOutcome>),
) {
    let (sched, sched_outcomes) = scheduled;
    let (blocking, blocking_outcomes) = reference;
    assert_eq!(
        sched.answers, blocking.answers,
        "{label}: per-group answers"
    );
    assert_eq!(sched.best, blocking.best, "{label}: sweep optimum");
    assert_eq!(sched.groups_total, blocking.groups_total, "{label}");
    assert_eq!(
        sched_outcomes, blocking_outcomes,
        "{label}: chosen mapping sources / outcomes per point"
    );
    // Work counters (not timings) must agree exactly too.
    let (a, b) = (&sched.metrics, &blocking.metrics);
    assert_eq!(a.points_simulated, b.points_simulated, "{label}");
    assert_eq!(a.points_mapped, b.points_mapped, "{label}");
    assert_eq!(a.points_cached, b.points_cached, "{label}");
    assert_eq!(a.worlds_simulated, b.worlds_simulated, "{label}");
    assert_eq!(a.probe_evaluations, b.probe_evaluations, "{label}");
    assert_eq!(a.candidates_scanned, b.candidates_scanned, "{label}");
    assert_eq!(a.candidates_pruned, b.candidates_pruned, "{label}");
    assert_eq!(a.batch_probes, b.batch_probes, "{label}");
}

// ------------------------------------------------------------ differential

/// The bundled OPTIMIZE scenarios tractable for a full matrix sweep.
fn sweep_scenarios() -> Vec<(&'static str, String, Reg)> {
    vec![
        ("inventory", INVENTORY_POLICY.to_string(), Reg::Full),
        ("pricing", PRICING_WHATIF.to_string(), Reg::Full),
        ("staffing", SUPPORT_STAFFING.to_string(), Reg::Full),
    ]
}

#[test]
fn scheduled_sweep_matches_blocking_at_every_chunk_size_and_worker_count() {
    for (name, src, reg) in sweep_scenarios() {
        let cfg = config(8);
        let reference = run_blocking_sweep(&src, reg, cfg);
        // chunk sizes: one point, the default, the whole sweep in one
        // chunk; workers: sequential vs heavily parallel.
        for (workers, chunk) in [
            (1, 1),
            (8, 1),
            (1, 16),
            (8, 16),
            (1, usize::MAX),
            (8, usize::MAX),
        ] {
            let prophet = service(name, &src, reg, cfg, workers, chunk);
            let scheduled = run_scheduled_sweep(&prophet, name, Priority::Normal);
            assert_sweeps_identical(
                &format!("{name} workers={workers} chunk={chunk}"),
                &scheduled,
                &reference,
            );
        }
    }
}

#[test]
fn scheduled_coarse_figure2_sweep_matches_blocking() {
    let src = figure2_coarse_sql(0.05);
    let cfg = config(6);
    let reference = run_blocking_sweep(&src, Reg::Demo, cfg);
    let prophet = service("figure2-coarse", &src, Reg::Demo, cfg, 8, 8);
    let scheduled = run_scheduled_sweep(&prophet, "figure2-coarse", Priority::Normal);
    assert_sweeps_identical("figure2-coarse", &scheduled, &reference);
}

/// All five bundled scenarios with a deterministic point sample walking
/// the start of each parameter grid (correlated neighbours included).
fn bundled_point_batches() -> Vec<(&'static str, String, Reg, usize)> {
    vec![
        (
            "figure2",
            Scenario::figure2().unwrap().source().to_string(),
            Reg::Demo,
            40,
        ),
        ("figure2-coarse", figure2_coarse_sql(0.05), Reg::Demo, 40),
        ("inventory", INVENTORY_POLICY.to_string(), Reg::Full, 30),
        ("pricing", PRICING_WHATIF.to_string(), Reg::Full, 30),
        ("staffing", SUPPORT_STAFFING.to_string(), Reg::Full, 30),
    ]
}

#[test]
fn scheduled_point_batches_are_bit_identical_across_all_bundled_scenarios() {
    for (name, src, reg, count) in bundled_point_batches() {
        let scenario = Scenario::parse(&src).unwrap();
        let mut grid = GridGuide::new(&scenario.script().params);
        let points: Vec<ParamPoint> = std::iter::from_fn(|| grid.next_point())
            .take(count)
            .collect();
        let cfg = config(8);

        let engine = Engine::new(&scenario, reg.build(), cfg).unwrap();
        let reference = engine.evaluate_batch(&points).unwrap();

        for (workers, chunk) in [(1, 1), (8, 1), (8, 16), (1, usize::MAX)] {
            let prophet = service(name, &src, reg, cfg, workers, chunk);
            let results = prophet
                .submit(JobSpec::points(name, points.clone()))
                .unwrap()
                .wait()
                .unwrap()
                .into_points()
                .unwrap();
            assert_eq!(results.len(), reference.len());
            for (i, ((samples, outcome), (ref_samples, ref_outcome))) in
                results.iter().zip(&reference).enumerate()
            {
                let label = format!("{name} workers={workers} chunk={chunk} point {i}");
                assert_eq!(outcome, ref_outcome, "{label}: outcome");
                assert_eq!(samples.point(), ref_samples.point(), "{label}");
                for col in scenario.script().select.items.iter().map(|it| &it.alias) {
                    assert_eq!(
                        samples.samples(col),
                        ref_samples.samples(col),
                        "{label}: column {col}"
                    );
                }
            }
        }
    }
}

#[test]
fn refresh_job_matches_blocking_session_refresh() {
    let src = figure2_coarse_sql(0.05);
    let cfg = config(8);

    // Blocking reference: a session over a private engine (no scheduler).
    let engine = Engine::new(&Scenario::parse(&src).unwrap(), Reg::Demo.build(), cfg).unwrap();
    let mut reference = OnlineSession::open(engine).unwrap();
    let ref_report = reference.refresh().unwrap();

    // Scheduled: the equivalent Refresh job at the same (default) sliders.
    let prophet = service("s", &src, Reg::Demo, cfg, 4, 4);
    let results = prophet
        .submit(JobSpec::refresh("s", reference.sliders().clone()).with_priority(Priority::High))
        .unwrap()
        .wait()
        .unwrap()
        .into_points()
        .unwrap();
    assert_eq!(results.len(), ref_report.weeks_total);
    let simulated = results
        .iter()
        .filter(|(_, o)| matches!(o, EvalOutcome::Simulated))
        .count();
    let mapped = results
        .iter()
        .filter(|(_, o)| matches!(o, EvalOutcome::Mapped { .. }))
        .count();
    assert_eq!(simulated, ref_report.weeks_simulated);
    assert_eq!(mapped, ref_report.weeks_mapped);

    // And the service-backed session (itself scheduled) agrees per series.
    let mut scheduled_session = prophet.online("s").unwrap();
    scheduled_session.engine().clear_basis();
    let sched_report = scheduled_session.refresh().unwrap();
    assert_eq!(sched_report.weeks_total, ref_report.weeks_total);
    assert_eq!(sched_report.weeks_simulated, ref_report.weeks_simulated);
    assert_eq!(sched_report.weeks_mapped, ref_report.weeks_mapped);
    for (a, b) in scheduled_session.graph().iter().zip(reference.graph()) {
        assert_eq!(a.xy(), b.xy(), "series {} bit-identical", a.column);
    }
}

#[test]
fn concurrent_jobs_at_different_priorities_are_bit_identical() {
    let src = PRICING_WHATIF;
    let cfg = config(8);
    let reference = run_blocking_sweep(src, Reg::Full, cfg);

    // Two slots of the same scenario → two independent stores, evaluated
    // concurrently at different priorities on one pool.
    let prophet = Prophet::builder()
        .scenario_sql("hi", src)
        .unwrap()
        .scenario_sql("lo", src)
        .unwrap()
        .registry(full_registry())
        .config(cfg)
        .scheduler(SchedulerConfig {
            workers: 4,
            chunk_points: 2,
            ..SchedulerConfig::default()
        })
        .build()
        .unwrap();
    let lo = prophet
        .submit(JobSpec::sweep("lo").with_priority(Priority::Low))
        .unwrap();
    let hi = prophet
        .submit(JobSpec::sweep("hi").with_priority(Priority::High))
        .unwrap();
    let hi_result = collect_sweep(hi);
    let lo_result = collect_sweep(lo);
    assert_sweeps_identical("high-priority concurrent", &hi_result, &reference);
    assert_sweeps_identical("low-priority concurrent", &lo_result, &reference);
}

#[test]
fn high_priority_work_overtakes_a_running_low_priority_sweep() {
    let src = figure2_coarse_sql(0.05);
    let prophet = service("big", &src, Reg::Demo, config(6), 2, 1);

    let lo = prophet
        .submit(JobSpec::sweep("big").with_priority(Priority::Low))
        .unwrap();
    // A tiny interactive batch submitted behind the sweep.
    let point = ParamPoint::from_pairs([
        ("current", 5i64),
        ("purchase1", 0),
        ("purchase2", 0),
        ("feature", 12),
    ]);
    let hi = prophet
        .submit(JobSpec::points("big", vec![point]).with_priority(Priority::High))
        .unwrap();
    let out = hi.wait().unwrap().into_points().unwrap();
    assert_eq!(out.len(), 1);
    assert!(
        !lo.progress().finished,
        "the interactive job must return long before the ~4k-point sweep"
    );
    lo.cancel();
    assert!(matches!(lo.wait(), Err(ProphetError::JobCancelled)));
}

#[test]
fn high_priority_overtakes_at_the_default_worker_resolution() {
    // EngineConfig::default() has threads = 1; the auto-resolved pool
    // must still keep a second lane so an interactive driver starts
    // beside a running sweep driver instead of queueing behind the
    // whole sweep.
    let src = figure2_coarse_sql(0.05);
    let prophet = Prophet::builder()
        .scenario_sql("big", &src)
        .unwrap()
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: 6,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    assert!(
        prophet.scheduler().workers() >= 2,
        "auto resolution keeps an interactive lane"
    );
    let lo = prophet
        .submit(JobSpec::sweep("big").with_priority(Priority::Low))
        .unwrap();
    let point = ParamPoint::from_pairs([
        ("current", 5i64),
        ("purchase1", 0),
        ("purchase2", 0),
        ("feature", 12),
    ]);
    let hi = prophet
        .submit(JobSpec::points("big", vec![point]).with_priority(Priority::High))
        .unwrap();
    hi.wait().unwrap();
    assert!(
        !lo.progress().finished,
        "the 1-point interactive job must return mid-sweep"
    );
    lo.cancel();
    assert!(matches!(lo.wait(), Err(ProphetError::JobCancelled)));
}

#[test]
fn concurrent_jobs_sharing_points_cannot_deadlock() {
    // Regression: a driver helping with its own phase must never start
    // another job's *driver* — the nested job would block on store claims
    // held by the suspended outer frame, wedging both jobs and the
    // worker. Two refreshes of the same scenario at the same sliders are
    // exactly that shape: every point of job B is in flight under job A.
    let src = figure2_coarse_sql(0.05);
    let sliders =
        ParamPoint::from_pairs([("purchase1", 16i64), ("purchase2", 16), ("feature", 12)]);
    for workers in [1, 2] {
        let prophet = service("s", &src, Reg::Demo, config(6), workers, 1);
        for _ in 0..3 {
            let a = prophet
                .submit(JobSpec::refresh("s", sliders.clone()))
                .unwrap();
            let b = prophet
                .submit(JobSpec::refresh("s", sliders.clone()))
                .unwrap();
            let ra = a.wait().unwrap().into_points().unwrap();
            let rb = b.wait().unwrap().into_points().unwrap();
            assert_eq!(ra.len(), rb.len());
            for ((sa, _), (sb, _)) in ra.iter().zip(&rb) {
                assert_eq!(sa.samples("overload"), sb.samples("overload"));
            }
            prophet.clear_basis("s").unwrap();
        }
    }
}

// ----------------------------------------------------------- cancellation

#[test]
fn cancel_drops_unstarted_chunks_and_resubmit_reuses_published_bases() {
    let src = figure2_coarse_sql(0.05);
    let cfg = config(4);
    let prophet = service("sweep", &src, Reg::Demo, cfg, 2, 1);

    let handle = prophet.submit(JobSpec::sweep("sweep")).unwrap();
    // Let real work land, then cancel mid-flight.
    let first = handle.recv().expect("at least one event");
    assert!(matches!(first, JobEvent::Chunk(_)), "{first:?}");
    handle.cancel();
    let mut saw_cancelled = false;
    for event in handle.events() {
        match event {
            JobEvent::Chunk(_) => {}
            JobEvent::Cancelled => saw_cancelled = true,
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert!(saw_cancelled, "cancel must end the job with Cancelled");
    let progress = handle.progress();
    assert!(progress.cancelled && progress.finished);
    assert!(
        progress.points_done < progress.points_total,
        "unstarted chunks were dropped: {progress:?}"
    );
    let published = prophet.basis_len("sweep").unwrap();
    assert!(published > 0, "in-flight chunks finished and published");

    // Resubmit: the published bases are reused, and the answer matches the
    // blocking reference exactly.
    let reference = run_blocking_sweep(&src, Reg::Demo, cfg);
    let resubmitted = run_scheduled_sweep(&prophet, "sweep", Priority::Normal);
    assert!(
        resubmitted.0.metrics.points_cached > 0,
        "resubmit must reuse the cancelled job's published bases"
    );
    assert_eq!(resubmitted.0.answers, reference.0.answers);
    assert_eq!(resubmitted.0.best, reference.0.best);
}

#[test]
fn cancel_races_store_clear_without_corruption() {
    let src = figure2_coarse_sql(0.05);
    let cfg = config(4);
    for round in 0..3 {
        let prophet = service("sweep", &src, Reg::Demo, cfg, 2, 1);
        let handle = prophet.submit(JobSpec::sweep("sweep")).unwrap();
        // Interleave clears with the running job, then cancel mid-chunk.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..20 {
                    prophet.clear_basis("sweep").unwrap();
                    std::thread::yield_now();
                }
            });
            let _ = handle.recv();
            handle.cancel();
        });
        // Drain; the job must end (cancelled, or final if it won the race).
        let mut terminal = None;
        for event in handle.events() {
            match event {
                JobEvent::Chunk(_) => {}
                other => terminal = Some(other),
            }
        }
        match terminal {
            Some(JobEvent::Cancelled) | Some(JobEvent::Final(_)) => {}
            other => panic!("round {round}: job must terminate cleanly, got {other:?}"),
        }
        prophet.scheduler().wait_idle();
        // The store stayed consistent: a fresh blocking evaluation works
        // and the next sweep gives the reference answer.
        let reference = run_blocking_sweep(&src, Reg::Demo, cfg);
        let again = run_scheduled_sweep(&prophet, "sweep", Priority::Normal);
        assert_eq!(again.0.best, reference.0.best, "round {round}");
        assert_eq!(again.0.answers, reference.0.answers, "round {round}");
    }
}

#[test]
fn dropped_handle_detaches_and_the_job_still_completes() {
    let src = PRICING_WHATIF;
    let cfg = config(8);

    // Watched twin: same service shape, handle kept.
    let watched = service("pricing", src, Reg::Full, cfg, 2, 4);
    let (watched_report, _) = run_scheduled_sweep(&watched, "pricing", Priority::Normal);

    // Detached: the handle is dropped immediately after submit.
    let detached = service("pricing", src, Reg::Full, cfg, 2, 4);
    drop(detached.submit(JobSpec::sweep("pricing")).unwrap());
    detached.scheduler().wait_idle();

    // The job ran to completion: store state identical to the watched run.
    assert_eq!(
        detached.basis_len("pricing").unwrap(),
        watched.basis_len("pricing").unwrap(),
        "identical store population"
    );
    // …and a follow-up sweep is fully served from it, with the same answer.
    let follow_up = detached.offline("pricing").unwrap().run().unwrap();
    assert_eq!(follow_up.metrics.worlds_simulated, 0, "everything reused");
    assert_eq!(
        follow_up.metrics.points_cached,
        follow_up.metrics.points_total()
    );
    assert_eq!(follow_up.best, watched_report.best);
    assert_eq!(follow_up.answers, watched_report.answers);
}

// ------------------------------------------------------- handle behaviour

#[test]
fn events_stream_chunks_in_order_then_the_final_answer() {
    let src = PRICING_WHATIF;
    let prophet = service("pricing", src, Reg::Full, config(6), 2, 3);
    let scenario = prophet.scenario("pricing").unwrap().clone();
    let mut grid = GridGuide::new(&scenario.script().params);
    let points: Vec<ParamPoint> = std::iter::from_fn(|| grid.next_point()).take(10).collect();

    let handle = prophet
        .submit(JobSpec::points("pricing", points.clone()))
        .unwrap();
    assert_eq!(handle.priority(), Priority::Normal);
    let mut streamed = Vec::new();
    let mut chunk_ids = Vec::new();
    let mut final_count = 0;
    for event in handle.events() {
        match event {
            JobEvent::Chunk(update) => {
                chunk_ids.push(update.chunk);
                streamed.extend(update.results.into_iter().map(|(p, _)| p));
            }
            JobEvent::Final(output) => {
                final_count += 1;
                let results = output.into_points().unwrap();
                assert_eq!(results.len(), points.len());
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(final_count, 1, "exactly one final event, last");
    assert_eq!(streamed, points, "chunk results stream in batch order");
    let sorted = {
        let mut ids = chunk_ids.clone();
        ids.sort_unstable();
        ids
    };
    assert_eq!(chunk_ids, sorted, "chunk ids are monotone");

    let progress = handle.progress();
    assert!(progress.finished && !progress.cancelled);
    assert_eq!(progress.points_done, points.len() as u64);
    assert_eq!(progress.points_total, points.len() as u64);
    assert!((progress.fraction() - 1.0).abs() < 1e-12);
    assert!(progress.chunks_done >= 1);
    assert_eq!(progress.metrics.points_total(), points.len() as u64);
    assert!(
        progress.metrics.sim_nanos > 0,
        "per-phase nanos surface in progress: {:?}",
        progress.metrics
    );
    assert!(handle.recv().is_none(), "stream is exhausted");
    assert!(handle.try_recv().is_none());
}

#[test]
fn submit_validates_scenarios_and_refresh_sliders() {
    let prophet = Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .scenario_sql("no-graph", INVENTORY_POLICY)
        .unwrap()
        .scenario_sql(
            "no-optimize",
            "DECLARE PARAMETER @w AS RANGE 0 TO 4 STEP BY 1;
DECLARE PARAMETER @k AS SET (1,2);
SELECT @k + 0 AS y INTO r;
GRAPH OVER @w EXPECT y WITH red;",
        )
        .unwrap()
        .registry(full_registry())
        .worlds_per_point(4)
        .build()
        .unwrap();

    assert!(matches!(
        prophet.submit(JobSpec::sweep("nope")),
        Err(ProphetError::UnknownScenario { .. })
    ));
    assert!(matches!(
        prophet.submit(JobSpec::sweep("no-optimize")),
        Err(ProphetError::MissingOptimizeDirective)
    ));
    assert!(matches!(
        prophet.submit(JobSpec::refresh("no-graph", ParamPoint::new())),
        Err(ProphetError::MissingGraphDirective)
    ));
    // Axis, domain and completeness checks mirror set_param's.
    let good = ParamPoint::from_pairs([("purchase1", 16i64), ("purchase2", 36), ("feature", 12)]);
    assert!(prophet
        .submit(JobSpec::refresh("figure2", good.clone()))
        .is_ok());
    assert!(matches!(
        prophet.submit(JobSpec::refresh("figure2", good.with("current", 3))),
        Err(ProphetError::AxisParam { .. })
    ));
    assert!(matches!(
        prophet.submit(JobSpec::refresh("figure2", good.with("purchase1", 3))),
        Err(ProphetError::OutOfDomain { .. })
    ));
    let incomplete = ParamPoint::from_pairs([("purchase1", 16i64)]);
    match prophet.submit(JobSpec::refresh("figure2", incomplete)) {
        Err(ProphetError::MissingSlider { name, required }) => {
            assert!(name == "feature" || name == "purchase2");
            assert_eq!(required, ["feature", "purchase1", "purchase2"]);
        }
        other => panic!("expected MissingSlider, got {other:?}"),
    }
    prophet.scheduler().wait_idle();
}

#[test]
fn basis_stats_all_polls_every_store_in_one_call() {
    let prophet = Prophet::builder()
        .scenario_sql("b-pricing", PRICING_WHATIF)
        .unwrap()
        .scenario_sql("a-staffing", SUPPORT_STAFFING)
        .unwrap()
        .registry(full_registry())
        .worlds_per_point(4)
        .build()
        .unwrap();
    let mut session = prophet.online("b-pricing").unwrap();
    session.refresh().unwrap();

    let all = prophet.basis_stats_all();
    assert_eq!(
        all.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        ["a-staffing", "b-pricing"],
        "sorted by scenario name"
    );
    let by_name: HashMap<_, _> = all.into_iter().collect();
    assert_eq!(
        by_name["b-pricing"],
        prophet.basis_stats("b-pricing").unwrap()
    );
    assert_eq!(by_name["a-staffing"], StoreStatsSnapshot::default());
    assert!(by_name["b-pricing"].hits + by_name["b-pricing"].misses > 0);
}

// ------------------------------------------------- progressive (satellite)

#[test]
fn progressive_partial_progress_is_published_and_queued_with_the_guide() {
    let prophet = Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: 200,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    let mut session = prophet.online("figure2").unwrap();

    // A loose criterion converges far below the 200-world budget.
    let est = session.progressive_expect("overload", 10, 0.2, 20).unwrap();
    assert!(est.converged && !est.used_basis);
    assert!(
        est.worlds_used > 0 && est.worlds_used < 200,
        "early stop expected, got {est:?}"
    );
    // Partial progress is *published*, not discarded…
    assert_eq!(prophet.basis_len("figure2").unwrap(), 1);
    // …and the point went back to the guide as pending work, so idle time
    // deepens it to full depth.
    let deepened = session.prefetch_tick(8).unwrap();
    assert!(deepened >= 1, "guide must hold the partial point");
    let warm = session.progressive_expect("overload", 10, 0.2, 20).unwrap();
    assert!(warm.used_basis, "deepened point now serves from the basis");
    assert_eq!(warm.worlds_used, 0);

    // An unconverged estimate consumes the whole budget, publishes a full
    // matchable entry, and queues nothing (there is nothing left to do).
    let mut cold = prophet.online("figure2").unwrap();
    cold.set_param("purchase2", 36).unwrap(); // move off the warm sliders
    cold.engine().clear_basis();
    let exhausted = cold.progressive_expect("demand", 10, 1e-9, 50).unwrap();
    assert!(!exhausted.converged && !exhausted.used_basis);
    assert_eq!(exhausted.worlds_used, 200, "budget exhausted at full depth");
}

#[test]
fn progressive_deepens_a_previously_partial_entry() {
    let prophet = Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: 200,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    // `demand` is continuous, so its CI half-width is never zero — a
    // huge epsilon converges after the first 20-world chunk, a tiny one
    // can never converge at all.
    let mut session = prophet.online("figure2").unwrap();
    let loose = session.progressive_expect("demand", 10, 1e9, 20).unwrap();
    assert!(loose.converged && loose.worlds_used > 0 && loose.worlds_used < 200);

    // A tighter criterion than the shallow published entry can satisfy
    // must deepen (re-own at full depth), not dead-end on the partial
    // samples forever — and it resumes from the stored prefix, so only
    // the remaining worlds are fresh work.
    let tight = session.progressive_expect("demand", 10, 1e-9, 20).unwrap();
    assert!(!tight.used_basis, "deepening re-owns the point");
    assert_eq!(
        tight.worlds_used,
        200 - loose.worlds_used,
        "only the un-simulated remainder is paid for"
    );
    assert!(!tight.converged);

    // The store now holds the full-depth entry: a third call serves from
    // the basis with zero fresh worlds.
    let warm = session.progressive_expect("demand", 10, 1e9, 20).unwrap();
    assert!(warm.used_basis);
    assert_eq!(warm.worlds_used, 0);
}

#[test]
fn progressive_chunked_samples_match_the_blocking_full_run_prefix() {
    // The world-span chunker must reproduce the exact sample prefix a full
    // simulation produces — the estimate is then identical to feeding a
    // full blocking evaluation chunk by chunk (the pre-PR-5 semantics).
    let cfg = EngineConfig {
        worlds_per_point: 120,
        ..EngineConfig::default()
    };
    let scenario = Scenario::figure2().unwrap();

    let prophet = Prophet::builder()
        .scenario("figure2", scenario.clone())
        .registry(demo_registry())
        .config(cfg)
        .build()
        .unwrap();
    let mut session = prophet.online("figure2").unwrap();
    let progressive = session
        .progressive_expect("overload", 20, 0.15, 30)
        .unwrap();

    // Reference: a full blocking evaluation of the same point, fed into
    // the same accumulator in the same chunks — the pre-PR-5 semantics.
    let engine = Engine::new(&scenario, demo_registry(), cfg).unwrap();
    let mut sliders = session.sliders().clone();
    sliders.set("current".to_owned(), 20);
    let (samples, _) = engine.evaluate(&sliders).unwrap();
    let xs = samples.samples("overload").unwrap();
    let mut acc = prophet_mc::aggregate::Welford::new();
    let mut used = 0;
    let mut converged = false;
    for chunk in xs.chunks(30) {
        acc.extend(chunk);
        used += chunk.len();
        if acc.converged(0.15, 1.96) {
            converged = true;
            break;
        }
    }
    assert!(converged, "the reference must converge below full depth");
    assert_eq!(progressive.worlds_used, used, "same convergence point");
    assert_eq!(
        progressive.estimate,
        acc.mean().unwrap(),
        "estimate computed from the bit-identical sample prefix"
    );
}
