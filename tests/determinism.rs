//! Determinism guarantees across the whole stack.
//!
//! Fingerprinting is only sound if "a fixed sequence of random inputs"
//! (§2) reproducibly drives every model: these tests pin the contract at
//! every layer — raw generators, VG models, the executor, the engine, and
//! both user-facing modes.

use fuzzy_prophet::prelude::*;
use prophet_data::Value;
use prophet_models::{demo_registry, CapacityModel, DemandModel};
use prophet_vg::rng::{Rng64, SeedSequence, Xoshiro256StarStar};
use prophet_vg::SeedManager;

#[test]
fn generators_are_stable_across_constructions() {
    let take = || {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xDEC0DE);
        (0..1000).map(|_| rng.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(take(), take());
}

#[test]
fn canonical_fingerprint_seeds_never_change() {
    // These values pin the canonical fingerprint sequence. If this test
    // fails, every stored fingerprint in every deployment just became
    // garbage — the constant must never change.
    let seq = SeedSequence::fingerprint_default(4);
    assert_eq!(
        seq.seeds(),
        &[
            3_220_344_897_584_144_929,
            10_671_001_446_143_789_449,
            15_948_751_857_155_702_275,
            15_830_066_176_122_234_880,
        ]
    );
}

#[test]
fn models_are_pure_functions_of_seed_and_params() {
    let demand = DemandModel::default();
    let capacity = CapacityModel::default();
    for seed in [1u64, 42, 0xFFFF_FFFF] {
        let mut a = Xoshiro256StarStar::seed_from_u64(seed);
        let mut b = Xoshiro256StarStar::seed_from_u64(seed);
        assert_eq!(
            demand.demand_at(20, 12, &mut a),
            demand.demand_at(20, 12, &mut b)
        );
        let mut a = Xoshiro256StarStar::seed_from_u64(seed);
        let mut b = Xoshiro256StarStar::seed_from_u64(seed);
        assert_eq!(
            capacity.trajectory(52, 8, 24, &mut a),
            capacity.trajectory(52, 8, 24, &mut b)
        );
    }
}

#[test]
fn registry_invocations_are_deterministic() {
    let registry = demo_registry();
    let seeds = SeedManager::new(7);
    let run = || {
        let mut rng = seeds.rng_for(5, "DemandModel", 0);
        registry
            .invoke("DemandModel", &[Value::Int(10), Value::Int(12)], &mut rng)
            .unwrap()
            .cell(0, "demand")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn engine_results_are_identical_across_engines() {
    let build = || {
        Engine::new(
            &Scenario::figure2().unwrap(),
            demo_registry(),
            EngineConfig {
                worlds_per_point: 50,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    };
    let point = ParamPoint::from_pairs([
        ("current", 20i64),
        ("purchase1", 8),
        ("purchase2", 24),
        ("feature", 12),
    ]);
    let (a, _) = build().evaluate(&point).unwrap();
    let (b, _) = build().evaluate(&point).unwrap();
    assert_eq!(a.samples("demand"), b.samples("demand"));
    assert_eq!(a.samples("capacity"), b.samples("capacity"));
    assert_eq!(a.samples("overload"), b.samples("overload"));
}

#[test]
fn engine_thread_count_does_not_change_results() {
    let point = ParamPoint::from_pairs([
        ("current", 30i64),
        ("purchase1", 16),
        ("purchase2", 36),
        ("feature", 36),
    ]);
    let eval = |threads: usize| {
        let engine = Engine::new(
            &Scenario::figure2().unwrap(),
            demo_registry(),
            EngineConfig {
                worlds_per_point: 64,
                threads,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let (s, _) = engine.evaluate(&point).unwrap();
        (
            s.samples("demand").unwrap().to_vec(),
            s.samples("capacity").unwrap().to_vec(),
        )
    };
    assert_eq!(eval(1), eval(3));
    assert_eq!(eval(1), eval(8));
}

#[test]
fn match_index_pruning_is_thread_count_independent() {
    // The indexed match scan prunes in fixed-width waves against completed
    // waves only, so both the chosen sources *and* the scanned/pruned
    // accounting must be identical at every thread count.
    let eval = |threads: usize| {
        let engine = Engine::new(
            &Scenario::figure2().unwrap(),
            demo_registry(),
            EngineConfig {
                worlds_per_point: 32,
                threads,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // A batch per week: mappable neighbours (pre-release feature
        // moves, purchase shifts) plus unrelated points, so the scans mix
        // hits, ties, and misses.
        let mut outcomes = Vec::new();
        for week in [5i64, 10, 15] {
            let batch: Vec<ParamPoint> = vec![
                ParamPoint::from_pairs([
                    ("current", week),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", week),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 36),
                ]),
                ParamPoint::from_pairs([
                    ("current", week),
                    ("purchase1", 4),
                    ("purchase2", 36),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 52 - week),
                    ("purchase1", 0),
                    ("purchase2", 4),
                    ("feature", 44),
                ]),
            ];
            for (samples, outcome) in engine.evaluate_batch(&batch).unwrap() {
                outcomes.push((
                    samples.point().clone(),
                    outcome,
                    samples.samples("demand").map(<[f64]>::to_vec),
                    samples.samples("capacity").map(<[f64]>::to_vec),
                ));
            }
        }
        (outcomes, engine.metrics())
    };

    let (outcomes_1, metrics_1) = eval(1);
    let (outcomes_8, metrics_8) = eval(8);
    assert_eq!(
        outcomes_1, outcomes_8,
        "chosen sources and samples must not depend on the thread count"
    );
    assert!(
        metrics_1.candidates_pruned > 0,
        "the sweep must exercise the index"
    );
    assert_eq!(
        metrics_1.candidates_pruned, metrics_8.candidates_pruned,
        "pruned accounting must not depend on the thread count"
    );
    assert_eq!(
        metrics_1.candidates_scanned, metrics_8.candidates_scanned,
        "scanned accounting must not depend on the thread count"
    );
    assert_eq!(metrics_1.points_mapped, metrics_8.points_mapped);
    assert_eq!(metrics_1.worlds_simulated, metrics_8.worlds_simulated);
}

#[test]
fn online_sessions_replay_identically() {
    let run = || {
        let mut s = OnlineSession::open(
            Engine::new(
                &Scenario::figure2().unwrap(),
                demo_registry(),
                EngineConfig {
                    worlds_per_point: 40,
                    ..EngineConfig::default()
                },
            )
            .unwrap(),
        )
        .unwrap();
        s.set_param("purchase1", 16).unwrap();
        s.set_param("purchase2", 36).unwrap();
        s.refresh().unwrap();
        s.export_series()
    };
    assert_eq!(run(), run());
}

#[test]
fn offline_reports_replay_identically() {
    const SRC: &str = "\
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 8;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @feature AS SET (12);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase1) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @purchase1 FROM results
WHERE MAX(EXPECT overload) < 0.5
GROUP BY purchase1
FOR MAX @purchase1";
    let run = || {
        OfflineOptimizer::open(
            Engine::new(
                &Scenario::parse(SRC).unwrap(),
                demo_registry(),
                EngineConfig {
                    worlds_per_point: 30,
                    ..EngineConfig::default()
                },
            )
            .unwrap(),
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best, b.best);
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.metrics.points_total(), b.metrics.points_total());
}
