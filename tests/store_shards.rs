//! Sharded, persistent basis store (tier 2).
//!
//! Service-level enforcement of the two contracts the sharded store
//! rewrite added in 0.9:
//!
//! * **Shard transparency** — the shard count is a throughput knob, never
//!   a semantic one. A scheduled sweep at shard counts {1, 4, 16} ×
//!   workers {1, 8} must land on bit-identical answers, chosen mapping
//!   sources (streamed per-point outcomes, `Mapped { from }` included),
//!   and work counters (`points_simulated` / `mapped` / `cached`,
//!   `candidates_scanned` / `pruned`) versus the single-shard
//!   single-worker reference. The global-stamp merge and global eviction
//!   queues argued in `docs/CONCURRENCY.md` are what make this hold; this
//!   file is the differential that would catch a regression.
//! * **Snapshot fidelity** — `Prophet::save_basis` / `load_basis` move a
//!   warmed basis across processes. A sweep on the restored service must
//!   be bit-identical to a re-sweep on the warm one and simulate nothing
//!   (`points_simulated == 0`); corrupt or truncated snapshot files are
//!   rejected with typed [`ProphetError::Snapshot`] variants and leave
//!   the store untouched.
//!
//! The store's own unit suite (`crates/mc/src/store.rs`) pins the byte
//! format and the lock protocol; this file pins the end-to-end surface.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use fuzzy_prophet::prelude::*;
use prophet_models::scenarios::{figure2_coarse_sql, PRICING_WHATIF};
use prophet_models::{demo_registry, full_registry};

#[derive(Clone, Copy)]
enum Reg {
    Demo,
    Full,
}

impl Reg {
    fn build(self) -> prophet_vg::VgRegistry {
        match self {
            Reg::Demo => demo_registry(),
            Reg::Full => full_registry(),
        }
    }
}

fn service(name: &str, src: &str, reg: Reg, shards: usize, workers: usize) -> Prophet {
    Prophet::builder()
        .scenario_sql(name, src)
        .unwrap()
        .registry(reg.build())
        .config(EngineConfig {
            worlds_per_point: 8,
            threads: 2,
            store_shards: shards,
            ..EngineConfig::default()
        })
        .scheduler(SchedulerConfig {
            workers,
            // Tiny chunks: many concurrent claims per shard.
            chunk_points: 2,
            ..SchedulerConfig::default()
        })
        .build()
        .unwrap()
}

/// Run a scheduled sweep, collecting the streamed per-point outcomes
/// (the chosen mapping sources) and the final report.
fn run_sweep(prophet: &Prophet, name: &str) -> (OfflineReport, HashMap<ParamPoint, EvalOutcome>) {
    let handle = prophet.submit(JobSpec::sweep(name)).unwrap();
    let mut outcomes = HashMap::new();
    let mut report = None;
    for event in handle.events() {
        match event {
            JobEvent::Chunk(update) => {
                for (point, outcome) in update.results {
                    outcomes.insert(point, outcome);
                }
            }
            JobEvent::Final(output) => report = Some(output.into_sweep().unwrap()),
            other => panic!("unexpected event {other:?}"),
        }
    }
    (report.expect("sweep must finish"), outcomes)
}

fn assert_sweeps_identical(
    label: &str,
    run: &(OfflineReport, HashMap<ParamPoint, EvalOutcome>),
    reference: &(OfflineReport, HashMap<ParamPoint, EvalOutcome>),
) {
    let (report, outcomes) = run;
    let (want, want_outcomes) = reference;
    assert_eq!(report.answers, want.answers, "{label}: per-group answers");
    assert_eq!(report.best, want.best, "{label}: sweep optimum");
    assert_eq!(
        outcomes, want_outcomes,
        "{label}: chosen mapping sources / samples per point"
    );
    let (a, b) = (&report.metrics, &want.metrics);
    assert_eq!(a.points_simulated, b.points_simulated, "{label}");
    assert_eq!(a.points_mapped, b.points_mapped, "{label}");
    assert_eq!(a.points_cached, b.points_cached, "{label}");
    assert_eq!(a.worlds_simulated, b.worlds_simulated, "{label}");
    assert_eq!(a.candidates_scanned, b.candidates_scanned, "{label}");
    assert_eq!(a.candidates_pruned, b.candidates_pruned, "{label}");
}

fn temp_path(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fp_store_shards_{}_{label}.fpbs",
        std::process::id()
    ))
}

// --------------------------------------------------- shard transparency

/// Shard counts {1, 4, 16} × workers {1, 8} versus the 1-shard
/// 1-worker reference: answers, streamed outcomes, and every work
/// counter bit-identical. PRICING_WHATIF has stochastic columns, so the
/// fingerprint match path (scanned/pruned accounting over the merged
/// stamp order) is exercised, not just exact cache hits.
#[test]
fn sweeps_are_bit_identical_across_shard_and_worker_counts() {
    let reference = {
        let prophet = service("pricing", PRICING_WHATIF, Reg::Full, 1, 1);
        run_sweep(&prophet, "pricing")
    };
    for shards in [1, 4, 16] {
        for workers in [1, 8] {
            if shards == 1 && workers == 1 {
                continue;
            }
            let prophet = service("pricing", PRICING_WHATIF, Reg::Full, shards, workers);
            let run = run_sweep(&prophet, "pricing");
            assert_sweeps_identical(
                &format!("shards={shards} workers={workers}"),
                &run,
                &reference,
            );
        }
    }
}

/// The shard knob is validated at build time, not discovered at the
/// first insert.
#[test]
fn out_of_range_shard_counts_are_rejected_at_build() {
    for shards in [0, prophet_mc::MAX_SHARDS + 1] {
        let err = Prophet::builder()
            .scenario_sql("pricing", PRICING_WHATIF)
            .unwrap()
            .registry(full_registry())
            .config(EngineConfig {
                store_shards: shards,
                ..EngineConfig::default()
            })
            .build()
            .unwrap_err();
        match err {
            ProphetError::InvalidConfig(msg) => {
                assert!(msg.contains("store_shards"), "{msg}");
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}

// --------------------------------------------------- snapshot fidelity

/// Save a warmed basis, load it into a cold service with a *different*
/// shard count, and sweep: the restored run simulates nothing and is
/// bit-identical — answers, outcomes, counters — to a re-sweep on the
/// warm service.
#[test]
fn restored_basis_serves_a_sweep_without_simulation() {
    let src = figure2_coarse_sql(0.05);
    let warm = service("figure2", &src, Reg::Demo, 4, 2);
    let first = run_sweep(&warm, "figure2");
    assert!(
        first.0.metrics.points_simulated > 0,
        "cold sweep must simulate"
    );
    // The all-cached reference: a second sweep on the warm store.
    let rerun = run_sweep(&warm, "figure2");
    assert_eq!(rerun.0.metrics.points_simulated, 0);

    let path = temp_path("roundtrip");
    let saved = warm.save_basis("figure2", &path).unwrap();
    assert!(saved > 0, "warm store must have entries");

    let cold = service("figure2", &src, Reg::Demo, 8, 2);
    let loaded = cold.load_basis("figure2", &path).unwrap();
    assert_eq!(loaded, saved, "every entry crosses the snapshot");
    assert_eq!(cold.basis_len("figure2").unwrap(), saved);

    let restored = run_sweep(&cold, "figure2");
    assert_eq!(
        restored.0.metrics.points_simulated, 0,
        "restored run must not simulate"
    );
    assert_eq!(restored.0.metrics.worlds_simulated, 0);
    assert_sweeps_identical("restored-vs-warm", &restored, &rerun);

    let _ = fs::remove_file(&path);
}

/// Corrupt and truncated snapshot files are rejected with the matching
/// typed variant, the target store is left untouched, and the pristine
/// file still loads afterwards.
#[test]
fn corrupt_snapshots_are_rejected_with_typed_errors() {
    let src = figure2_coarse_sql(0.05);
    let warm = service("figure2", &src, Reg::Demo, 4, 2);
    run_sweep(&warm, "figure2");
    let path = temp_path("corrupt");
    let saved = warm.save_basis("figure2", &path).unwrap();
    let good = fs::read(&path).unwrap();
    let len_before = warm.basis_len("figure2").unwrap();

    // Wrong magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    fs::write(&path, &bad).unwrap();
    match warm.load_basis("figure2", &path).unwrap_err() {
        ProphetError::Snapshot(SnapshotError::BadMagic) => {}
        other => panic!("wrong variant {other:?}"),
    }

    // Truncated mid-record. A naive cut trips the checksum first, so
    // re-stamp a valid FNV-1a checksum over the shortened body — the
    // structural parse must then run out of bytes.
    let mut short = good[..good.len() / 2].to_vec();
    let digest = short.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    short.extend_from_slice(&digest.to_le_bytes());
    fs::write(&path, &short).unwrap();
    match warm.load_basis("figure2", &path).unwrap_err() {
        ProphetError::Snapshot(SnapshotError::Truncated) => {}
        other => panic!("wrong variant {other:?}"),
    }

    // A single flipped payload bit fails the checksum.
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    fs::write(&path, &bad).unwrap();
    match warm.load_basis("figure2", &path).unwrap_err() {
        ProphetError::Snapshot(SnapshotError::ChecksumMismatch) => {}
        other => panic!("wrong variant {other:?}"),
    }

    // A missing file surfaces as the Io variant.
    let gone = temp_path("missing");
    let _ = fs::remove_file(&gone);
    match warm.load_basis("figure2", &gone).unwrap_err() {
        ProphetError::Snapshot(SnapshotError::Io(_)) => {}
        other => panic!("wrong variant {other:?}"),
    }

    // Every rejection left the warm store untouched…
    assert_eq!(warm.basis_len("figure2").unwrap(), len_before);
    // …and the pristine bytes still restore.
    fs::write(&path, &good).unwrap();
    assert_eq!(warm.load_basis("figure2", &path).unwrap(), saved);

    let _ = fs::remove_file(&path);
}
