//! End-to-end reproduction of the paper's demonstration (§3): the Figure-2
//! scenario through both the online and offline interfaces, asserting the
//! qualitative shapes the paper describes.

use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;

fn config(worlds: usize) -> EngineConfig {
    EngineConfig {
        worlds_per_point: worlds,
        ..EngineConfig::default()
    }
}

/// One-scenario service, the way applications reach the engine now.
fn service(scenario: Scenario, cfg: EngineConfig) -> Prophet {
    Prophet::builder()
        .scenario("s", scenario)
        .registry(demo_registry())
        .config(cfg)
        .build()
        .unwrap()
}

fn online(scenario: Scenario, cfg: EngineConfig) -> OnlineSession {
    service(scenario, cfg).online("s").unwrap()
}

fn offline(scenario: Scenario, cfg: EngineConfig) -> OfflineOptimizer {
    service(scenario, cfg).offline("s").unwrap()
}

/// A reduced-grid variant of Figure 2 so offline sweeps stay fast in CI.
const FIGURE2_SMALL: &str = "\
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 12;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 12;
DECLARE PARAMETER @feature AS SET (12,36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current
    EXPECT overload WITH bold red,
    EXPECT capacity WITH blue y2,
    EXPECT_STDDEV demand WITH orange y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.05
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2";

#[test]
fn online_graph_has_the_papers_dynamics() {
    let mut session = online(Scenario::figure2().unwrap(), config(120));
    session.set_param("purchase1", 16).unwrap();
    session.set_param("purchase2", 36).unwrap();
    session.set_param("feature", 12).unwrap();
    session.refresh().unwrap();

    let overload = session.series("overload").unwrap();
    let capacity = session.series("capacity").unwrap();
    let demand_sd = session.series("demand").unwrap();

    // Every series covers all 53 weeks.
    assert_eq!(overload.points.len(), 53);
    assert_eq!(capacity.points.len(), 53);
    assert_eq!(demand_sd.points.len(), 53);

    // Overload probability is a probability.
    for p in &overload.points {
        assert!((0.0..=1.0).contains(&p.y), "week {}: {}", p.x, p.y);
    }

    // Demand std-dev is within sane range of the model's noise floor
    // (400 base, 300 more after release).
    for p in &demand_sd.points {
        assert!((250.0..700.0).contains(&p.y), "week {}: sd {}", p.x, p.y);
    }

    // The paper's story: risk spikes between the feature release (week 12)
    // and the first purchase deployment (week 16 + lag), then falls once
    // hardware lands, then rises again late-year as growth eats the margin.
    let calm = overload.at(5).unwrap().y;
    let spike = overload.at(15).unwrap().y;
    let relieved = overload.at(24).unwrap().y;
    assert!(
        spike > calm + 0.2,
        "release spike: calm={calm} spike={spike}"
    );
    assert!(
        relieved < spike,
        "deployment must relieve: spike={spike} relieved={relieved}"
    );

    // Capacity jumps by ~4000 cores when the first purchase deploys.
    let before = capacity.at(14).unwrap().y;
    let after = capacity.at(22).unwrap().y;
    assert!(
        after - before > 2_500.0,
        "deployment adds cores: before={before} after={after}"
    );
}

#[test]
fn offline_answer_moves_with_the_risk_threshold() {
    let strict = offline(Scenario::parse(FIGURE2_SMALL).unwrap(), config(80))
        .run()
        .unwrap();

    let relaxed_src = FIGURE2_SMALL.replace("< 0.05", "< 0.25");
    let relaxed = offline(Scenario::parse(&relaxed_src).unwrap(), config(80))
        .run()
        .unwrap();

    // Relaxing the constraint can only widen the feasible set.
    assert!(relaxed.feasible().count() >= strict.feasible().count());

    // And the relaxed optimum defers purchases at least as late (the
    // objectives maximize purchase weeks).
    if let (Some(s), Some(r)) = (&strict.best, &relaxed.best) {
        let s1 = s.point.get("purchase1").unwrap();
        let r1 = r.point.get("purchase1").unwrap();
        assert!(
            r1 >= s1,
            "relaxed should defer at least as late: strict={s1} relaxed={r1}"
        );
    }

    // Every reported feasible answer must actually satisfy the constraint.
    for a in strict.feasible() {
        assert!(a.constraint_values[0] < 0.05, "{a:?}");
    }
}

#[test]
fn fingerprints_cut_offline_work_without_changing_the_answer() {
    let run = |enabled: bool| {
        let cfg = EngineConfig {
            worlds_per_point: 80,
            fingerprints_enabled: enabled,
            ..EngineConfig::default()
        };
        offline(Scenario::parse(FIGURE2_SMALL).unwrap(), cfg)
            .run()
            .unwrap()
    };
    let with_fp = run(true);
    let without_fp = run(false);

    // Same winner (fingerprint reuse must not change the decision).
    assert_eq!(
        with_fp.best.as_ref().map(|b| b.point.clone()),
        without_fp.best.as_ref().map(|b| b.point.clone()),
    );

    // And materially less simulation work (the paper's core claim).
    assert!(
        with_fp.metrics.worlds_simulated < without_fp.metrics.worlds_simulated / 2,
        "with: {} worlds, without: {} worlds",
        with_fp.metrics.worlds_simulated,
        without_fp.metrics.worlds_simulated
    );
    assert!(with_fp.metrics.points_mapped > 0);
    assert_eq!(without_fp.metrics.points_mapped, 0);
}

#[test]
fn exploration_map_matches_engine_metrics() {
    let scenario = Scenario::parse(FIGURE2_SMALL).unwrap();
    let p1 = scenario.script().param("purchase1").unwrap().clone();
    let p2 = scenario.script().param("purchase2").unwrap().clone();
    let optimizer = offline(scenario, config(40));
    let mut map = ExplorationMap::new(&p1, &p2);
    let report = optimizer
        .run_with_observer(|_, full, outcome| map.record(full, outcome))
        .unwrap();

    let (computed, mapped, cached, pending) = map.tally();
    assert_eq!(pending, 0, "the sweep visits every cell of the slice");
    assert!(computed > 0);
    assert!(
        mapped + cached > 0,
        "Figure 4 shows mappings; the map must too"
    );
    // Engine-level points and map cells agree in spirit: every evaluation
    // was observed.
    assert_eq!(report.metrics.points_total() as usize, {
        // groups × axis size: 5 × 5 × 2 groups × 14 axis points
        report.groups_total * 14
    });
}

#[test]
fn online_adjustment_is_cheaper_than_first_render() {
    let mut session = online(Scenario::figure2().unwrap(), config(60));
    let first = session.refresh().unwrap();
    let adjust = session.set_param("purchase2", 40).unwrap();
    assert!(
        adjust.weeks_simulated < first.weeks_simulated,
        "first render {} vs adjustment {}",
        first.weeks_simulated,
        adjust.weeks_simulated
    );
    // Engine metrics must show real fingerprint reuse for the session.
    let m = session.engine().metrics();
    assert!(m.points_mapped + m.points_cached > 0);
}
