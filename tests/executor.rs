//! Integration tests for the batched evaluation executor and the shared
//! store's in-flight deduplication, exercised through the service facade:
//!
//! * mixed hit/miss batches resolve each point with the right outcome,
//! * N sessions hammering one cold point perform exactly one simulation,
//! * eviction churn never drops a pending in-flight entry,
//! * clearing the store mid-simulation wakes waiters and re-simulates,
//! * batch evaluation is bit-identical to sequential evaluation, and
//! * the offline sweep does identical work at `threads = 1` and `= 4`.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use fuzzy_prophet::prelude::*;
use prophet_fingerprint::{CorrelationDetector, Fingerprint};
use prophet_mc::{SharedBasisStore, TryClaim};
use prophet_models::demo_registry;

fn figure2_service(worlds: usize, threads: usize) -> Prophet {
    Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: worlds,
            threads,
            ..EngineConfig::default()
        })
        .build()
        .unwrap()
}

fn demo_point(current: i64, p1: i64, p2: i64, feature: i64) -> ParamPoint {
    ParamPoint::from_pairs([
        ("current", current),
        ("purchase1", p1),
        ("purchase2", p2),
        ("feature", feature),
    ])
}

#[test]
fn batch_with_mixed_hit_and_miss_points() {
    let prophet = figure2_service(40, 2);
    let engine = prophet.engine("figure2").unwrap();

    // Warm exactly one point, then batch: that point (exact cache), a
    // correlated neighbour (fingerprint map), and an unrelated point
    // (simulation).
    let warm = demo_point(5, 16, 36, 12);
    let mappable = demo_point(5, 16, 36, 36); // pre-release feature move
    let far = demo_point(50, 0, 4, 44);
    engine.evaluate(&warm).unwrap();
    engine.reset_metrics();

    let results = engine
        .evaluate_batch(&[warm.clone(), mappable.clone(), far.clone()])
        .unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].1, EvalOutcome::Cached);
    assert!(
        matches!(&results[1].1, EvalOutcome::Mapped { from, .. } if *from == warm),
        "{:?}",
        results[1].1
    );
    assert_eq!(results[2].1, EvalOutcome::Simulated);

    let m = engine.metrics();
    assert_eq!(m.points_cached, 1);
    assert_eq!(m.points_mapped, 1);
    assert_eq!(m.points_simulated, 1);
    assert_eq!(m.batch_probes, 2, "only the two cold points were probed");
    assert_eq!(m.worlds_simulated, 40, "only the far point paid simulation");
}

#[test]
fn n_sessions_hammering_one_cold_point_simulate_once() {
    const SESSIONS: usize = 6;
    let prophet = Arc::new(figure2_service(60, 1));
    let point = demo_point(20, 16, 36, 12);
    let barrier = Arc::new(Barrier::new(SESSIONS));

    let handles: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let prophet = Arc::clone(&prophet);
            let point = point.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let engine = prophet.engine("figure2").unwrap();
                barrier.wait();
                let (samples, _) = engine.evaluate(&point).unwrap();
                let m = engine.metrics();
                (samples.samples("demand").unwrap().to_vec(), m)
            })
        })
        .collect();

    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let total_simulated: u64 = outcomes.iter().map(|(_, m)| m.points_simulated).sum();
    let total_cached: u64 = outcomes.iter().map(|(_, m)| m.points_cached).sum();
    assert_eq!(
        total_simulated, 1,
        "exactly one session simulates the cold point"
    );
    assert_eq!(
        total_cached,
        (SESSIONS - 1) as u64,
        "every other session reuses it"
    );
    for (samples, _) in &outcomes {
        assert_eq!(
            samples, &outcomes[0].0,
            "all sessions observe identical samples"
        );
    }
    let stats = prophet.basis_stats("figure2").unwrap();
    assert_eq!(
        total_simulated * 60,
        outcomes
            .iter()
            .map(|(_, m)| m.worlds_simulated)
            .sum::<u64>()
    );
    assert!(
        stats.inflight_waits == outcomes.iter().map(|(_, m)| m.inflight_waits).sum::<u64>(),
        "store-level and engine-level wait counts agree"
    );
}

#[test]
fn eviction_churn_never_drops_a_pending_entry() {
    // Engine-level version of the store unit test: claim a point, fill the
    // tiny store past capacity with unrelated evaluations, then let the
    // waiter collect the claimed point's result.
    let prophet = Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: 16,
            basis_capacity: 2,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    let engine = prophet.engine("figure2").unwrap();
    let store = engine.basis_store().clone();
    let pending = demo_point(10, 16, 36, 12);

    let TryClaim::Owner(guard) = store.try_claim(&pending, 16) else {
        panic!("cold point must be claimable");
    };
    let TryClaim::Pending(handle) = store.try_claim(&pending, 16) else {
        panic!("second claim must see the in-flight entry");
    };

    // Churn: four unrelated evaluations through a 2-entry store.
    for current in [0, 2, 40, 46] {
        engine.evaluate(&demo_point(current, 0, 4, 44)).unwrap();
    }
    assert!(store.len() <= 2, "capacity bound holds during churn");
    assert_eq!(store.inflight_len(), 1, "the claim survived every eviction");

    // The owner publishes; the waiter gets the samples even though the
    // store is full of newer entries.
    let samples = Arc::new(std::collections::HashMap::from([(
        "demand".to_owned(),
        vec![1.0; 16],
    )]));
    assert!(guard.complete(Default::default(), samples, 16, true));
    let (got, worlds) = handle.wait().expect("waiter must not starve");
    assert_eq!(worlds, 16);
    assert_eq!(got["demand"], vec![1.0; 16]);
}

#[test]
fn clear_during_inflight_simulation_wakes_and_resimulates() {
    let prophet = figure2_service(24, 1);
    let engine = Arc::new(prophet.engine("figure2").unwrap());
    let store = engine.basis_store().clone();
    let point = demo_point(15, 16, 36, 12);

    // Main thread owns the simulation.
    let TryClaim::Owner(guard) = store.try_claim(&point, 24) else {
        panic!("cold point must be claimable");
    };

    // A second session evaluates the same point: it either waits on the
    // owner, gets cancelled by the clear, and re-simulates — or arrives
    // after the clear and simulates directly. Both paths must terminate
    // with real samples.
    let worker = {
        let engine = Arc::clone(&engine);
        let point = point.clone();
        std::thread::spawn(move || {
            let (samples, outcome) = engine.evaluate(&point).unwrap();
            (samples.samples("demand").unwrap().to_vec(), outcome)
        })
    };

    // Clear while the point is in flight, then publish stale results.
    std::thread::sleep(std::time::Duration::from_millis(50));
    store.clear();
    let stale = Arc::new(std::collections::HashMap::from([(
        "demand".to_owned(),
        vec![-1.0; 24],
    )]));
    assert!(
        !guard.complete(Default::default(), stale, 24, true),
        "completion after clear must report the discard"
    );

    let (samples, outcome) = worker.join().expect("waiter must not block forever");
    assert_eq!(
        outcome,
        EvalOutcome::Simulated,
        "the waiter re-simulated after the cancel"
    );
    assert!(
        samples.iter().all(|&v| v >= 0.0),
        "stale pre-clear samples must not leak to the waiter"
    );
    // And the store holds the fresh simulation, not the stale publish.
    let (_, second) = engine.evaluate(&point).unwrap();
    assert_eq!(second, EvalOutcome::Cached);
}

#[test]
fn batch_evaluation_is_bit_identical_to_sequential() {
    // Points whose in-batch fingerprint relations are identity maps under
    // common random numbers: batch evaluation may simulate where
    // sequential evaluation mapped, but the samples must come out
    // bit-identical either way.
    let points = vec![
        demo_point(5, 16, 36, 12),
        demo_point(5, 16, 36, 36), // identity-maps from the first
        demo_point(12, 8, 24, 12), // unrelated: simulates in both modes
        demo_point(5, 16, 36, 12), // duplicate within the batch
    ];

    let sequential = figure2_service(48, 1).engine("figure2").unwrap();
    let seq_results: Vec<_> = points
        .iter()
        .map(|p| sequential.evaluate(p).unwrap())
        .collect();

    for threads in [1, 4] {
        let batched = figure2_service(48, threads).engine("figure2").unwrap();
        let batch_results = batched.evaluate_batch(&points).unwrap();
        assert_eq!(batch_results.len(), seq_results.len());
        for (i, ((seq, _), (bat, _))) in seq_results.iter().zip(&batch_results).enumerate() {
            for col in ["demand", "capacity", "overload"] {
                assert_eq!(
                    seq.samples(col),
                    bat.samples(col),
                    "threads={threads} point #{i} column {col}"
                );
            }
        }
    }
}

#[test]
fn batch_evaluation_is_deterministic_across_thread_counts() {
    // Includes an offset-mapped pair (purchase crossing the evaluated
    // week): vs *sequential* evaluation such samples agree only to
    // float-rounding (offset application reorders the capacity sum), but
    // across thread counts the batch pipeline makes identical
    // mapped-vs-simulated decisions, so its output is bit-identical.
    let points = vec![
        demo_point(10, 4, 36, 12),
        demo_point(10, 16, 36, 12), // offset-maps from the first, sequentially
        demo_point(5, 16, 36, 36),
        demo_point(50, 0, 4, 44),
    ];
    let single = figure2_service(48, 1).engine("figure2").unwrap();
    let quad = figure2_service(48, 4).engine("figure2").unwrap();
    let r1 = single.evaluate_batch(&points).unwrap();
    let r4 = quad.evaluate_batch(&points).unwrap();
    for (i, ((a, oa), (b, ob))) in r1.iter().zip(&r4).enumerate() {
        assert_eq!(oa, ob, "point #{i} outcome");
        for col in ["demand", "capacity", "overload"] {
            assert_eq!(a.samples(col), b.samples(col), "point #{i} column {col}");
        }
    }
    assert_eq!(
        single.metrics().worlds_simulated,
        quad.metrics().worlds_simulated
    );
}

#[test]
fn offline_sweep_does_identical_work_at_one_and_four_threads() {
    // Coarse grid, generous threshold so a best point exists.
    let scenario_src = "\
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @feature AS SET (12,36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.9
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2";

    let run = |threads: usize| {
        let prophet = Prophet::builder()
            .scenario_sql("sweep", scenario_src)
            .unwrap()
            .registry(demo_registry())
            .config(EngineConfig {
                worlds_per_point: 16,
                threads,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        prophet.offline("sweep").unwrap().run().unwrap()
    };

    let single = run(1);
    let parallel = run(4);
    assert_eq!(
        single.metrics.worlds_simulated, parallel.metrics.worlds_simulated,
        "thread count must not change how much simulation runs"
    );
    assert_eq!(
        single.metrics.points_simulated,
        parallel.metrics.points_simulated
    );
    let best_single = single.best.as_ref().expect("a feasible plan exists");
    let best_parallel = parallel.best.as_ref().expect("a feasible plan exists");
    assert_eq!(best_single.point, best_parallel.point, "identical answer");
    assert_eq!(
        best_single.constraint_values,
        best_parallel.constraint_values
    );
}

/// Index-enabled eviction churn: once a candidate is evicted from the
/// bounded entry table, the summary index must stop serving it — the next
/// scan falls back to the remaining sources (or misses), identically with
/// and without the index.
#[test]
fn index_never_serves_an_evicted_candidate() {
    let detector = CorrelationDetector::default();
    let columns = ["y".to_owned()];
    let fp = |values: &[f64]| {
        HashMap::from([("y".to_owned(), Fingerprint::from_values(values.to_vec()))])
    };
    let samples = |v: f64| Arc::new(HashMap::from([("y".to_owned(), vec![v])]));
    let base: Vec<f64> = (0..16).map(|i| ((i * 7 % 13) as f64) - 5.0).collect();
    let shifted: Vec<f64> = base.iter().map(|v| v + 2.0).collect();
    let unrelated: Vec<f64> = (0..16).map(|i| (i * i * 31 % 101) as f64).collect();

    let store = SharedBasisStore::new(2);
    let victim = ParamPoint::from_pairs([("c", 0i64)]);
    store.insert(victim.clone(), fp(&base), samples(0.0), 10, true);
    let probes = vec![fp(&base)];
    let (hits, _) = store.find_correlated_batch_scan(&probes, &columns, &detector, 1, true);
    assert_eq!(
        hits[0].as_ref().map(|h| &h.source),
        Some(&victim),
        "warm index serves the candidate"
    );

    // Churn two newer matchable entries through the 2-entry store: the
    // oldest (our exact-match candidate) is evicted.
    store.insert(
        ParamPoint::from_pairs([("c", 1i64)]),
        fp(&shifted),
        samples(1.0),
        10,
        true,
    );
    store.insert(
        ParamPoint::from_pairs([("c", 2i64)]),
        fp(&unrelated),
        samples(2.0),
        10,
        true,
    );
    assert!(store.get_exact(&victim, 1).is_none(), "victim evicted");

    for use_index in [true, false] {
        let (hits, _) =
            store.find_correlated_batch_scan(&probes, &columns, &detector, 1, use_index);
        let hit = hits[0].as_ref().expect("the offset relative still matches");
        assert_ne!(
            hit.source, victim,
            "use_index={use_index}: evicted candidate must not be served"
        );
        assert_eq!(hit.source, ParamPoint::from_pairs([("c", 1i64)]));
    }
}

/// Index-enabled clear race: a completion that lost against `clear()` is
/// discarded — the summary index must not retain the cleared candidate
/// either, so post-clear scans miss until something real is published.
#[test]
fn index_never_serves_a_cleared_candidate() {
    let detector = CorrelationDetector::default();
    let columns = ["y".to_owned()];
    let base: Vec<f64> = (0..16).map(|i| (i as f64).sin() * 10.0).collect();
    let fingerprints = HashMap::from([("y".to_owned(), Fingerprint::from_values(base.clone()))]);
    let samples = Arc::new(HashMap::from([("y".to_owned(), vec![1.0])]));
    let probes = vec![fingerprints.clone()];

    let store = SharedBasisStore::new(8);
    let p = ParamPoint::from_pairs([("c", 0i64)]);
    let TryClaim::Owner(guard) = store.try_claim(&p, 10) else {
        panic!("cold point must be claimable");
    };
    store.clear();
    assert!(
        !guard.complete(fingerprints.clone(), Arc::clone(&samples), 10, true),
        "completion after clear reports the discard"
    );
    for use_index in [true, false] {
        let (hits, _) =
            store.find_correlated_batch_scan(&probes, &columns, &detector, 1, use_index);
        assert!(
            hits[0].is_none(),
            "use_index={use_index}: cleared candidate must not be served"
        );
    }

    // A fresh publish is served again, through the rebuilt index.
    let TryClaim::Owner(fresh) = store.try_claim(&p, 10) else {
        panic!("expected fresh owner after clear");
    };
    assert!(fresh.complete(fingerprints, samples, 10, true));
    let (hits, _) = store.find_correlated_batch_scan(&probes, &columns, &detector, 1, true);
    assert_eq!(hits[0].as_ref().map(|h| &h.source), Some(&p));
}

/// Engine-level churn through a tiny store: a point sequence that mixes
/// mappings, misses, and evictions must behave identically with the index
/// on and off — the exhaustive scan re-reads the live entry table every
/// time, so any stale index entry would surface as a divergent outcome.
#[test]
fn engine_eviction_churn_is_identical_with_and_without_index() {
    let build = |match_index: bool| {
        Prophet::builder()
            .scenario("figure2", Scenario::figure2().unwrap())
            .registry(demo_registry())
            .config(EngineConfig {
                worlds_per_point: 16,
                basis_capacity: 3,
                match_index,
                ..EngineConfig::default()
            })
            .build()
            .unwrap()
            .engine("figure2")
            .unwrap()
    };
    let indexed = build(true);
    let exhaustive = build(false);
    // Interleave a mappable family (same week, shifting purchases and
    // feature dates) with unrelated points, overflowing the 3-entry store
    // so sources get evicted and re-simulated mid-sequence.
    let sweep = [
        demo_point(10, 4, 36, 12),
        demo_point(10, 16, 36, 12), // offset-maps
        demo_point(10, 24, 36, 36), // maps again
        demo_point(50, 0, 4, 44),   // unrelated: simulates
        demo_point(40, 0, 4, 44),   // unrelated: simulates (evicts)
        demo_point(10, 32, 36, 12), // family source may be gone by now
        demo_point(10, 4, 36, 12),  // original point again
        demo_point(50, 0, 4, 44),
    ];
    for (i, p) in sweep.iter().enumerate() {
        let (si, oi) = indexed.evaluate(p).unwrap();
        let (se, oe) = exhaustive.evaluate(p).unwrap();
        assert_eq!(oi, oe, "step #{i} at {p}");
        for col in ["demand", "capacity", "overload"] {
            assert_eq!(si.samples(col), se.samples(col), "step #{i} column {col}");
        }
        assert!(indexed.basis_len() <= 3, "capacity bound holds under churn");
    }
    let mi = indexed.metrics();
    let me = exhaustive.metrics();
    assert_eq!(mi.points_simulated, me.points_simulated);
    assert_eq!(mi.points_mapped, me.points_mapped);
    assert_eq!(me.candidates_pruned, 0);
}

#[test]
fn prefetch_drain_and_refresh_go_through_the_executor() {
    // The rerouted online paths: a refresh batches all weeks, a prefetch
    // tick batches the drained guide points across all weeks. Behaviour
    // (counts, warm reuse) must match the sequential semantics.
    let prophet = figure2_service(8, 2);
    let mut session = prophet.online("figure2").unwrap();
    session.refresh().unwrap();
    session.set_param("purchase2", 36).unwrap();
    let done = session.prefetch_tick(8).unwrap();
    assert_eq!(done, 2, "both domain neighbours drained in one batch");
    let report = session.set_param("purchase2", 40).unwrap();
    assert_eq!(report.weeks_simulated, 0, "prefetched slider is fully warm");
    let m = session.metrics();
    assert!(m.batch_probes > 0, "session work went through the planner");
}
