//! Chaos-mode schedule sweep (tier 2).
//!
//! [`SchedulerConfig::perturb`] arms seeded yields and chunk-pop shuffles
//! at the scheduler's preemption points, so each seed drives the pool
//! through a different interleaving of the same job. The scheduler's
//! determinism contract (`docs/CONCURRENCY.md`) says interleaving carries
//! no semantic weight: answers, chosen mapping sources, and work counters
//! must be bit-identical to the blocking reference under *every* schedule.
//!
//! This file sweeps ≥32 chaos seeds at 1 and 8 workers and asserts exactly
//! that. Run under `--features check` (the CI lane does), every lock
//! acquisition and claim transition is additionally verified against the
//! rank table and the claim ledger — a single checker firing panics the
//! worker and fails the sweep, so "passes under check" *is* the
//! zero-firings assertion.

use std::collections::HashMap;

use fuzzy_prophet::prelude::*;
use prophet_models::full_registry;
use prophet_models::scenarios::PRICING_WHATIF;

fn config() -> EngineConfig {
    EngineConfig {
        worlds_per_point: 8,
        threads: 2,
        ..EngineConfig::default()
    }
}

type SweepResult = (OfflineReport, HashMap<ParamPoint, EvalOutcome>);

/// Blocking reference: no scheduler, no chaos.
fn blocking_reference() -> SweepResult {
    let engine = Engine::new(
        &Scenario::parse(PRICING_WHATIF).unwrap(),
        full_registry(),
        config(),
    )
    .unwrap();
    let optimizer = OfflineOptimizer::open(engine).unwrap();
    let mut outcomes = HashMap::new();
    let report = optimizer
        .run_with_observer(|_, full, outcome| {
            outcomes.insert(full.clone(), outcome.clone());
        })
        .unwrap();
    (report, outcomes)
}

fn chaotic_service(workers: usize, seed: u64, trace: TraceConfig) -> Prophet {
    Prophet::builder()
        .scenario_sql("pricing", PRICING_WHATIF)
        .unwrap()
        .registry(full_registry())
        .config(config())
        .scheduler(
            SchedulerConfig {
                workers,
                // Tiny chunks: the most scheduling decisions per job, so
                // each seed has the most opportunities to reorder.
                chunk_points: 2,
                trace,
                ..SchedulerConfig::default()
            }
            .perturb(seed),
        )
        .build()
        .unwrap()
}

fn run_perturbed_sweep(prophet: &Prophet) -> SweepResult {
    let handle = prophet.submit(JobSpec::sweep("pricing")).unwrap();
    let mut outcomes = HashMap::new();
    let mut report = None;
    for event in handle.events() {
        match event {
            JobEvent::Chunk(update) => {
                for (point, outcome) in update.results {
                    outcomes.insert(point, outcome);
                }
            }
            JobEvent::Final(output) => report = Some(output.into_sweep().unwrap()),
            other => panic!("unexpected event {other:?}"),
        }
    }
    (report.expect("sweep must finish"), outcomes)
}

fn assert_bit_identical(label: &str, perturbed: &SweepResult, reference: &SweepResult) {
    let (sweep, outcomes) = perturbed;
    let (blocking, blocking_outcomes) = reference;
    assert_eq!(sweep.answers, blocking.answers, "{label}: answers");
    assert_eq!(sweep.best, blocking.best, "{label}: optimum");
    assert_eq!(
        outcomes, blocking_outcomes,
        "{label}: chosen mapping sources per point"
    );
    let (a, b) = (&sweep.metrics, &blocking.metrics);
    assert_eq!(a.points_simulated, b.points_simulated, "{label}: sim count");
    assert_eq!(a.points_mapped, b.points_mapped, "{label}: map count");
    assert_eq!(a.points_cached, b.points_cached, "{label}: cache count");
    assert_eq!(a.worlds_simulated, b.worlds_simulated, "{label}: worlds");
    assert_eq!(a.probe_evaluations, b.probe_evaluations, "{label}: probes");
    assert_eq!(
        a.candidates_scanned, b.candidates_scanned,
        "{label}: match scan"
    );
    assert_eq!(
        a.candidates_pruned, b.candidates_pruned,
        "{label}: match pruning"
    );
    assert_eq!(a.batch_probes, b.batch_probes, "{label}: batch probes");
}

/// ≥32 seeds × {1, 8} workers, **with the flight recorder armed** (ring
/// tracing, the service default): every perturbed schedule reproduces
/// the blocking sweep bit-for-bit, with zero lock-rank or claim-ledger
/// firings (any firing panics and fails this test under `check`). The
/// recorder observing every queue pop, chunk run, and store publish must
/// not perturb a single answer, source choice, or counter — tracing
/// observes, never decides (`docs/OBSERVABILITY.md`).
#[test]
fn chaos_sweep_is_bit_identical_across_32_seeds_and_worker_counts() {
    let reference = blocking_reference();
    for seed in 0..32u64 {
        for workers in [1usize, 8] {
            let prophet = chaotic_service(workers, seed, TraceConfig::ring());
            let perturbed = run_perturbed_sweep(&prophet);
            assert_bit_identical(
                &format!("seed {seed}, {workers} workers"),
                &perturbed,
                &reference,
            );
            assert!(
                !prophet.trace_events().is_empty(),
                "seed {seed}, {workers} workers: the lane must actually trace"
            );
        }
    }
}

/// The `Off` side of the tracing differential: a sample of perturbed
/// schedules with the recorder disabled still matches the blocking
/// reference bit-for-bit, and the disabled recorder is truly inert —
/// zero events, zero histogram observations, zero ring accounting. (That
/// `Off` also allocates no ring at all is pinned by the unit test in
/// `prophet_mc::trace`.)
#[test]
fn chaos_sweep_with_tracing_off_is_identical_and_records_nothing() {
    let reference = blocking_reference();
    for seed in [0u64, 7, 13, 21] {
        for workers in [1usize, 8] {
            let prophet = chaotic_service(workers, seed, TraceConfig::Off);
            let perturbed = run_perturbed_sweep(&prophet);
            assert_bit_identical(
                &format!("off, seed {seed}, {workers} workers"),
                &perturbed,
                &reference,
            );
            assert!(prophet.trace_events().is_empty(), "seed {seed}: no events");
            let telemetry = prophet.telemetry();
            assert_eq!(telemetry.trace.events_recorded, 0, "seed {seed}");
            assert_eq!(telemetry.trace.events_dropped, 0, "seed {seed}");
            assert_eq!(telemetry.trace.chunk_service.count(), 0, "seed {seed}");
            assert_eq!(telemetry.trace.max_queue_depth, 0, "seed {seed}");
        }
    }
}

/// Chaos under contention: two jobs of the same scenario share one store
/// while the scheduler is perturbed, so claims, waits and publishes all
/// interleave differently per seed. Both jobs must still land on answers
/// identical to the blocking reference, and the *pair's* combined work
/// must show the second job reusing the first's published bases (the
/// claim protocol guarantees at-most-once simulation per point).
#[test]
fn chaos_concurrent_jobs_share_the_store_correctly() {
    let reference = blocking_reference();
    for seed in [3u64, 17, 29, 31, 40, 41, 54, 63] {
        let prophet = chaotic_service(8, seed, TraceConfig::ring());
        let first = prophet
            .submit(JobSpec::sweep("pricing").with_priority(Priority::Low))
            .unwrap();
        let second = prophet
            .submit(JobSpec::sweep("pricing").with_priority(Priority::High))
            .unwrap();
        let a = first.wait().unwrap().into_sweep().unwrap();
        let b = second.wait().unwrap().into_sweep().unwrap();
        assert_eq!(a.answers, reference.0.answers, "seed {seed}: first job");
        assert_eq!(a.best, reference.0.best, "seed {seed}: first optimum");
        assert_eq!(b.answers, reference.0.answers, "seed {seed}: second job");
        assert_eq!(b.best, reference.0.best, "seed {seed}: second optimum");
        // Between them the two jobs computed each unique point at most
        // once (the claim protocol): the shared store holds exactly one
        // entry per unique point of a single sweep, never duplicates.
        let unique =
            (reference.0.metrics.points_simulated + reference.0.metrics.points_mapped) as usize;
        assert_eq!(
            prophet.basis_len("pricing").unwrap(),
            unique,
            "seed {seed}: store holds exactly one entry per unique point"
        );
    }
}
