//! Differential suite for the fingerprint summary index: the indexed match
//! scan is *defined* by bit-identity with the exhaustive scan, and this
//! file is the contract's enforcement.
//!
//! Coverage:
//!
//! * every bundled scenario (Figure 2 plus the four example scenarios),
//!   swept point-by-point and as one batch with `match_index` on and off —
//!   outcomes, samples, and chosen mapping sources must be bit-identical;
//! * a full offline OPTIMIZE sweep with the index on and off — identical
//!   best plan, per-group answers, and work counters, with the indexed run
//!   actually pruning;
//! * a seeded property loop over randomly generated fingerprint
//!   populations at the store layer, asserting after every insert
//!   (1..=N candidates, including exact duplicates → ties) that the
//!   indexed scan returns exactly the exhaustive scan's hit — the pruning
//!   bound never discards the true best candidate.

use std::collections::HashMap;
use std::sync::Arc;

use fuzzy_prophet::prelude::*;
use prophet_fingerprint::{CorrelationDetector, Fingerprint, Mapping};
use prophet_mc::SharedBasisStore;
use prophet_models::scenarios::{
    figure2_coarse_sql, INVENTORY_POLICY, PRICING_WHATIF, SUPPORT_STAFFING,
};
use prophet_models::{demo_registry, full_registry};
use prophet_vg::rng::{Rng64, Xoshiro256StarStar};

enum VgRegistryKind {
    Demo,
    Full,
}

impl VgRegistryKind {
    fn build(&self) -> prophet_vg::VgRegistry {
        match self {
            VgRegistryKind::Demo => demo_registry(),
            VgRegistryKind::Full => full_registry(),
        }
    }
}

/// The five bundled scenarios with a registry factory and probe points
/// spread across each parameter space (several correlated neighbours per
/// scenario, so the match scan has real decisions to make).
fn bundled_scenarios() -> Vec<(&'static str, Scenario, VgRegistryKind, Vec<ParamPoint>)> {
    vec![
        (
            "figure2",
            Scenario::figure2().unwrap(),
            VgRegistryKind::Demo,
            vec![
                ParamPoint::from_pairs([
                    ("current", 5i64),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 5i64),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 36),
                ]),
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 4),
                    ("purchase2", 36),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 50i64),
                    ("purchase1", 0),
                    ("purchase2", 4),
                    ("feature", 44),
                ]),
            ],
        ),
        (
            "figure2-coarse",
            Scenario::parse(&figure2_coarse_sql(0.05)).unwrap(),
            VgRegistryKind::Demo,
            vec![
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 8),
                    ("purchase2", 24),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 8),
                    ("purchase2", 24),
                    ("feature", 36),
                ]),
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 24),
                    ("purchase2", 40),
                    ("feature", 12),
                ]),
            ],
        ),
        (
            "inventory",
            Scenario::parse(INVENTORY_POLICY).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([
                    ("week", 12i64),
                    ("reorder_point", 200),
                    ("reorder_qty", 300),
                ]),
                ParamPoint::from_pairs([
                    ("week", 12i64),
                    ("reorder_point", 240),
                    ("reorder_qty", 300),
                ]),
                ParamPoint::from_pairs([
                    ("week", 20i64),
                    ("reorder_point", 200),
                    ("reorder_qty", 360),
                ]),
            ],
        ),
        (
            "pricing",
            Scenario::parse(PRICING_WHATIF).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([("week", 24i64), ("price", 20)]),
                ParamPoint::from_pairs([("week", 24i64), ("price", 22)]),
                ParamPoint::from_pairs([("week", 30i64), ("price", 20)]),
            ],
        ),
        (
            "staffing",
            Scenario::parse(SUPPORT_STAFFING).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([("week", 24i64), ("agents", 10)]),
                ParamPoint::from_pairs([("week", 24i64), ("agents", 11)]),
                ParamPoint::from_pairs([("week", 30i64), ("agents", 10)]),
            ],
        ),
    ]
}

fn engine_pair(scenario: &Scenario, kind: &VgRegistryKind, threads: usize) -> (Engine, Engine) {
    let config = EngineConfig {
        worlds_per_point: 40,
        threads,
        ..EngineConfig::default()
    };
    let indexed = Engine::new(scenario, kind.build(), config).unwrap();
    let exhaustive = Engine::new(
        scenario,
        kind.build(),
        EngineConfig {
            match_index: false,
            ..config
        },
    )
    .unwrap();
    (indexed, exhaustive)
}

/// Every bundled scenario, swept point-by-point: identical outcomes
/// (including the chosen mapping source), bit-identical samples, identical
/// reuse counters — and the exhaustive engine never prunes.
#[test]
fn all_bundled_scenarios_are_bit_identical_with_and_without_index() {
    for (name, scenario, kind, points) in bundled_scenarios() {
        let (indexed, exhaustive) = engine_pair(&scenario, &kind, 1);
        let columns = indexed.output_columns();
        for point in &points {
            let (si, oi) = indexed.evaluate(point).unwrap();
            let (se, oe) = exhaustive.evaluate(point).unwrap();
            assert_eq!(oi, oe, "[{name}] outcome at {point}");
            for col in &columns {
                assert_eq!(
                    si.samples(col),
                    se.samples(col),
                    "[{name}] column `{col}` at {point}"
                );
            }
        }
        let mi = indexed.metrics();
        let me = exhaustive.metrics();
        assert_eq!(mi.points_mapped, me.points_mapped, "[{name}]");
        assert_eq!(mi.points_simulated, me.points_simulated, "[{name}]");
        assert_eq!(mi.worlds_simulated, me.worlds_simulated, "[{name}]");
        assert_eq!(
            me.candidates_pruned, 0,
            "[{name}] the exhaustive scan never prunes"
        );
    }
}

/// The batched planner path: one batch over every point, indexed vs
/// exhaustive, at one and four threads.
#[test]
fn batched_sweeps_are_bit_identical_with_and_without_index() {
    for (name, scenario, kind, points) in bundled_scenarios() {
        for threads in [1, 4] {
            let (indexed, exhaustive) = engine_pair(&scenario, &kind, threads);
            let ri = indexed.evaluate_batch(&points).unwrap();
            let re = exhaustive.evaluate_batch(&points).unwrap();
            assert_eq!(ri.len(), re.len());
            for (i, ((si, oi), (se, oe))) in ri.iter().zip(&re).enumerate() {
                assert_eq!(oi, oe, "[{name}] threads={threads} point #{i}");
                for col in indexed.output_columns() {
                    assert_eq!(
                        si.samples(&col),
                        se.samples(&col),
                        "[{name}] threads={threads} point #{i} column {col}"
                    );
                }
            }
        }
    }
}

/// A full offline OPTIMIZE sweep with the index on and off: identical best
/// plan, answers, and work — and the indexed run actually pruned.
#[test]
fn offline_sweep_answers_are_identical_with_and_without_index() {
    let scenario_src = "\
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @feature AS SET (12,36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.9
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2";

    let run = |match_index: bool| {
        let prophet = Prophet::builder()
            .scenario_sql("sweep", scenario_src)
            .unwrap()
            .registry(demo_registry())
            .config(EngineConfig {
                worlds_per_point: 16,
                threads: 2,
                match_index,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        prophet.offline("sweep").unwrap().run().unwrap()
    };

    let indexed = run(true);
    let exhaustive = run(false);
    assert_eq!(indexed.answers, exhaustive.answers, "per-group answers");
    let best_i = indexed.best.as_ref().expect("a feasible plan exists");
    let best_e = exhaustive.best.as_ref().expect("a feasible plan exists");
    assert_eq!(best_i.point, best_e.point, "identical sweep answer");
    assert_eq!(best_i.constraint_values, best_e.constraint_values);
    assert_eq!(
        indexed.metrics.points_simulated,
        exhaustive.metrics.points_simulated
    );
    assert_eq!(
        indexed.metrics.worlds_simulated,
        exhaustive.metrics.worlds_simulated
    );
    assert!(
        indexed.metrics.candidates_pruned > 0,
        "the sweep must exercise the index"
    );
    assert_eq!(exhaustive.metrics.candidates_pruned, 0);
    assert!(
        indexed.metrics.candidates_scanned
            < exhaustive.metrics.candidates_scanned + exhaustive.metrics.candidates_pruned,
        "pruning must reduce the number of full comparisons"
    );
}

// ---------------------------------------------------------------- property

fn point(i: usize) -> ParamPoint {
    ParamPoint::from_pairs([("c".to_owned(), i as i64)])
}

fn insert_candidate(store: &SharedBasisStore, i: usize, values: Vec<f64>) {
    store.insert(
        point(i),
        HashMap::from([("y".to_owned(), Fingerprint::from_values(values))]),
        Arc::new(HashMap::from([("y".to_owned(), vec![i as f64])])),
        10,
        true,
    );
}

/// Seeded property loop: random candidate populations (identity
/// duplicates, offsets, affine transforms, noisy affines, pure noise,
/// constants), probed after *every* insert — the indexed scan must return
/// exactly what the exhaustive scan returns for 1..=N candidates, at one
/// and three threads, ties included.
#[test]
fn pruning_bound_never_discards_the_true_best_candidate() {
    const LEN: usize = 16;
    const ROUNDS: usize = 10;
    const MAX_CANDIDATES: usize = 18;
    let detector = CorrelationDetector::default();
    let columns = ["y".to_owned()];
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x1D_EC0DE);

    for round in 0..ROUNDS {
        let base: Vec<f64> = (0..LEN).map(|_| 10.0 * rng.next_f64() - 5.0).collect();
        let probes: Vec<HashMap<String, Fingerprint>> = vec![
            // the base population shape itself
            HashMap::from([("y".to_owned(), Fingerprint::from_values(base.clone()))]),
            // an offset relative of the base
            HashMap::from([(
                "y".to_owned(),
                Fingerprint::from_values(base.iter().map(|v| v + 3.5).collect()),
            )]),
            // an affine relative of the base
            HashMap::from([(
                "y".to_owned(),
                Fingerprint::from_values(base.iter().map(|v| -1.7 * v + 0.4).collect()),
            )]),
            // unrelated noise
            HashMap::from([(
                "y".to_owned(),
                Fingerprint::from_values((0..LEN).map(|_| 10.0 * rng.next_f64()).collect()),
            )]),
        ];

        let store = SharedBasisStore::new(64);
        let mut generated: Vec<Vec<f64>> = Vec::new();
        let n = 1 + (rng.next_u64() as usize) % MAX_CANDIDATES;
        for i in 0..n {
            let values: Vec<f64> = match rng.next_u64() % 7 {
                // exact duplicate of an earlier candidate: a tie the scans
                // must break identically (earliest stamp wins)
                0 if !generated.is_empty() => {
                    generated[(rng.next_u64() as usize) % generated.len()].clone()
                }
                1 => base.clone(),
                2 => base.iter().map(|v| v + 4.0 * rng.next_f64()).collect(),
                3 => {
                    let scale = 0.5 + 2.0 * rng.next_f64();
                    let offset = 4.0 * rng.next_f64() - 2.0;
                    base.iter().map(|v| scale * v + offset).collect()
                }
                4 => {
                    // near-affine: r² lands on either side of min_r2
                    let noise = 0.02 + 0.4 * rng.next_f64();
                    base.iter()
                        .enumerate()
                        .map(|(j, v)| 1.3 * v + if j % 2 == 0 { noise } else { -noise })
                        .collect()
                }
                5 => vec![rng.next_f64(); LEN], // constant
                _ => (0..LEN).map(|_| 10.0 * rng.next_f64() - 5.0).collect(),
            };
            generated.push(values.clone());
            insert_candidate(&store, i, values);

            for threads in [1usize, 3] {
                let (hits_idx, stats_idx) =
                    store.find_correlated_batch_scan(&probes, &columns, &detector, threads, true);
                let (hits_exh, stats_exh) =
                    store.find_correlated_batch_scan(&probes, &columns, &detector, threads, false);
                assert_eq!(stats_exh.candidates_pruned, 0);
                for (pi, (hi, he)) in hits_idx.iter().zip(&hits_exh).enumerate() {
                    match (hi, he) {
                        (None, None) => {}
                        (Some(hi), Some(he)) => {
                            assert_eq!(
                                hi.source,
                                he.source,
                                "round {round} candidates {} probe {pi} threads {threads}: \
                                 indexed scan chose a different source",
                                i + 1
                            );
                            assert_eq!(hi.mappings, he.mappings, "round {round} probe {pi}");
                            assert_eq!(hi.worlds, he.worlds);
                        }
                        (hi, he) => panic!(
                            "round {round} candidates {} probe {pi} threads {threads}: \
                             hit/miss disagreement (indexed {:?}, exhaustive {:?})",
                            i + 1,
                            hi.is_some(),
                            he.is_some()
                        ),
                    }
                }
                // The indexed scan's accounting is thread-independent and
                // covers every (candidate, probe) pair exactly once.
                let (hits_t1, stats_t1) =
                    store.find_correlated_batch_scan(&probes, &columns, &detector, 1, true);
                assert_eq!(stats_idx, stats_t1, "round {round} accounting");
                for (a, b) in hits_idx.iter().zip(&hits_t1) {
                    assert_eq!(a.as_ref().map(|h| &h.source), b.as_ref().map(|h| &h.source));
                }
            }
        }
    }
}

/// Duplicate sources are a pure tie: both scans must pick the earliest
/// stamp, and the indexed scan must prune the later duplicate rather than
/// re-scoring it.
#[test]
fn exact_ties_resolve_to_the_earliest_stamp_under_pruning() {
    let detector = CorrelationDetector::default();
    let columns = ["y".to_owned()];
    let base: Vec<f64> = (0..16).map(|i| (i * i) as f64).collect();
    let store = SharedBasisStore::new(8);
    insert_candidate(&store, 0, base.clone());
    insert_candidate(&store, 1, base.clone());
    insert_candidate(&store, 2, base.iter().map(|v| v + 1.0).collect());
    let probes = vec![HashMap::from([(
        "y".to_owned(),
        Fingerprint::from_values(base),
    )])];
    for use_index in [true, false] {
        let (hits, _) =
            store.find_correlated_batch_scan(&probes, &columns, &detector, 1, use_index);
        let hit = hits[0].as_ref().expect("identity probe hits");
        assert_eq!(hit.source, point(0), "earliest duplicate wins");
        assert_eq!(hit.mappings["y"], Mapping::Identity);
    }
}
