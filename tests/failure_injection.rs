//! Failure injection: malformed scenarios, misbehaving models, and
//! degenerate configurations must produce errors or explicit NaNs — never
//! panics, hangs, or silently wrong numbers.

use std::sync::Arc;

use fuzzy_prophet::prelude::*;
use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_models::demo_registry;
use prophet_sql::parse_script;
use prophet_vg::rng::Rng64;
use prophet_vg::{VgFunction, VgRegistry};

// ---------------------------------------------------------------- DSL level

#[test]
fn malformed_scripts_error_cleanly() {
    for src in [
        "",
        "SELECT",
        "DECLARE PARAMETER current AS RANGE 0 TO 5 STEP BY 1;", // missing @
        "DECLARE PARAMETER @p AS RANGE 5 TO 0 STEP BY 1;\nSELECT 1 AS x INTO r;", // empty domain
        "DECLARE PARAMETER @p AS SET ();\nSELECT 1 AS x INTO r;", // empty set
        "SELECT 1 AS x INTO r; GRAPH OVER @missing EXPECT x;",
        "SELECT 1 AS x INTO r;\nOPTIMIZE SELECT @q FROM r WHERE MAX(EXPECT x) < 1 FOR MAX @q",
        "SELECT CASE WHEN THEN 1 END AS x INTO r;",
        "SELECT 1 AS x INTO r extra tokens",
        "SELECT 'unterminated AS x INTO r;",
    ] {
        assert!(parse_script(src).is_err(), "should reject: {src:?}");
    }
}

#[test]
fn unknown_vg_function_fails_at_evaluation_not_parse() {
    // Parsing cannot know the catalog; evaluation must report the miss.
    let scenario =
        Scenario::parse("DECLARE PARAMETER @p AS SET (1);\nSELECT NoSuchModel(@p) AS x INTO r;")
            .unwrap();
    let engine = Engine::new(
        &scenario,
        demo_registry(),
        EngineConfig {
            worlds_per_point: 4,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let err = engine
        .evaluate(&ParamPoint::from_pairs([("p", 1i64)]))
        .unwrap_err();
    assert!(err.to_string().contains("NoSuchModel"), "{err}");
}

#[test]
fn wrong_arity_vg_call_is_reported() {
    let scenario = Scenario::parse(
        "DECLARE PARAMETER @p AS SET (1);\nSELECT DemandModel(@p) AS x INTO r;", // needs 2 args
    )
    .unwrap();
    let engine = Engine::new(
        &scenario,
        demo_registry(),
        EngineConfig {
            worlds_per_point: 4,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let err = engine
        .evaluate(&ParamPoint::from_pairs([("p", 1i64)]))
        .unwrap_err();
    assert!(err.to_string().contains("expects 2 parameters"), "{err}");
}

// ------------------------------------------------------------- model level

/// A model that returns NaN for some parameter values.
#[derive(Debug)]
struct SometimesNan;

impl VgFunction for SometimesNan {
    fn name(&self) -> &str {
        "SometimesNan"
    }
    fn arity(&self) -> usize {
        1
    }
    fn output_schema(&self) -> Schema {
        Schema::of(&[("v", DataType::Float)])
    }
    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let p = params[0].as_i64()?;
        let v = if p >= 5 { f64::NAN } else { rng.next_f64() };
        let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
        b.push_row(vec![Value::Float(v)])?;
        Ok(b.finish())
    }
}

/// A model that returns a whole table where a scalar is expected.
#[derive(Debug)]
struct WideTable;

impl VgFunction for WideTable {
    fn name(&self) -> &str {
        "WideTable"
    }
    fn arity(&self) -> usize {
        0
    }
    fn output_schema(&self) -> Schema {
        Schema::of(&[("a", DataType::Float), ("b", DataType::Float)])
    }
    fn invoke(&self, _: &[Value], _: &mut dyn Rng64) -> DataResult<Table> {
        let mut b = TableBuilder::new(self.output_schema());
        b.push_row(vec![Value::Float(1.0), Value::Float(2.0)])?;
        Ok(b.finish())
    }
}

fn hostile_registry() -> VgRegistry {
    let mut r = VgRegistry::new();
    r.register(Arc::new(SometimesNan));
    r.register(Arc::new(WideTable));
    r
}

#[test]
fn nan_outputs_surface_in_estimates_instead_of_vanishing() {
    let scenario = Scenario::parse(
        "DECLARE PARAMETER @p AS RANGE 0 TO 9 STEP BY 1;\nSELECT SometimesNan(@p) AS v INTO r;",
    )
    .unwrap();
    let engine = Engine::new(
        &scenario,
        hostile_registry(),
        EngineConfig {
            worlds_per_point: 16,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    // Healthy region: finite estimates.
    let (good, _) = engine
        .evaluate(&ParamPoint::from_pairs([("p", 1i64)]))
        .unwrap();
    assert!(good.expect("v").unwrap().is_finite());
    // NaN region: the expectation must be NaN, not a silently filtered mean.
    let (bad, _) = engine
        .evaluate(&ParamPoint::from_pairs([("p", 7i64)]))
        .unwrap();
    assert!(bad.expect("v").unwrap().is_nan());
}

#[test]
fn nan_constraints_are_infeasible_not_satisfied() {
    let scenario = Scenario::parse(
        "DECLARE PARAMETER @p AS RANGE 0 TO 9 STEP BY 1;\n\
         DECLARE PARAMETER @w AS SET (0);\n\
         SELECT SometimesNan(@p) AS v INTO r;\n\
         OPTIMIZE SELECT @p FROM r WHERE MAX(EXPECT v) < 100 GROUP BY p FOR MAX @p",
    )
    .unwrap();
    let report = OfflineOptimizer::open(
        Engine::new(
            &scenario,
            hostile_registry(),
            EngineConfig {
                worlds_per_point: 8,
                ..EngineConfig::default()
            },
        )
        .unwrap(),
    )
    .unwrap()
    .run()
    .unwrap();
    // p in 5..=9 produce NaN metrics → infeasible; best feasible is p=4.
    let best = report.best.expect("p=4 is healthy and feasible");
    assert_eq!(best.point.get("p"), Some(4));
    for a in report
        .answers
        .iter()
        .filter(|a| a.point.get("p").unwrap() >= 5)
    {
        assert!(!a.feasible, "NaN groups must be infeasible: {a:?}");
    }
}

#[test]
fn multi_column_tables_in_scalar_position_error() {
    let scenario = Scenario::parse("SELECT WideTable() AS v INTO r;").unwrap();
    let engine = Engine::new(
        &scenario,
        hostile_registry(),
        EngineConfig {
            worlds_per_point: 4,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let err = engine.evaluate(&ParamPoint::new()).unwrap_err();
    assert!(err.to_string().contains("exactly one cell"), "{err}");
}

// ------------------------------------------------------------ engine level

#[test]
fn unbound_parameters_error_at_evaluation() {
    let scenario = Scenario::figure2().unwrap();
    let engine = Engine::new(
        &scenario,
        demo_registry(),
        EngineConfig {
            worlds_per_point: 4,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    // Point misses @feature entirely.
    let incomplete =
        ParamPoint::from_pairs([("current", 0i64), ("purchase1", 0), ("purchase2", 0)]);
    let err = engine.evaluate(&incomplete).unwrap_err();
    assert!(err.to_string().contains("unbound parameter"), "{err}");
}

#[test]
fn online_mode_without_graph_and_offline_without_optimize_error() {
    let bare = Scenario::parse("DECLARE PARAMETER @p AS SET (1);\nSELECT @p AS x INTO r;").unwrap();
    let engine = || Engine::new(&bare, demo_registry(), EngineConfig::default()).unwrap();
    assert!(matches!(
        OnlineSession::open(engine()),
        Err(ProphetError::MissingGraphDirective)
    ));
    assert!(matches!(
        OfflineOptimizer::open(engine()),
        Err(ProphetError::MissingOptimizeDirective)
    ));
}

#[test]
fn nan_fingerprints_disable_mapping_but_not_answers() {
    // A NaN-producing model cannot be fingerprint-matched; the engine must
    // fall back to simulation (never map NaN garbage onto healthy points).
    let scenario = Scenario::parse(
        "DECLARE PARAMETER @p AS RANGE 4 TO 9 STEP BY 1;\nSELECT SometimesNan(@p) AS v INTO r;",
    )
    .unwrap();
    let engine = Engine::new(
        &scenario,
        hostile_registry(),
        EngineConfig {
            worlds_per_point: 8,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let (_, o1) = engine
        .evaluate(&ParamPoint::from_pairs([("p", 7i64)]))
        .unwrap();
    let (_, o2) = engine
        .evaluate(&ParamPoint::from_pairs([("p", 8i64)]))
        .unwrap();
    assert_eq!(o1, EvalOutcome::Simulated);
    assert_eq!(
        o2,
        EvalOutcome::Simulated,
        "NaN fingerprints must not match each other"
    );
}
