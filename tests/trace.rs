//! Flight-recorder integration (tier 2).
//!
//! End-to-end checks of the observability surface added in 0.8: a traced
//! sweep records the full event taxonomy in stamp order, a cancelled
//! job's trace shows the cancel marker with no chunk work after it (the
//! ordering argument in `docs/OBSERVABILITY.md`), `Prophet::telemetry`
//! exposes monotone percentiles, the Chrome exporter emits structurally
//! sound JSON, and turning tracing on or off never changes an answer.
//! The chaos suite (`tests/chaos.rs`) carries the 32-seed differential;
//! this file carries the recorder's own contracts.

use fuzzy_prophet::prelude::*;
use prophet_models::full_registry;
use prophet_models::scenarios::PRICING_WHATIF;

fn service(workers: usize, trace: TraceConfig) -> Prophet {
    Prophet::builder()
        .scenario_sql("pricing", PRICING_WHATIF)
        .unwrap()
        .registry(full_registry())
        .config(EngineConfig {
            worlds_per_point: 8,
            threads: 2,
            ..EngineConfig::default()
        })
        .scheduler(SchedulerConfig {
            workers,
            // Tiny chunks: many queue events per job.
            chunk_points: 2,
            trace,
            ..SchedulerConfig::default()
        })
        .build()
        .unwrap()
}

fn run_sweep(prophet: &Prophet) -> OfflineReport {
    let report = prophet
        .submit(JobSpec::sweep("pricing"))
        .unwrap()
        .wait()
        .unwrap()
        .into_sweep()
        .unwrap();
    // `wait()` returns on the Final event, which the driver emits just
    // *before* its `finish_job` bookkeeping (the `job_finish` stamp and
    // the active-job decrement). Quiesce so the trace is complete.
    prophet.scheduler().wait_idle();
    report
}

/// One traced sweep exercises every layer of the taxonomy: job
/// lifecycle, chunk queue flow, driver phases, and store traffic — and
/// the merged view comes back sorted by stamp.
#[test]
fn traced_sweep_records_the_full_event_taxonomy_in_stamp_order() {
    let prophet = service(2, TraceConfig::ring());
    let report = run_sweep(&prophet);
    assert!(report.best.is_some());

    let events = prophet.trace_events();
    let has = |kind: TraceEventKind| events.iter().any(|e| e.kind == kind);
    // Job lifecycle.
    assert!(has(TraceEventKind::JobSubmit), "job_submit");
    assert!(has(TraceEventKind::JobStart), "job_start");
    assert!(has(TraceEventKind::JobFinish), "job_finish");
    // Chunk queue flow.
    assert!(has(TraceEventKind::ChunkEnqueue), "chunk_enqueue");
    assert!(has(TraceEventKind::ChunkDequeue), "chunk_dequeue");
    assert!(has(TraceEventKind::ChunkRun), "chunk_run");
    // Driver phases (PRICING_WHATIF has stochastic columns, so the
    // fingerprint phase runs, and a cold sweep must simulate).
    assert!(has(TraceEventKind::PhaseProbe), "phase_probe");
    assert!(has(TraceEventKind::PhaseMatch), "phase_match");
    assert!(has(TraceEventKind::PhaseRemap), "phase_remap");
    assert!(has(TraceEventKind::PhaseSimulate), "phase_simulate");
    assert!(has(TraceEventKind::PhasePublish), "phase_publish");
    // Store traffic (claims carry the shard the point hashes to).
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::StoreClaim { .. })),
        "store_claim"
    );
    assert!(has(TraceEventKind::StorePublish), "store_publish");

    // The merged view is sorted by monotonic stamp.
    assert!(
        events.windows(2).all(|w| w[0].nanos <= w[1].nanos),
        "events() must come back in stamp order"
    );
    // Chunk events carry their chunk sequence; lifecycle events do not.
    assert!(events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::ChunkRun))
        .all(|e| e.chunk != u64::MAX));
}

/// `Prophet::telemetry` snapshots the histograms and gauges: percentiles
/// are monotone (by bucket-ceiling construction), counts reflect the
/// work done, and the queue-depth watermark saw at least one queued
/// chunk.
#[test]
fn telemetry_snapshot_is_monotone_and_populated() {
    let prophet = service(2, TraceConfig::ring());
    run_sweep(&prophet);

    let snapshot = prophet.telemetry();
    assert_eq!(snapshot.workers_total, 2);
    assert_eq!(snapshot.inflight_claims, 0, "nothing in flight at rest");

    let t = &snapshot.trace;
    assert!(t.events_recorded > 0);
    assert!(t.chunk_service.count() > 0, "chunk service observed");
    assert!(t.chunk_service.p50() <= t.chunk_service.p95());
    assert!(t.chunk_service.p95() <= t.chunk_service.p99());
    let queue_waits: u64 = t.queue_wait.iter().map(LatencyHistogram::count).sum();
    assert!(queue_waits > 0, "queue waits observed");
    assert!(t.match_scan.count() > 0, "match-scan waves observed");
    assert!(t.max_queue_depth > 0, "watermark saw a queued chunk");
    assert_eq!(t.queue_depth, 0, "queue drained at rest");
    // The driver's worker may still be unwinding its `run_task` frame
    // when the last job finishes, so "idle" is eventual — only bound it.
    assert!(t.workers_busy <= snapshot.workers_total);
}

/// A cancelled job's trace contains the cancel marker, and no chunk
/// event of that job is stamped after it: every chunk anchors its events
/// at a clock read taken *before* its cancel-flag check, and the marker
/// is stamped *after* the flag is stored, so sorted by stamp the cancel
/// is last among them.
#[test]
fn cancelled_job_trace_shows_cancel_after_all_chunk_work() {
    let prophet = service(1, TraceConfig::ring());
    let handle = prophet.submit(JobSpec::sweep("pricing")).unwrap();

    let mut cancelled = false;
    for event in handle.events() {
        match event {
            JobEvent::Chunk(_) => {
                if !cancelled {
                    cancelled = true;
                    handle.cancel();
                }
            }
            JobEvent::Cancelled | JobEvent::Final(_) => break,
            JobEvent::Failed(err) => panic!("{err:?}"),
        }
    }
    assert!(cancelled, "sweep must stream at least one chunk");

    let events = handle.trace();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.job == handle.id()));
    let cancel = events
        .iter()
        .find(|e| e.kind == TraceEventKind::JobCancel)
        .expect("cancel marker recorded");
    for event in &events {
        if matches!(
            event.kind,
            TraceEventKind::ChunkEnqueue | TraceEventKind::ChunkDequeue | TraceEventKind::ChunkRun
        ) {
            assert!(
                event.nanos <= cancel.nanos,
                "{} (chunk {}) stamped {} ns after job_cancel",
                event.kind.name(),
                event.chunk,
                event.nanos - cancel.nanos
            );
        }
    }
}

/// The Chrome exporter output is structurally sound: a JSON array with
/// per-worker `thread_name` metadata, complete (`X`) spans, and (`i`)
/// instants, with braces and brackets balanced.
#[test]
fn chrome_export_is_structurally_sound() {
    let prophet = service(2, TraceConfig::ring());
    run_sweep(&prophet);

    let json = chrome_trace_json(&prophet.trace_events());
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert!(json.contains("\"thread_name\""), "worker rows named");
    assert!(json.contains("\"ph\":\"X\""), "spans present");
    assert!(json.contains("\"ph\":\"i\""), "instants present");
    assert!(json.contains("\"name\":\"chunk_run\""));
    assert!(json.contains("\"name\":\"job_finish\""));
    let balance = |open: char, close: char| {
        json.chars().filter(|&c| c == open).count() == json.chars().filter(|&c| c == close).count()
    };
    assert!(balance('{', '}'), "braces balanced");
    assert!(balance('[', ']'), "brackets balanced");
}

/// Tracing observes, never decides: the same sweep with the recorder
/// off, ringed, and ringed-tiny (constant overwrite pressure) lands on
/// identical answers and identical work counters.
#[test]
fn tracing_configuration_never_changes_answers() {
    let configs = [
        TraceConfig::Off,
        TraceConfig::ring(),
        // A 16-slot ring drops almost everything — overwrite pressure
        // must not leak into scheduling either.
        TraceConfig::Ring { capacity: 16 },
    ];
    let reports: Vec<OfflineReport> = configs
        .iter()
        .map(|&trace| run_sweep(&service(2, trace)))
        .collect();
    for report in &reports[1..] {
        assert_eq!(report.answers, reports[0].answers);
        assert_eq!(report.best, reports[0].best);
        assert_eq!(
            report.metrics.points_simulated,
            reports[0].metrics.points_simulated
        );
        assert_eq!(
            report.metrics.worlds_simulated,
            reports[0].metrics.worlds_simulated
        );
    }
}
