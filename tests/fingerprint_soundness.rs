//! Statistical soundness of fingerprint-based reuse.
//!
//! Re-mapping must never change the *answers* — only the work. These tests
//! compare mapped results against ground-truth direct simulation across the
//! mapping families the demo scenario produces (identity across irrelevant
//! parameter changes, exact offsets across purchase shifts, affine chains
//! across weeks).

use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;

fn fresh_engine(worlds: usize) -> Engine {
    Engine::new(
        &Scenario::figure2().unwrap(),
        demo_registry(),
        EngineConfig {
            worlds_per_point: worlds,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

fn point(current: i64, p1: i64, p2: i64, feature: i64) -> ParamPoint {
    ParamPoint::from_pairs([
        ("current", current),
        ("purchase1", p1),
        ("purchase2", p2),
        ("feature", feature),
    ])
}

/// Ground truth: a dedicated engine that has never seen any other point, so
/// its evaluation of the target is a direct simulation.
fn direct(p: &ParamPoint, worlds: usize) -> prophet_mc::SampleSet {
    let e = fresh_engine(worlds);
    let (s, outcome) = e.evaluate(p).unwrap();
    assert_eq!(outcome, EvalOutcome::Simulated);
    s
}

#[test]
fn identity_mapping_reproduces_bitwise() {
    // Feature date changes with both values after the evaluated week are
    // invisible: outputs must be *identical*.
    let e = fresh_engine(80);
    let a = point(5, 16, 36, 12);
    let b = point(5, 16, 36, 44);
    e.evaluate(&a).unwrap();
    let (mapped, outcome) = e.evaluate(&b).unwrap();
    assert!(
        matches!(outcome, EvalOutcome::Mapped { exact: true, .. }),
        "{outcome:?}"
    );
    let truth = direct(&b, 80);
    assert_eq!(mapped.samples("demand"), truth.samples("demand"));
    assert_eq!(mapped.samples("capacity"), truth.samples("capacity"));
    assert_eq!(mapped.samples("overload"), truth.samples("overload"));
}

#[test]
fn offset_mapping_across_purchase_shift_is_exact() {
    // Moving purchase1 across the evaluated week shifts capacity by exactly
    // one purchase worth of cores under common random numbers.
    let e = fresh_engine(80);
    let a = point(10, 4, 36, 12);
    let b = point(10, 16, 36, 12);
    e.evaluate(&a).unwrap();
    let (mapped, outcome) = e.evaluate(&b).unwrap();
    assert!(
        matches!(outcome, EvalOutcome::Mapped { exact: true, .. }),
        "{outcome:?}"
    );
    let truth = direct(&b, 80);
    let m = mapped.samples("capacity").unwrap();
    let t = truth.samples("capacity").unwrap();
    for (x, y) in m.iter().zip(t) {
        assert!((x - y).abs() < 1e-6, "mapped {x} vs direct {y}");
    }
    assert_eq!(mapped.samples("overload"), truth.samples("overload"));
}

#[test]
fn inexact_mappings_preserve_statistics_within_tolerance() {
    // Sweep a full year with one engine (mappings accumulate), then check
    // every week's expectation against direct simulation.
    let worlds = 150;
    let reused = fresh_engine(worlds);
    let mut max_err: f64 = 0.0;
    let mut mapped_weeks = 0;
    for week in 0..=52 {
        let p = point(week, 16, 36, 12);
        let (s, outcome) = reused.evaluate(&p).unwrap();
        if matches!(outcome, EvalOutcome::Mapped { .. }) {
            mapped_weeks += 1;
        }
        let truth = direct(&p, worlds);
        let em = s.expect("overload").unwrap();
        let et = truth.expect("overload").unwrap();
        max_err = max_err.max((em - et).abs());
    }
    assert!(mapped_weeks > 0, "the sweep must exercise mapping");
    // Overload is a probability; mapped estimates must stay close.
    assert!(max_err < 0.12, "max |E_mapped - E_direct| = {max_err}");
}

#[test]
fn mapped_capacity_means_track_direct_means() {
    let worlds = 120;
    let reused = fresh_engine(worlds);
    for week in [20i64, 30, 40, 52] {
        let p = point(week, 8, 24, 12);
        let (s, _) = reused.evaluate(&p).unwrap();
        let truth = direct(&p, worlds);
        let em = s.expect("capacity").unwrap();
        let et = truth.expect("capacity").unwrap();
        let rel = (em - et).abs() / et.abs().max(1.0);
        assert!(rel < 0.02, "week {week}: mapped {em:.0} vs direct {et:.0}");
    }
}

#[test]
fn disabling_fingerprints_is_the_ground_truth_baseline() {
    // With fingerprints off, every point must be freshly simulated and the
    // engine must never report mapped outcomes.
    let e = Engine::new(
        &Scenario::figure2().unwrap(),
        demo_registry(),
        EngineConfig {
            worlds_per_point: 40,
            fingerprints_enabled: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for week in 0..10 {
        let (_, outcome) = e.evaluate(&point(week, 16, 36, 12)).unwrap();
        assert_eq!(outcome, EvalOutcome::Simulated);
    }
    assert_eq!(e.metrics().points_mapped, 0);
    assert_eq!(e.metrics().probe_evaluations, 0);
}

#[test]
fn demand_release_boundary_blocks_mapping_of_demand() {
    // Demand across the feature-release boundary gains an independent
    // gaussian: the engine must NOT claim an (exact) demand mapping there.
    // (Capacity still maps, but the entry requires all stochastic columns.)
    let e = fresh_engine(60);
    let a = point(20, 4, 8, 12); // feature released at week 20
    let b = point(20, 4, 8, 36); // not released
    e.evaluate(&a).unwrap();
    let (s, outcome) = e.evaluate(&b).unwrap();
    assert_eq!(
        outcome,
        EvalOutcome::Simulated,
        "release boundary must force simulation"
    );
    // and the simulated answer differs from a's in mean demand by ≈ the
    // feature gaussian's mean
    let (sa, _) = e.evaluate(&a).unwrap();
    let diff = sa.expect("demand").unwrap() - s.expect("demand").unwrap();
    assert!(
        (diff - 1_200.0).abs() < 250.0,
        "feature demand delta ≈ 1200, got {diff}"
    );
}
