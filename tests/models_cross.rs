//! Cross-model integration: several VG models in one scenario, custom
//! configurations through the registry, and the stream-alignment discipline
//! holding across model boundaries.

use std::sync::Arc;

use fuzzy_prophet::prelude::*;
use prophet_models::{full_registry, CapacityConfig, DemandConfig};

#[test]
fn three_models_in_one_select() {
    // A composite dashboard: capacity risk and support backlog and revenue
    // in one scenario — all three models draw from per-call substreams, so
    // none can desynchronize another.
    let src = "\
DECLARE PARAMETER @week AS RANGE 0 TO 52 STEP BY 13;
DECLARE PARAMETER @agents AS SET (10);
DECLARE PARAMETER @price AS SET (20);
SELECT DemandModel(@week, 26) AS demand,
       QueueModel(@week, @agents) AS backlog,
       RevenueModel(@week, @price) AS revenue,
       CASE WHEN backlog > 25 THEN 1 ELSE 0 END AS breach
INTO results;";
    let engine = Engine::new(
        &Scenario::parse(src).unwrap(),
        full_registry(),
        EngineConfig {
            worlds_per_point: 60,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let p = ParamPoint::from_pairs([("week", 26i64), ("agents", 10), ("price", 20)]);
    let (s, _) = engine.evaluate(&p).unwrap();
    assert!(s.expect("demand").unwrap() > 8_000.0);
    assert!(s.expect("backlog").unwrap() >= 0.0);
    assert!(s.expect("revenue").unwrap() > 0.0);
    let breach = s.expect("breach").unwrap();
    assert!((0.0..=1.0).contains(&breach));
}

#[test]
fn literal_arguments_to_vg_functions_work() {
    // @feature replaced by a literal 26 — VG args are expressions.
    let src = "SELECT DemandModel(10, 13 * 2) AS demand INTO results;";
    let engine = Engine::new(
        &Scenario::parse(src).unwrap(),
        full_registry(),
        EngineConfig {
            worlds_per_point: 200,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let (s, _) = engine.evaluate(&ParamPoint::new()).unwrap();
    let d = s.expect("demand").unwrap();
    // week 10, feature at 26 (not yet released): mean ≈ 8000 + 700
    assert!((d - 8_700.0).abs() < 150.0, "demand {d}");
}

#[test]
fn changing_one_models_parameter_leaves_other_models_streams_intact() {
    // agents only feeds QueueModel; demand/revenue must be bit-identical
    // across agents settings under CRN.
    let src = "\
DECLARE PARAMETER @week AS SET (20);
DECLARE PARAMETER @agents AS SET (6, 14);
SELECT DemandModel(@week, 26) AS demand,
       QueueModel(@week, @agents) AS backlog,
       RevenueModel(@week, 20) AS revenue
INTO results;";
    let scenario = Scenario::parse(src).unwrap();
    let eval = |agents: i64| {
        // fresh engine each time so nothing is mapped/cached
        let engine = Engine::new(
            &scenario,
            full_registry(),
            EngineConfig {
                worlds_per_point: 40,
                fingerprints_enabled: false,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let p = ParamPoint::from_pairs([("week", 20i64), ("agents", agents)]);
        let (s, _) = engine.evaluate(&p).unwrap();
        (
            s.samples("demand").unwrap().to_vec(),
            s.samples("backlog").unwrap().to_vec(),
            s.samples("revenue").unwrap().to_vec(),
        )
    };
    let (d6, b6, r6) = eval(6);
    let (d14, b14, r14) = eval(14);
    assert_eq!(d6, d14, "demand stream must not depend on @agents");
    assert_eq!(r6, r14, "revenue stream must not depend on @agents");
    assert_ne!(b6, b14, "backlog must respond to staffing");
}

#[test]
fn custom_model_configs_flow_through_the_registry() {
    use prophet_models::demo_registry_with;

    // A fleet with double the purchase size: the capacity step doubles.
    let big = demo_registry_with(
        DemandConfig::default(),
        CapacityConfig {
            cores_per_purchase: 8_000.0,
            ..CapacityConfig::default()
        },
    );
    let src = "\
DECLARE PARAMETER @current AS SET (30);
SELECT CapacityModel(@current, 4, 52) AS capacity INTO results;";
    let engine = Engine::new(
        &Scenario::parse(src).unwrap(),
        big,
        EngineConfig {
            worlds_per_point: 300,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let (s, _) = engine
        .evaluate(&ParamPoint::from_pairs([("current", 30i64)]))
        .unwrap();
    let cap = s.expect("capacity").unwrap();
    // 10_000 initial + 8_000 (one deployed purchase) − ~31 weeks of decay
    assert!((15_000.0..17_500.0).contains(&cap), "capacity {cap}");
}

#[test]
fn shadowing_a_model_updates_every_consumer() {
    // The paper: updating a function definition updates all Prophet
    // instances. Re-registering `DemandModel` changes engine behaviour
    // without touching the scenario.
    use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
    use prophet_vg::rng::Rng64;
    use prophet_vg::VgFunction;

    #[derive(Debug)]
    struct FlatDemand;
    impl VgFunction for FlatDemand {
        fn name(&self) -> &str {
            "DemandModel"
        }
        fn arity(&self) -> usize {
            2
        }
        fn output_schema(&self) -> Schema {
            Schema::of(&[("demand", DataType::Float)])
        }
        fn invoke(&self, _: &[Value], _: &mut dyn Rng64) -> DataResult<Table> {
            let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
            b.push_row(vec![Value::Float(1_234.0)])?;
            Ok(b.finish())
        }
    }

    let mut registry = prophet_models::demo_registry();
    registry.register(Arc::new(FlatDemand));
    let src =
        "DECLARE PARAMETER @w AS SET (9);\nSELECT DemandModel(@w, 26) AS demand INTO results;";
    let engine = Engine::new(
        &Scenario::parse(src).unwrap(),
        registry,
        EngineConfig {
            worlds_per_point: 8,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let (s, _) = engine
        .evaluate(&ParamPoint::from_pairs([("w", 9i64)]))
        .unwrap();
    assert_eq!(s.expect("demand").unwrap(), 1_234.0);
    assert_eq!(s.expect_std_dev("demand").unwrap(), 0.0);
}
