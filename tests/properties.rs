//! Property-based tests (proptest) over the core data structures and
//! invariants: the parser's totality, statistical kernels, mapping algebra,
//! parameter-point semantics and PRNG range contracts.

use proptest::prelude::*;

use fuzzy_prophet::prelude::*;
use prophet_data::{csv, DataType, Schema, TableBuilder, Value};
use prophet_fingerprint::{fit_affine, pearson, CorrelationDetector, Fingerprint, Mapping};
use prophet_mc::aggregate::{quantile, Welford};
use prophet_sql::parse_script;
use prophet_vg::rng::{Rng64, Xoshiro256StarStar};

// --------------------------------------------------------------- parser

proptest! {
    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,300}") {
        let _ = parse_script(&src);
    }

    /// Structured fuzz: near-miss scenarios built from grammar fragments
    /// must parse or error — never panic, never loop.
    #[test]
    fn parser_never_panics_on_fragment_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("DECLARE PARAMETER @p AS RANGE 0 TO 9 STEP BY 1;"),
                Just("DECLARE PARAMETER @q AS SET (1,2);"),
                Just("SELECT 1 AS x INTO r;"),
                Just("SELECT CASE WHEN x < 1 THEN 1 ELSE 0 END AS y INTO r;"),
                Just("GRAPH OVER @p EXPECT x;"),
                Just("OPTIMIZE SELECT @p FROM r WHERE MAX(EXPECT x) < 1 FOR MAX @p"),
                Just("WHERE MAX("),
                Just("@@@"),
                Just("'open string"),
            ],
            0..6,
        )
    ) {
        let src = parts.concat();
        let _ = parse_script(&src);
    }

    /// Any RANGE declaration with positive step round-trips its domain:
    /// all values lie in [lo, hi], are step-aligned, and are sorted.
    #[test]
    fn range_domains_are_well_formed(lo in -100i64..100, span in 0i64..200, step in 1i64..20) {
        let hi = lo + span;
        let src = format!(
            "DECLARE PARAMETER @p AS RANGE {lo} TO {hi} STEP BY {step};\nSELECT @p AS x INTO r;"
        );
        let script = parse_script(&src).unwrap();
        let values = script.params[0].domain.values();
        prop_assert!(!values.is_empty());
        prop_assert!(values.windows(2).all(|w| w[1] - w[0] == step));
        prop_assert!(values.iter().all(|&v| v >= lo && v <= hi));
        prop_assert!(values.iter().all(|&v| (v - lo) % step == 0));
    }
}

// ----------------------------------------------------------- statistics

proptest! {
    /// Welford's streaming moments agree with the two-pass formulas.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        w.extend(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean().unwrap() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance().unwrap() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    /// Merging two Welford accumulators equals accumulating the
    /// concatenation.
    #[test]
    fn welford_merge_is_concatenation(
        xs in proptest::collection::vec(-1e5f64..1e5, 1..100),
        ys in proptest::collection::vec(-1e5f64..1e5, 1..100),
    ) {
        let mut a = Welford::new();
        a.extend(&xs);
        let mut b = Welford::new();
        b.extend(&ys);
        a.merge(&b);
        let mut whole = Welford::new();
        whole.extend(&xs);
        whole.extend(&ys);
        prop_assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        let (va, vw) = (a.variance().unwrap(), whole.variance().unwrap());
        prop_assert!((va - vw).abs() <= 1e-6 * (1.0 + vw.abs()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Quantiles are bounded by the sample extremes and monotone in q.
    #[test]
    fn quantiles_bounded_and_monotone(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let a = quantile(&xs, q1).unwrap();
        let b = quantile(&xs, q2).unwrap();
        prop_assert!(a >= lo && a <= hi);
        if q1 <= q2 {
            prop_assert!(a <= b + 1e-9);
        } else {
            prop_assert!(b <= a + 1e-9);
        }
    }

    /// Pearson correlation is symmetric, bounded and scale-invariant.
    #[test]
    fn pearson_properties(
        xs in proptest::collection::vec(-1e3f64..1e3, 3..50),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((r - 1.0).abs() < 1e-6, "exact linear relation ⇒ r = 1, got {r}");
        }
        let zs: Vec<f64> = xs.iter().map(|x| scale * x + shift).collect();
        if let (Some(a), Some(b)) = (pearson(&xs, &zs), pearson(&zs, &xs)) {
            prop_assert!((a - b).abs() < 1e-9, "symmetry");
            prop_assert!(a.abs() <= 1.0 + 1e-9, "bounded");
        }
    }

    /// Affine fits recover planted lines exactly.
    #[test]
    fn affine_fit_recovers_planted_line(
        xs in proptest::collection::vec(-1e3f64..1e3, 3..50),
        scale in -5.0f64..5.0,
        offset in -100.0f64..100.0,
    ) {
        // need variance in x
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let ys: Vec<f64> = xs.iter().map(|x| scale * x + offset).collect();
        let fit = fit_affine(&xs, &ys).unwrap();
        prop_assert!((fit.scale - scale).abs() < 1e-6 * (1.0 + scale.abs()), "{fit:?}");
        prop_assert!((fit.offset - offset).abs() < 1e-4 * (1.0 + offset.abs()), "{fit:?}");
        prop_assert!(fit.r2 > 1.0 - 1e-9);
    }
}

// ------------------------------------------------------- mapping algebra

fn mapping_strategy() -> impl Strategy<Value = Mapping> {
    prop_oneof![
        Just(Mapping::Identity),
        (-1e3f64..1e3).prop_map(Mapping::Offset),
        ((-10.0f64..10.0), (-1e3f64..1e3)).prop_map(|(scale, offset)| Mapping::Affine {
            scale,
            offset,
            residual_std: 0.0,
        }),
    ]
}

proptest! {
    /// `a.then(b)` applied to a scalar equals applying a then b.
    #[test]
    fn mapping_composition_is_sequential_application(
        a in mapping_strategy(),
        b in mapping_strategy(),
        x in -1e4f64..1e4,
    ) {
        let direct = b.apply_scalar(a.apply_scalar(x));
        let composed = a.clone().then(b.clone()).apply_scalar(x);
        prop_assert!((direct - composed).abs() <= 1e-9 * (1.0 + direct.abs()));
    }

    /// Detection then application reproduces the target fingerprint for
    /// planted offset relations.
    #[test]
    fn detect_then_apply_closes_the_loop(
        base in proptest::collection::vec(-1e3f64..1e3, 4..64),
        delta in -1e3f64..1e3,
    ) {
        // need variation so the fingerprints aren't degenerate
        prop_assume!(base.iter().any(|&x| (x - base[0]).abs() > 1e-3));
        let source = Fingerprint::from_values(base.clone());
        let target = Fingerprint::from_values(base.iter().map(|v| v + delta).collect());
        let detector = CorrelationDetector::default();
        let mapping = detector.detect(&source, &target).expect("planted offset must be detected");
        let reproduced = mapping.apply_samples(source.values());
        for (r, t) in reproduced.iter().zip(target.values()) {
            prop_assert!((r - t).abs() < 1e-6, "mapped {r} vs target {t}");
        }
    }
}

// ------------------------------------------------------- parameter points

proptest! {
    /// Points are order-insensitive value maps.
    #[test]
    fn param_point_insertion_order_irrelevant(
        pairs in proptest::collection::vec(("[a-e]", -100i64..100), 0..8)
    ) {
        let forward = ParamPoint::from_pairs(pairs.clone());
        let mut reversed_pairs = pairs.clone();
        reversed_pairs.reverse();
        // later duplicates overwrite earlier ones, so dedup keeping last
        let mut last: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
        for (k, v) in &pairs {
            last.insert(k.clone(), *v);
        }
        let canonical = ParamPoint::from_pairs(last.clone());
        prop_assert_eq!(&forward, &canonical);
        prop_assert_eq!(forward.stable_hash(), canonical.stable_hash());
        for (k, v) in last {
            prop_assert_eq!(forward.get(&k), Some(v));
        }
    }

    /// `with` never mutates the original and always sets the new value.
    #[test]
    fn param_point_with_is_persistent(
        base in proptest::collection::vec(("[a-e]", -100i64..100), 1..6),
        value in -100i64..100,
    ) {
        let point = ParamPoint::from_pairs(base);
        let name = point.iter().next().unwrap().0.to_owned();
        let old = point.get(&name);
        let updated = point.with(name.clone(), value);
        prop_assert_eq!(updated.get(&name), Some(value));
        prop_assert_eq!(point.get(&name), old);
    }
}

// --------------------------------------------------------------- values

proptest! {
    /// total_cmp is antisymmetric and consistent with equality on ints.
    #[test]
    fn value_total_cmp_antisymmetric(a in -1000i64..1000, b in -1000i64..1000) {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        prop_assert_eq!(va.total_cmp(&vb), vb.total_cmp(&va).reverse());
        prop_assert_eq!(va.total_cmp(&vb) == std::cmp::Ordering::Equal, a == b);
    }

    /// Int/Float arithmetic agrees with f64 arithmetic where exact.
    #[test]
    fn numeric_arithmetic_matches_f64(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let va = Value::Float(a);
        let vb = Value::Float(b);
        prop_assert_eq!(va.add(&vb).unwrap(), Value::Float(a + b));
        prop_assert_eq!(va.mul(&vb).unwrap(), Value::Float(a * b));
        prop_assert_eq!(va.sub(&vb).unwrap(), Value::Float(a - b));
    }
}

// ------------------------------------------------------------------ rng

proptest! {
    /// gen_range_i64 respects inclusive bounds for arbitrary ranges.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in -1000i64..1000, span in 0i64..2000) {
        let hi = lo + span;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..50 {
            let v = rng.gen_range_i64(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Unit floats stay in [0, 1).
    #[test]
    fn rng_unit_floats(seed in any::<u64>()) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..100 {
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }
}

// ------------------------------------------------------------------ csv

proptest! {
    /// CSV output always has exactly rows+1 lines and balanced quotes,
    /// whatever strings go in.
    #[test]
    fn csv_is_well_formed(cells in proptest::collection::vec(".{0,30}", 1..20)) {
        let schema = Schema::of(&[("s", DataType::Str)]);
        let mut b = TableBuilder::new(schema);
        for c in &cells {
            b.push_row(vec![Value::Str(c.clone())]).unwrap();
        }
        let table = b.finish();
        let text = csv::to_csv(&table).unwrap();
        let quote_count = text.matches('"').count();
        prop_assert_eq!(quote_count % 2, 0, "quotes must balance in {:?}", text);
        prop_assert!(text.ends_with('\n'));
    }
}
