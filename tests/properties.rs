//! Property-style tests over the core data structures and invariants: the
//! parser's totality, statistical kernels, mapping algebra, parameter-point
//! semantics and PRNG range contracts.
//!
//! The build environment vendors no external crates, so instead of
//! `proptest` these run each property over many *deterministically
//! generated* cases: inputs are drawn from the workspace's own seeded
//! PRNGs, so failures reproduce exactly and the suite stays dependency-free.

use fuzzy_prophet::prelude::*;
use prophet_data::{csv, DataType, Schema, TableBuilder, Value};
use prophet_fingerprint::{fit_affine, pearson, CorrelationDetector, Fingerprint, Mapping};
use prophet_mc::aggregate::{quantile, Welford};
use prophet_sql::parse_script;
use prophet_vg::rng::{Rng64, Xoshiro256StarStar};

const CASES: usize = 200;

// A fixed base seed; cases derive from it so every run sees the same inputs.
const BASE_SEED: u64 = 0x5EED_CAFE_F00D_0001;

fn case_rng(salt: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(BASE_SEED ^ salt)
}

fn random_vec(rng: &mut Xoshiro256StarStar, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range_f64(lo, hi)).collect()
}

// --------------------------------------------------------------- parser

#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut rng = case_rng(1);
    for _ in 0..CASES {
        let len = rng.gen_range_i64(0, 300) as usize;
        let src: String = (0..len)
            .map(|_| {
                // Printable ASCII plus a sprinkling of newlines and tabs.
                match rng.gen_range_i64(0, 97) {
                    95 => '\n',
                    96 => '\t',
                    c => (32 + c as u8) as char,
                }
            })
            .collect();
        let _ = parse_script(&src);
    }
}

#[test]
fn parser_never_panics_on_fragment_soup() {
    const FRAGMENTS: &[&str] = &[
        "DECLARE PARAMETER @p AS RANGE 0 TO 9 STEP BY 1;",
        "DECLARE PARAMETER @q AS SET (1,2);",
        "SELECT 1 AS x INTO r;",
        "SELECT CASE WHEN x < 1 THEN 1 ELSE 0 END AS y INTO r;",
        "GRAPH OVER @p EXPECT x;",
        "OPTIMIZE SELECT @p FROM r WHERE MAX(EXPECT x) < 1 FOR MAX @p",
        "WHERE MAX(",
        "@@@",
        "'open string",
    ];
    let mut rng = case_rng(2);
    for _ in 0..CASES {
        let parts = rng.gen_range_i64(0, 5) as usize;
        let src: String = (0..parts)
            .map(|_| FRAGMENTS[rng.gen_range_i64(0, FRAGMENTS.len() as i64 - 1) as usize])
            .collect();
        let _ = parse_script(&src);
    }
}

#[test]
fn range_domains_are_well_formed() {
    let mut rng = case_rng(3);
    for _ in 0..CASES {
        let lo = rng.gen_range_i64(-100, 99);
        let span = rng.gen_range_i64(0, 199);
        let step = rng.gen_range_i64(1, 19);
        let hi = lo + span;
        let src = format!(
            "DECLARE PARAMETER @p AS RANGE {lo} TO {hi} STEP BY {step};\nSELECT @p AS x INTO r;"
        );
        let script = parse_script(&src).unwrap();
        let values = script.params[0].domain.values();
        assert!(!values.is_empty());
        assert!(
            values.windows(2).all(|w| w[1] - w[0] == step),
            "step-aligned: {values:?}"
        );
        assert!(values.iter().all(|&v| v >= lo && v <= hi));
        assert!(values.iter().all(|&v| (v - lo) % step == 0));
    }
}

// ----------------------------------------------------------- statistics

#[test]
fn welford_matches_two_pass() {
    let mut rng = case_rng(4);
    for _ in 0..CASES {
        let n = rng.gen_range_i64(2, 200) as usize;
        let xs = random_vec(&mut rng, n, -1e6, 1e6);
        let mut w = Welford::new();
        w.extend(&xs);
        let nf = n as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nf - 1.0);
        assert!((w.mean().unwrap() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((w.variance().unwrap() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        assert_eq!(w.count(), n as u64);
    }
}

#[test]
fn welford_merge_is_concatenation() {
    let mut rng = case_rng(5);
    for _ in 0..CASES {
        let nx = rng.gen_range_i64(1, 100) as usize;
        let xs = random_vec(&mut rng, nx, -1e5, 1e5);
        let ny = rng.gen_range_i64(1, 100) as usize;
        let ys = random_vec(&mut rng, ny, -1e5, 1e5);
        let mut a = Welford::new();
        a.extend(&xs);
        let mut b = Welford::new();
        b.extend(&ys);
        a.merge(&b);
        let mut whole = Welford::new();
        whole.extend(&xs);
        whole.extend(&ys);
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        let (va, vw) = (a.variance().unwrap(), whole.variance().unwrap());
        assert!((va - vw).abs() <= 1e-6 * (1.0 + vw.abs()));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }
}

#[test]
fn quantiles_bounded_and_monotone() {
    let mut rng = case_rng(6);
    for _ in 0..CASES {
        let n = rng.gen_range_i64(1, 100) as usize;
        let xs = random_vec(&mut rng, n, -1e6, 1e6);
        let q1 = rng.next_f64();
        let q2 = rng.next_f64();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let a = quantile(&xs, q1).unwrap();
        let b = quantile(&xs, q2).unwrap();
        assert!(a >= lo && a <= hi);
        if q1 <= q2 {
            assert!(a <= b + 1e-9);
        } else {
            assert!(b <= a + 1e-9);
        }
    }
}

#[test]
fn pearson_properties() {
    let mut rng = case_rng(7);
    for _ in 0..CASES {
        let n = rng.gen_range_i64(3, 50) as usize;
        let xs = random_vec(&mut rng, n, -1e3, 1e3);
        let scale = rng.gen_range_f64(0.1, 10.0);
        let shift = rng.gen_range_f64(-100.0, 100.0);
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        if let Some(r) = pearson(&xs, &ys) {
            assert!(
                (r - 1.0).abs() < 1e-6,
                "exact linear relation ⇒ r = 1, got {r}"
            );
        }
        let zs: Vec<f64> = xs.iter().map(|x| scale * x + shift).collect();
        if let (Some(a), Some(b)) = (pearson(&xs, &zs), pearson(&zs, &xs)) {
            assert!((a - b).abs() < 1e-9, "symmetry");
            assert!(a.abs() <= 1.0 + 1e-9, "bounded");
        }
    }
}

#[test]
fn affine_fit_recovers_planted_line() {
    let mut rng = case_rng(8);
    for _ in 0..CASES {
        let n = rng.gen_range_i64(3, 50) as usize;
        let xs = random_vec(&mut rng, n, -1e3, 1e3);
        let scale = rng.gen_range_f64(-5.0, 5.0);
        let offset = rng.gen_range_f64(-100.0, 100.0);
        // need variance in x
        if !xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6) {
            continue;
        }
        let ys: Vec<f64> = xs.iter().map(|x| scale * x + offset).collect();
        let fit = fit_affine(&xs, &ys).unwrap();
        assert!(
            (fit.scale - scale).abs() < 1e-6 * (1.0 + scale.abs()),
            "{fit:?}"
        );
        assert!(
            (fit.offset - offset).abs() < 1e-4 * (1.0 + offset.abs()),
            "{fit:?}"
        );
        assert!(fit.r2 > 1.0 - 1e-9);
    }
}

// ------------------------------------------------------- mapping algebra

fn random_mapping(rng: &mut Xoshiro256StarStar) -> Mapping {
    match rng.gen_range_i64(0, 2) {
        0 => Mapping::Identity,
        1 => Mapping::Offset(rng.gen_range_f64(-1e3, 1e3)),
        _ => Mapping::Affine {
            scale: rng.gen_range_f64(-10.0, 10.0),
            offset: rng.gen_range_f64(-1e3, 1e3),
            residual_std: 0.0,
        },
    }
}

#[test]
fn mapping_composition_is_sequential_application() {
    let mut rng = case_rng(9);
    for _ in 0..CASES {
        let a = random_mapping(&mut rng);
        let b = random_mapping(&mut rng);
        let x = rng.gen_range_f64(-1e4, 1e4);
        let direct = b.apply_scalar(a.apply_scalar(x));
        let composed = a.clone().then(b.clone()).apply_scalar(x);
        assert!(
            (direct - composed).abs() <= 1e-9 * (1.0 + direct.abs()),
            "{a:?} then {b:?} at {x}"
        );
    }
}

#[test]
fn detect_then_apply_closes_the_loop() {
    let mut rng = case_rng(10);
    let detector = CorrelationDetector::default();
    for _ in 0..CASES {
        let n = rng.gen_range_i64(4, 64) as usize;
        let base = random_vec(&mut rng, n, -1e3, 1e3);
        let delta = rng.gen_range_f64(-1e3, 1e3);
        // need variation so the fingerprints aren't degenerate
        if !base.iter().any(|&x| (x - base[0]).abs() > 1e-3) {
            continue;
        }
        let source = Fingerprint::from_values(base.clone());
        let target = Fingerprint::from_values(base.iter().map(|v| v + delta).collect());
        let mapping = detector
            .detect(&source, &target)
            .expect("planted offset must be detected");
        let reproduced = mapping.apply_samples(source.values());
        for (r, t) in reproduced.iter().zip(target.values()) {
            assert!((r - t).abs() < 1e-6, "mapped {r} vs target {t}");
        }
    }
}

// ------------------------------------------------------- parameter points

fn random_pairs(rng: &mut Xoshiro256StarStar, max_len: usize) -> Vec<(String, i64)> {
    let len = rng.gen_range_i64(0, max_len as i64) as usize;
    (0..len)
        .map(|_| {
            let name = (b'a' + rng.gen_range_i64(0, 4) as u8) as char;
            (name.to_string(), rng.gen_range_i64(-100, 100))
        })
        .collect()
}

#[test]
fn param_point_insertion_order_irrelevant() {
    let mut rng = case_rng(11);
    for _ in 0..CASES {
        let pairs = random_pairs(&mut rng, 8);
        let forward = ParamPoint::from_pairs(pairs.clone());
        // later duplicates overwrite earlier ones, so dedup keeping last
        let mut last: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
        for (k, v) in &pairs {
            last.insert(k.clone(), *v);
        }
        let canonical = ParamPoint::from_pairs(last.clone());
        assert_eq!(forward, canonical);
        assert_eq!(forward.stable_hash(), canonical.stable_hash());
        for (k, v) in last {
            assert_eq!(forward.get(&k), Some(v));
        }
    }
}

#[test]
fn param_point_with_is_persistent() {
    let mut rng = case_rng(12);
    for _ in 0..CASES {
        let mut pairs = random_pairs(&mut rng, 6);
        if pairs.is_empty() {
            pairs.push(("a".to_owned(), 0));
        }
        let value = rng.gen_range_i64(-100, 100);
        let point = ParamPoint::from_pairs(pairs);
        let name = point.iter().next().unwrap().0.to_owned();
        let old = point.get(&name);
        let updated = point.with(name.clone(), value);
        assert_eq!(updated.get(&name), Some(value));
        assert_eq!(point.get(&name), old);
    }
}

// --------------------------------------------------------------- values

#[test]
fn value_total_cmp_antisymmetric() {
    let mut rng = case_rng(13);
    for _ in 0..CASES {
        let a = rng.gen_range_i64(-1000, 1000);
        let b = rng.gen_range_i64(-1000, 1000);
        let va = Value::Int(a);
        let vb = Value::Int(b);
        assert_eq!(va.total_cmp(&vb), vb.total_cmp(&va).reverse());
        assert_eq!(va.total_cmp(&vb) == std::cmp::Ordering::Equal, a == b);
    }
}

#[test]
fn numeric_arithmetic_matches_f64() {
    let mut rng = case_rng(14);
    for _ in 0..CASES {
        let a = rng.gen_range_f64(-1e6, 1e6);
        let b = rng.gen_range_f64(-1e6, 1e6);
        let va = Value::Float(a);
        let vb = Value::Float(b);
        assert_eq!(va.add(&vb).unwrap(), Value::Float(a + b));
        assert_eq!(va.mul(&vb).unwrap(), Value::Float(a * b));
        assert_eq!(va.sub(&vb).unwrap(), Value::Float(a - b));
    }
}

// ------------------------------------------------------------------ rng

#[test]
fn rng_range_bounds() {
    let mut seeder = case_rng(15);
    for _ in 0..CASES {
        let seed = seeder.next_u64();
        let lo = seeder.gen_range_i64(-1000, 1000);
        let hi = lo + seeder.gen_range_i64(0, 2000);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..50 {
            let v = rng.gen_range_i64(lo, hi);
            assert!(v >= lo && v <= hi);
        }
    }
}

#[test]
fn rng_unit_floats() {
    let mut seeder = case_rng(16);
    for _ in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seeder.next_u64());
        for _ in 0..100 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

// ------------------------------------------------------------------ csv

#[test]
fn csv_is_well_formed() {
    let mut rng = case_rng(17);
    for _ in 0..CASES {
        let rows = rng.gen_range_i64(1, 20) as usize;
        let schema = Schema::of(&[("s", DataType::Str)]);
        let mut b = TableBuilder::new(schema);
        for _ in 0..rows {
            let len = rng.gen_range_i64(0, 30) as usize;
            let cell: String = (0..len)
                .map(|_| match rng.gen_range_i64(0, 96) {
                    94 => '"',
                    95 => '\n',
                    c => (32 + c as u8) as char,
                })
                .collect();
            b.push_row(vec![Value::Str(cell)]).unwrap();
        }
        let table = b.finish();
        let text = csv::to_csv(&table).unwrap();
        let quote_count = text.matches('"').count();
        assert_eq!(quote_count % 2, 0, "quotes must balance in {text:?}");
        assert!(text.ends_with('\n'));
    }
}
