//! Scalar-vs-vector differential suite: the vectorized execution tier is
//! *defined* by bit-identity with the scalar executor, and this file is the
//! contract's enforcement.
//!
//! Coverage:
//!
//! * every bundled scenario (Figure 2 plus the four example scenarios),
//!   asserting bit-identical fingerprints *and* estimation samples between
//!   a `vectorized: true` engine and a `vectorized: false` engine walking
//!   the same evaluation sequence;
//! * a seeded property loop at the SQL layer over random world-block
//!   sizes — 1, 2, the fingerprint length `L`, and non-multiples of `L` —
//!   asserting per-world equality between one block walk and per-world
//!   scalar walks;
//! * thread-count independence of the vectorized tier (samples and work
//!   counters equal under `threads: 1` and `threads: 4`).

use std::collections::HashMap;

use fuzzy_prophet::prelude::*;
use prophet_data::Value;
use prophet_models::scenarios::{
    figure2_coarse_sql, INVENTORY_POLICY, PRICING_WHATIF, SUPPORT_STAFFING,
};
use prophet_models::{demo_registry, full_registry};
use prophet_sql::executor::{evaluate_select_with, WorldRng};
use prophet_sql::vector::evaluate_select_block;
use prophet_vg::rng::{Rng64, Xoshiro256StarStar};
use prophet_vg::SeedManager;

/// The five bundled scenarios with a registry factory and a few probe
/// points spread across each parameter space.
fn bundled_scenarios() -> Vec<(&'static str, Scenario, VgRegistryKind, Vec<ParamPoint>)> {
    vec![
        (
            "figure2",
            Scenario::figure2().unwrap(),
            VgRegistryKind::Demo,
            vec![
                ParamPoint::from_pairs([
                    ("current", 5i64),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 5i64),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 36),
                ]),
                ParamPoint::from_pairs([
                    ("current", 50i64),
                    ("purchase1", 0),
                    ("purchase2", 4),
                    ("feature", 44),
                ]),
            ],
        ),
        (
            "figure2-coarse",
            Scenario::parse(&figure2_coarse_sql(0.05)).unwrap(),
            VgRegistryKind::Demo,
            vec![
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 8),
                    ("purchase2", 24),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 8),
                    ("purchase2", 24),
                    ("feature", 36),
                ]),
            ],
        ),
        (
            "inventory",
            Scenario::parse(INVENTORY_POLICY).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([
                    ("week", 12i64),
                    ("reorder_point", 200),
                    ("reorder_qty", 300),
                ]),
                ParamPoint::from_pairs([
                    ("week", 12i64),
                    ("reorder_point", 240),
                    ("reorder_qty", 300),
                ]),
            ],
        ),
        (
            "pricing",
            Scenario::parse(PRICING_WHATIF).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([("week", 24i64), ("price", 20)]),
                ParamPoint::from_pairs([("week", 24i64), ("price", 22)]),
            ],
        ),
        (
            "staffing",
            Scenario::parse(SUPPORT_STAFFING).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([("week", 24i64), ("agents", 10)]),
                ParamPoint::from_pairs([("week", 24i64), ("agents", 11)]),
            ],
        ),
    ]
}

enum VgRegistryKind {
    Demo,
    Full,
}

impl VgRegistryKind {
    fn build(&self) -> prophet_vg::VgRegistry {
        match self {
            VgRegistryKind::Demo => demo_registry(),
            VgRegistryKind::Full => full_registry(),
        }
    }
}

fn engine_pair(scenario: &Scenario, kind: &VgRegistryKind) -> (Engine, Engine) {
    let config = EngineConfig {
        worlds_per_point: 48,
        ..EngineConfig::default()
    };
    let vector = Engine::new(scenario, kind.build(), config).unwrap();
    let scalar = Engine::new(
        scenario,
        kind.build(),
        EngineConfig {
            vectorized: false,
            ..config
        },
    )
    .unwrap();
    (vector, scalar)
}

/// Every bundled scenario: same outcomes, bit-identical samples, and the
/// same store contents (the stored fingerprints drove identical matching)
/// whether evaluation is scalar or vectorized.
#[test]
fn all_bundled_scenarios_are_bit_identical_across_tiers() {
    for (name, scenario, kind, points) in bundled_scenarios() {
        let (vector, scalar) = engine_pair(&scenario, &kind);
        let columns = vector.output_columns();
        for point in &points {
            let (sv, ov) = vector.evaluate(point).unwrap();
            let (ss, os) = scalar.evaluate(point).unwrap();
            assert_eq!(ov, os, "[{name}] outcome at {point}");
            for col in &columns {
                assert_eq!(
                    sv.samples(col),
                    ss.samples(col),
                    "[{name}] column `{col}` at {point}"
                );
            }
        }
        let mv = vector.metrics();
        let ms = scalar.metrics();
        assert_eq!(
            mv.probe_evaluations, ms.probe_evaluations,
            "[{name}] logical probe accounting must not depend on the tier"
        );
        assert_eq!(mv.points_simulated, ms.points_simulated, "[{name}]");
        assert_eq!(mv.worlds_simulated, ms.worlds_simulated, "[{name}]");
        assert!(
            mv.vector_walks > 0 && ms.vector_walks == 0,
            "[{name}] only the vector tier block-walks"
        );
    }
}

/// Fingerprints are probed under the canonical seed block: force both
/// tiers through a *miss* (distinct stores) and compare what each
/// published to its basis store for matching.
#[test]
fn probed_fingerprints_are_bit_identical() {
    for (name, scenario, kind, points) in bundled_scenarios() {
        let (vector, scalar) = engine_pair(&scenario, &kind);
        let point = &points[0];
        vector.evaluate(point).unwrap();
        scalar.evaluate(point).unwrap();
        // A second engine pair maps *from* the published entries: if the
        // stored fingerprints differed at all, matching (which compares
        // probe columns entry-by-entry) would disagree somewhere across
        // the remaining points.
        for p in &points[1..] {
            let (vs, vo) = vector.evaluate(p).unwrap();
            let (ss, so) = scalar.evaluate(p).unwrap();
            assert_eq!(vo, so, "[{name}] mapping decision at {p}");
            for col in vector.output_columns() {
                assert_eq!(vs.samples(&col), ss.samples(&col), "[{name}] {col} at {p}");
            }
        }
    }
}

/// SQL-layer property loop: for random parameter points and random block
/// sizes (1, 2, the fingerprint length L, and non-multiples of L), one
/// block walk equals per-world scalar walks bit for bit.
#[test]
fn random_world_blocks_match_scalar_walks() {
    let scenario = Scenario::figure2().unwrap();
    let select = &scenario.script().select;
    let registry = demo_registry();
    let fp_len = FingerprintLen::default().0;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xB10C_5EED);

    // Deterministic seeded loop (the repo's proptest substitute).
    for round in 0..24 {
        let block_len = match round % 6 {
            0 => 1,
            1 => 2,
            2 => fp_len,                             // L
            3 => fp_len + 3,                         // non-multiple of L
            4 => 2 * fp_len - 1,                     // spans >1 "L block"
            _ => 1 + (rng.next_u64() % 97) as usize, // arbitrary
        };
        let worlds: Vec<u64> = (0..block_len).map(|_| rng.next_u64() >> 1).collect();
        let params: HashMap<String, Value> = HashMap::from([
            ("current".into(), Value::Int((rng.next_u64() % 53) as i64)),
            ("purchase1".into(), Value::Int((rng.next_u64() % 53) as i64)),
            ("purchase2".into(), Value::Int((rng.next_u64() % 53) as i64)),
            ("feature".into(), Value::Int(12)),
        ]);
        let seeds = SeedManager::new(rng.next_u64());

        let block = evaluate_select_block(select, &registry, &params, seeds, &worlds).unwrap();
        for (slot, &world) in worlds.iter().enumerate() {
            let row =
                evaluate_select_with(select, &registry, &params, WorldRng::per_call(seeds, world))
                    .unwrap();
            for ((alias, column), (scalar_alias, scalar_value)) in block.iter().zip(&row) {
                assert_eq!(alias, scalar_alias);
                assert_eq!(
                    &column[slot], scalar_value,
                    "round {round}, block_len {block_len}, world {world}, column {alias}"
                );
            }
        }
    }
}

/// Wrapper so the test reads "fingerprint length L" without reaching into
/// engine internals.
struct FingerprintLen(usize);

impl Default for FingerprintLen {
    fn default() -> Self {
        FingerprintLen(EngineConfig::default().fingerprint.length)
    }
}

/// The vectorized tier must stay thread-count independent: same samples,
/// same work counters under 1 and 4 threads.
#[test]
fn vectorized_tier_is_thread_count_independent() {
    let scenario = Scenario::figure2().unwrap();
    let make = |threads: usize| {
        Engine::new(
            &scenario,
            demo_registry(),
            EngineConfig {
                worlds_per_point: 64,
                threads,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    };
    let single = make(1);
    let quad = make(4);
    let points: Vec<ParamPoint> = (0..6)
        .map(|i| {
            ParamPoint::from_pairs([
                ("current", 4 * i as i64),
                ("purchase1", 16),
                ("purchase2", 36),
                ("feature", 12),
            ])
        })
        .collect();
    let a = single.evaluate_batch(&points).unwrap();
    let b = quad.evaluate_batch(&points).unwrap();
    for (i, ((sa, oa), (sb, ob))) in a.iter().zip(&b).enumerate() {
        assert_eq!(oa, ob, "point #{i}");
        for col in single.output_columns() {
            assert_eq!(sa.samples(&col), sb.samples(&col), "point #{i} {col}");
        }
    }
    assert_eq!(
        single.metrics().worlds_simulated,
        quad.metrics().worlds_simulated
    );
    assert_eq!(
        single.metrics().probe_evaluations,
        quad.metrics().probe_evaluations
    );
}

/// The vector tier's logical VG accounting matches the scalar tier's: a
/// batched call of `n` worlds counts `n` invocations in the catalog.
#[test]
fn vg_invocation_accounting_is_tier_independent() {
    let scenario = Scenario::figure2().unwrap();
    let point = ParamPoint::from_pairs([
        ("current", 10i64),
        ("purchase1", 16),
        ("purchase2", 36),
        ("feature", 12),
    ]);
    let run = |vectorized: bool| {
        let registry = demo_registry();
        let engine = Engine::new(
            &scenario,
            registry,
            EngineConfig {
                worlds_per_point: 32,
                vectorized,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        engine.evaluate(&point).unwrap();
        let reg = engine.registry();
        (
            reg.stats("DemandModel").unwrap(),
            reg.stats("CapacityModel").unwrap(),
        )
    };
    let (vd, vc) = run(true);
    let (sd, sc) = run(false);
    assert_eq!(vd.invocations, sd.invocations, "DemandModel logical count");
    assert_eq!(
        vc.invocations, sc.invocations,
        "CapacityModel logical count"
    );
    assert!(vd.batched_calls > 0, "vector tier used the batch path");
    assert_eq!(sd.batched_calls, 0, "scalar tier never batches");
}
