//! Tier differential suite: the block execution tiers (boxed vector and
//! typed columnar) are *defined* by bit-identity with the scalar executor,
//! and this file is the contract's enforcement.
//!
//! Coverage:
//!
//! * every bundled scenario (Figure 2 plus the four example scenarios),
//!   asserting bit-identical fingerprints *and* estimation samples across
//!   [`ExecTier::Columnar`], [`ExecTier::Boxed`] and [`ExecTier::Scalar`]
//!   engines walking the same evaluation sequence — and that the columnar
//!   tier never falls back to boxed values on any of them;
//! * a seeded property loop at the SQL layer over random world-block
//!   sizes — 1, 2, the fingerprint length `L`, and non-multiples of `L` —
//!   asserting per-world equality between one block walk (both block
//!   tiers) and per-world scalar walks;
//! * a second seeded property loop over *random expressions* — NULL
//!   literals, conditional VG calls inside CASE arms, three-valued
//!   AND/OR/NOT, CASE masks with and without ELSE, block sizes that are
//!   not multiples of the SIMD lane width — asserting bit-identical
//!   outputs and VG invocation accounting across all three tiers;
//! * thread-count independence of the block tiers (samples and work
//!   counters equal under `threads: 1` and `threads: 8`, both equal to a
//!   single-threaded scalar engine).

use std::collections::HashMap;

use fuzzy_prophet::prelude::*;
use prophet_data::Value;
use prophet_models::scenarios::{
    figure2_coarse_sql, INVENTORY_POLICY, PRICING_WHATIF, SUPPORT_STAFFING,
};
use prophet_models::{demo_registry, full_registry};
use prophet_sql::columnar::evaluate_select_columns;
use prophet_sql::executor::{evaluate_select_with, WorldRng};
use prophet_sql::parser::parse_script;
use prophet_sql::vector::evaluate_select_block;
use prophet_vg::rng::{Rng64, Xoshiro256StarStar};
use prophet_vg::SeedManager;

/// The five bundled scenarios with a registry factory and a few probe
/// points spread across each parameter space.
fn bundled_scenarios() -> Vec<(&'static str, Scenario, VgRegistryKind, Vec<ParamPoint>)> {
    vec![
        (
            "figure2",
            Scenario::figure2().unwrap(),
            VgRegistryKind::Demo,
            vec![
                ParamPoint::from_pairs([
                    ("current", 5i64),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 5i64),
                    ("purchase1", 16),
                    ("purchase2", 36),
                    ("feature", 36),
                ]),
                ParamPoint::from_pairs([
                    ("current", 50i64),
                    ("purchase1", 0),
                    ("purchase2", 4),
                    ("feature", 44),
                ]),
            ],
        ),
        (
            "figure2-coarse",
            Scenario::parse(&figure2_coarse_sql(0.05)).unwrap(),
            VgRegistryKind::Demo,
            vec![
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 8),
                    ("purchase2", 24),
                    ("feature", 12),
                ]),
                ParamPoint::from_pairs([
                    ("current", 10i64),
                    ("purchase1", 8),
                    ("purchase2", 24),
                    ("feature", 36),
                ]),
            ],
        ),
        (
            "inventory",
            Scenario::parse(INVENTORY_POLICY).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([
                    ("week", 12i64),
                    ("reorder_point", 200),
                    ("reorder_qty", 300),
                ]),
                ParamPoint::from_pairs([
                    ("week", 12i64),
                    ("reorder_point", 240),
                    ("reorder_qty", 300),
                ]),
            ],
        ),
        (
            "pricing",
            Scenario::parse(PRICING_WHATIF).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([("week", 24i64), ("price", 20)]),
                ParamPoint::from_pairs([("week", 24i64), ("price", 22)]),
            ],
        ),
        (
            "staffing",
            Scenario::parse(SUPPORT_STAFFING).unwrap(),
            VgRegistryKind::Full,
            vec![
                ParamPoint::from_pairs([("week", 24i64), ("agents", 10)]),
                ParamPoint::from_pairs([("week", 24i64), ("agents", 11)]),
            ],
        ),
    ]
}

enum VgRegistryKind {
    Demo,
    Full,
}

impl VgRegistryKind {
    fn build(&self) -> prophet_vg::VgRegistry {
        match self {
            VgRegistryKind::Demo => demo_registry(),
            VgRegistryKind::Full => full_registry(),
        }
    }
}

/// One engine per execution tier, identical otherwise.
fn engine_trio(scenario: &Scenario, kind: &VgRegistryKind) -> [Engine; 3] {
    let config = EngineConfig {
        worlds_per_point: 48,
        ..EngineConfig::default()
    };
    TIERS.map(|tier| Engine::new(scenario, kind.build(), EngineConfig { tier, ..config }).unwrap())
}

/// Tier order used throughout: columnar first (the default), then boxed,
/// then the scalar reference.
const TIERS: [ExecTier; 3] = [ExecTier::Columnar, ExecTier::Boxed, ExecTier::Scalar];

/// Every bundled scenario: same outcomes, bit-identical samples, and the
/// same store contents (the stored fingerprints drove identical matching)
/// across the columnar, boxed and scalar tiers — and the columnar tier
/// stays fully typed (`column_fallbacks == 0`) on all five.
#[test]
fn all_bundled_scenarios_are_bit_identical_across_tiers() {
    for (name, scenario, kind, points) in bundled_scenarios() {
        let [columnar, boxed, scalar] = engine_trio(&scenario, &kind);
        let columns = columnar.output_columns();
        for point in &points {
            let (sc, oc) = columnar.evaluate(point).unwrap();
            let (sv, ov) = boxed.evaluate(point).unwrap();
            let (ss, os) = scalar.evaluate(point).unwrap();
            assert_eq!(oc, os, "[{name}] columnar outcome at {point}");
            assert_eq!(ov, os, "[{name}] boxed outcome at {point}");
            for col in &columns {
                assert_eq!(
                    sc.samples(col),
                    ss.samples(col),
                    "[{name}] columnar column `{col}` at {point}"
                );
                assert_eq!(
                    sv.samples(col),
                    ss.samples(col),
                    "[{name}] boxed column `{col}` at {point}"
                );
            }
        }
        let mc = columnar.metrics();
        let mv = boxed.metrics();
        let ms = scalar.metrics();
        assert_eq!(
            mc.probe_evaluations, ms.probe_evaluations,
            "[{name}] logical probe accounting must not depend on the tier"
        );
        assert_eq!(mv.probe_evaluations, ms.probe_evaluations, "[{name}]");
        assert_eq!(mc.points_simulated, ms.points_simulated, "[{name}]");
        assert_eq!(mc.worlds_simulated, ms.worlds_simulated, "[{name}]");
        assert!(
            mc.vector_walks > 0 && mv.vector_walks > 0 && ms.vector_walks == 0,
            "[{name}] only the block tiers block-walk"
        );
        assert!(
            mc.columnar_kernels > 0,
            "[{name}] the columnar engine ran typed kernels"
        );
        assert_eq!(
            mc.column_fallbacks, 0,
            "[{name}] every bundled scenario is fully typed — no boxed fallbacks"
        );
        assert_eq!(mv.columnar_kernels, 0, "[{name}]");
        assert_eq!(ms.columnar_kernels, 0, "[{name}]");
    }
}

/// Fingerprints are probed under the canonical seed block: force all
/// tiers through a *miss* (distinct stores) and compare what each
/// published to its basis store for matching.
#[test]
fn probed_fingerprints_are_bit_identical() {
    for (name, scenario, kind, points) in bundled_scenarios() {
        let [columnar, boxed, scalar] = engine_trio(&scenario, &kind);
        let point = &points[0];
        columnar.evaluate(point).unwrap();
        boxed.evaluate(point).unwrap();
        scalar.evaluate(point).unwrap();
        // The engines now map *from* the published entries: if the
        // stored fingerprints differed at all, matching (which compares
        // probe columns entry-by-entry) would disagree somewhere across
        // the remaining points.
        for p in &points[1..] {
            let (cs, co) = columnar.evaluate(p).unwrap();
            let (vs, vo) = boxed.evaluate(p).unwrap();
            let (ss, so) = scalar.evaluate(p).unwrap();
            assert_eq!(co, so, "[{name}] columnar mapping decision at {p}");
            assert_eq!(vo, so, "[{name}] boxed mapping decision at {p}");
            for col in columnar.output_columns() {
                assert_eq!(cs.samples(&col), ss.samples(&col), "[{name}] {col} at {p}");
                assert_eq!(vs.samples(&col), ss.samples(&col), "[{name}] {col} at {p}");
            }
        }
    }
}

/// SQL-layer property loop: for random parameter points and random block
/// sizes (1, 2, the fingerprint length L, and non-multiples of L), one
/// block walk equals per-world scalar walks bit for bit.
#[test]
fn random_world_blocks_match_scalar_walks() {
    let scenario = Scenario::figure2().unwrap();
    let select = &scenario.script().select;
    let registry = demo_registry();
    let fp_len = FingerprintLen::default().0;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xB10C_5EED);

    // Deterministic seeded loop (the repo's proptest substitute).
    for round in 0..24 {
        let block_len = match round % 6 {
            0 => 1,
            1 => 2,
            2 => fp_len,                             // L
            3 => fp_len + 3,                         // non-multiple of L
            4 => 2 * fp_len - 1,                     // spans >1 "L block"
            _ => 1 + (rng.next_u64() % 97) as usize, // arbitrary
        };
        let worlds: Vec<u64> = (0..block_len).map(|_| rng.next_u64() >> 1).collect();
        let params: HashMap<String, Value> = HashMap::from([
            ("current".into(), Value::Int((rng.next_u64() % 53) as i64)),
            ("purchase1".into(), Value::Int((rng.next_u64() % 53) as i64)),
            ("purchase2".into(), Value::Int((rng.next_u64() % 53) as i64)),
            ("feature".into(), Value::Int(12)),
        ]);
        let seeds = SeedManager::new(rng.next_u64());

        let block = evaluate_select_block(select, &registry, &params, seeds, &worlds).unwrap();
        let (typed, _) =
            evaluate_select_columns(select, &registry, &params, seeds, &worlds).unwrap();
        for (slot, &world) in worlds.iter().enumerate() {
            let row =
                evaluate_select_with(select, &registry, &params, WorldRng::per_call(seeds, world))
                    .unwrap();
            for (((alias, column), (typed_alias, typed_column)), (scalar_alias, scalar_value)) in
                block.iter().zip(&typed).zip(&row)
            {
                assert_eq!(alias, scalar_alias);
                assert_eq!(typed_alias, scalar_alias);
                assert_eq!(
                    &column[slot], scalar_value,
                    "round {round}, block_len {block_len}, world {world}, column {alias}"
                );
                assert!(
                    bit_eq(&typed_column.value_at(slot), scalar_value),
                    "round {round}, block_len {block_len}, world {world}, typed column {alias}"
                );
            }
        }
    }
}

/// Bit-level `Value` equality: floats compare by representation so a NaN
/// lane (possible under generated expressions) still counts as equal to
/// itself across tiers.
fn bit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Wrapper so the test reads "fingerprint length L" without reaching into
/// engine internals.
struct FingerprintLen(usize);

impl Default for FingerprintLen {
    fn default() -> Self {
        FingerprintLen(EngineConfig::default().fingerprint.length)
    }
}

/// The block tiers must stay thread-count independent: same samples, same
/// work counters under 1 and 8 threads, all bit-identical to a
/// single-threaded scalar engine (the acceptance bar for the typed tier).
#[test]
fn block_tiers_are_thread_count_independent() {
    let scenario = Scenario::figure2().unwrap();
    let make = |tier: ExecTier, threads: usize| {
        Engine::new(
            &scenario,
            demo_registry(),
            EngineConfig {
                worlds_per_point: 64,
                threads,
                tier,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    };
    let points: Vec<ParamPoint> = (0..6)
        .map(|i| {
            ParamPoint::from_pairs([
                ("current", 4 * i as i64),
                ("purchase1", 16),
                ("purchase2", 36),
                ("feature", 12),
            ])
        })
        .collect();
    let reference = make(ExecTier::Scalar, 1);
    let expected = reference.evaluate_batch(&points).unwrap();
    for tier in [ExecTier::Columnar, ExecTier::Boxed] {
        for threads in [1usize, 8] {
            let engine = make(tier, threads);
            let got = engine.evaluate_batch(&points).unwrap();
            for (i, ((sa, oa), (sb, ob))) in expected.iter().zip(&got).enumerate() {
                assert_eq!(oa, ob, "{tier:?} x{threads} point #{i}");
                for col in reference.output_columns() {
                    assert_eq!(
                        sa.samples(&col),
                        sb.samples(&col),
                        "{tier:?} x{threads} point #{i} {col}"
                    );
                }
            }
            assert_eq!(
                engine.metrics().worlds_simulated,
                reference.metrics().worlds_simulated,
                "{tier:?} x{threads}"
            );
            assert_eq!(
                engine.metrics().probe_evaluations,
                reference.metrics().probe_evaluations,
                "{tier:?} x{threads}"
            );
        }
    }
}

/// The block tiers' logical VG accounting matches the scalar tier's: a
/// batched call of `n` worlds counts `n` invocations in the catalog.
#[test]
fn vg_invocation_accounting_is_tier_independent() {
    let scenario = Scenario::figure2().unwrap();
    let point = ParamPoint::from_pairs([
        ("current", 10i64),
        ("purchase1", 16),
        ("purchase2", 36),
        ("feature", 12),
    ]);
    let run = |tier: ExecTier| {
        let registry = demo_registry();
        let engine = Engine::new(
            &scenario,
            registry,
            EngineConfig {
                worlds_per_point: 32,
                tier,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        engine.evaluate(&point).unwrap();
        let reg = engine.registry();
        (
            reg.stats("DemandModel").unwrap(),
            reg.stats("CapacityModel").unwrap(),
        )
    };
    let (cd, cc) = run(ExecTier::Columnar);
    let (vd, vc) = run(ExecTier::Boxed);
    let (sd, sc) = run(ExecTier::Scalar);
    assert_eq!(cd.invocations, sd.invocations, "DemandModel logical count");
    assert_eq!(vd.invocations, sd.invocations, "DemandModel logical count");
    assert_eq!(
        cc.invocations, sc.invocations,
        "CapacityModel logical count"
    );
    assert_eq!(
        vc.invocations, sc.invocations,
        "CapacityModel logical count"
    );
    assert!(cd.batched_calls > 0, "columnar tier used the batch path");
    assert!(vd.batched_calls > 0, "boxed tier used the batch path");
    assert_eq!(sd.batched_calls, 0, "scalar tier never batches");
}

/// Deterministic random-expression generator for the cross-tier property
/// loop. Produces numeric select items mixing NULL literals, parameters,
/// integer/float literals, arithmetic (including `/` and `%`, whose
/// zero-divisor lanes go NULL), `CASE` masks with and without `ELSE`,
/// three-valued AND/OR/NOT conditions, and conditionally-reached VG calls
/// (`Normal`/`Poisson`/`Triangular` — always with valid, non-NULL
/// arguments, since distribution parameters reject NULL by contract).
struct ExprGen {
    rng: Xoshiro256StarStar,
    vg_budget: u32,
    vg_emitted: u32,
}

impl ExprGen {
    fn roll(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n
    }

    fn vg_call(&mut self) -> String {
        self.vg_budget -= 1;
        self.vg_emitted += 1;
        match self.roll(3) {
            0 => "Normal(@a, 2.5)".into(),
            1 => "Poisson(6.5)".into(),
            _ => "Triangular(0.0, 2.0, 10.0)".into(),
        }
    }

    fn numeric(&mut self, depth: u32) -> String {
        if depth == 0 || self.roll(100) < 25 {
            return match self.roll(6) {
                0 => format!("{}", self.roll(2001) as i64 - 1000),
                1 => format!("{}.5", self.roll(40)),
                2 => "@a".into(),
                3 => "@b".into(),
                4 => "NULL".into(),
                _ => format!("{}", self.roll(7)),
            };
        }
        if self.vg_budget > 0 && self.roll(100) < 25 {
            return self.vg_call();
        }
        if self.roll(100) < 35 {
            let cond = self.boolean(depth - 1);
            let then = self.numeric(depth - 1);
            return if self.roll(2) == 0 {
                let els = self.numeric(depth - 1);
                format!("CASE WHEN {cond} THEN {then} ELSE {els} END")
            } else {
                // No ELSE: unmatched lanes are NULL.
                format!("CASE WHEN {cond} THEN {then} END")
            };
        }
        let op = ["+", "-", "*", "/", "%"][self.roll(5) as usize];
        let lhs = self.numeric(depth - 1);
        let rhs = self.numeric(depth - 1);
        format!("({lhs} {op} {rhs})")
    }

    fn boolean(&mut self, depth: u32) -> String {
        if depth == 0 || self.roll(100) < 45 {
            let op = ["<", "<=", ">", ">=", "=", "<>"][self.roll(6) as usize];
            let lhs = self.numeric(0);
            let rhs = self.numeric(0);
            return format!("{lhs} {op} {rhs}");
        }
        match self.roll(3) {
            0 => format!(
                "({} AND {})",
                self.boolean(depth - 1),
                self.boolean(depth - 1)
            ),
            1 => format!(
                "({} OR {})",
                self.boolean(depth - 1),
                self.boolean(depth - 1)
            ),
            _ => format!("NOT ({})", self.boolean(depth - 1)),
        }
    }
}

/// Seeded property loop over random expressions: typed columnar, boxed
/// vector and per-world scalar evaluation must agree bit for bit — values
/// (NaN lanes included), NULL placement, and per-function VG invocation
/// accounting — across block sizes that are deliberately not multiples of
/// any SIMD lane width.
#[test]
fn random_expressions_are_bit_identical_across_tiers() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC01_FACE);
    let mut total_vg_calls = 0u32;
    for round in 0..40u32 {
        let mut gen = ExprGen {
            rng: Xoshiro256StarStar::seed_from_u64(rng.next_u64()),
            vg_budget: 4,
            vg_emitted: 0,
        };
        let n_cols = 1 + gen.roll(3);
        let items: Vec<String> = (0..n_cols)
            .map(|i| format!("{} AS c{i}", gen.numeric(3)))
            .collect();
        let src = format!(
            "DECLARE PARAMETER @a AS SET (0);\nDECLARE PARAMETER @b AS SET (0);\n\
             SELECT {} INTO out;",
            items.join(", ")
        );
        let script = parse_script(&src).unwrap();
        total_vg_calls += gen.vg_emitted;

        let block_len = [1usize, 2, 7, 9, 16, 31, 33, 100][(round % 8) as usize];
        let worlds: Vec<u64> = (0..block_len).map(|_| rng.next_u64() >> 1).collect();
        let params: HashMap<String, Value> = HashMap::from([
            ("a".into(), Value::Int((rng.next_u64() % 91) as i64 - 45)),
            ("b".into(), Value::Int((rng.next_u64() % 13) as i64)),
        ]);
        let seeds = SeedManager::new(rng.next_u64());

        // One fresh registry per tier so invocation stats stay separable.
        let (reg_c, reg_b, reg_s) = (full_registry(), full_registry(), full_registry());
        let (typed, _) =
            evaluate_select_columns(&script.select, &reg_c, &params, seeds, &worlds).unwrap();
        let boxed = evaluate_select_block(&script.select, &reg_b, &params, seeds, &worlds).unwrap();
        for (slot, &world) in worlds.iter().enumerate() {
            let row = evaluate_select_with(
                &script.select,
                &reg_s,
                &params,
                WorldRng::per_call(seeds, world),
            )
            .unwrap();
            for (((alias, column), (_, boxed_column)), (_, scalar_value)) in
                typed.iter().zip(&boxed).zip(&row)
            {
                let typed_value = column.value_at(slot);
                assert!(
                    bit_eq(&typed_value, scalar_value),
                    "round {round} `{src}` world {world} column {alias}: \
                     typed {typed_value:?} != scalar {scalar_value:?}"
                );
                assert!(
                    bit_eq(&boxed_column[slot], scalar_value),
                    "round {round} `{src}` world {world} column {alias}: \
                     boxed {:?} != scalar {scalar_value:?}",
                    boxed_column[slot]
                );
            }
        }
        for dist in ["Normal", "Poisson", "Triangular"] {
            let (c, b, s) = (
                reg_c.stats(dist).unwrap(),
                reg_b.stats(dist).unwrap(),
                reg_s.stats(dist).unwrap(),
            );
            assert_eq!(
                c.invocations, s.invocations,
                "round {round} `{src}`: columnar {dist} logical count"
            );
            assert_eq!(
                b.invocations, s.invocations,
                "round {round} `{src}`: boxed {dist} logical count"
            );
            assert_eq!(s.batched_calls, 0, "scalar walks never batch");
        }
    }
    assert!(
        total_vg_calls > 20,
        "the generator must actually exercise VG calls (got {total_vg_calls})"
    );
}
