//! Integration tests for the `Prophet` service facade: the builder
//! round-trip, cross-session basis sharing, the typed error hierarchy, and
//! the pluggable exploration strategy.

use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;
use prophet_sql::ast::ParameterDecl;

fn figure2_service(worlds: usize) -> Prophet {
    Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: worlds,
            ..EngineConfig::default()
        })
        .build()
        .unwrap()
}

#[test]
fn builder_round_trip_with_cross_session_reuse() {
    // The acceptance path: register Figure 2, open two online sessions, and
    // assert the second session's initial render reuses basis entries the
    // first produced.
    let prophet = figure2_service(24);

    let mut first = prophet.online("figure2").unwrap();
    let cold = first.refresh().unwrap();
    assert!(
        cold.weeks_simulated > 0,
        "cold start must simulate: {cold:?}"
    );
    assert_eq!(cold.weeks_cached, 0);
    let entries = prophet.basis_len("figure2").unwrap();
    assert!(entries > 0, "first render must populate the shared store");

    let mut second = prophet.online("figure2").unwrap();
    let warm = second.refresh().unwrap();
    assert!(
        warm.weeks_mapped + warm.weeks_cached > 0,
        "second session's first refresh must reuse shared basis entries: {warm:?}"
    );
    assert_eq!(
        warm.weeks_simulated, 0,
        "same sliders ⇒ nothing left to simulate: {warm:?}"
    );

    // The reuse is through one store, not coincidence.
    assert!(first
        .engine()
        .basis_store()
        .shares_storage_with(second.engine().basis_store()));
}

#[test]
fn cross_session_reuse_survives_different_sliders() {
    let prophet = figure2_service(16);
    let mut first = prophet.online("figure2").unwrap();
    first.set_param("purchase1", 16).unwrap();
    first.set_param("purchase2", 36).unwrap();

    // The second session starts at the domain minima — a parameter point
    // the first session never rendered — yet still re-maps/caches most of
    // its first graph from the first session's simulations.
    let mut second = prophet.online("figure2").unwrap();
    let warm = second.refresh().unwrap();
    assert!(
        warm.weeks_mapped + warm.weeks_cached > 0,
        "fingerprint re-mapping must cross session boundaries: {warm:?}"
    );
}

#[test]
fn online_work_warms_the_offline_sweep() {
    let prophet = Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .worlds_per_point(8)
        .build()
        .unwrap();
    let mut session = prophet.online("figure2").unwrap();
    session.refresh().unwrap();
    let warmed = prophet.basis_len("figure2").unwrap();
    assert!(warmed > 0);
    // An engine handed out later sees those entries as exact cache hits.
    let engine = prophet.engine("figure2").unwrap();
    let point = ParamPoint::from_pairs([
        ("current", 0i64),
        ("purchase1", 0),
        ("purchase2", 0),
        ("feature", 12),
    ]);
    let (_, outcome) = engine.evaluate(&point).unwrap();
    assert_eq!(
        outcome,
        EvalOutcome::Cached,
        "week 0 at minima was rendered by the session"
    );
}

#[test]
fn unknown_param_regression_lists_valid_names() {
    // Satellite regression: `set_param` on an unknown parameter must return
    // the structured UnknownParam variant naming the valid sliders — not a
    // generic eval error.
    let prophet = figure2_service(8);
    let mut session = prophet.online("figure2").unwrap();
    match session.set_param("purchase3", 16) {
        Err(ProphetError::UnknownParam { name, available }) => {
            assert_eq!(name, "purchase3");
            assert_eq!(available, ["feature", "purchase1", "purchase2"]);
        }
        other => panic!("expected ProphetError::UnknownParam, got {other:?}"),
    }
    // The error is also actionable as text.
    let msg = session.set_param("purchase3", 16).unwrap_err().to_string();
    assert!(
        msg.contains("purchase1") && msg.contains("purchase2") && msg.contains("feature"),
        "message must list candidates: {msg}"
    );
}

#[test]
fn typed_errors_cover_the_facade_surface() {
    let prophet = figure2_service(8);
    assert!(matches!(
        prophet.online("figure3"),
        Err(ProphetError::UnknownScenario { ref name, ref available })
            if name == "figure3" && available == &["figure2".to_owned()]
    ));
    let mut session = prophet.online("figure2").unwrap();
    assert!(matches!(
        session.set_param("current", 3),
        Err(ProphetError::AxisParam { ref name }) if name == "current"
    ));
    assert!(matches!(
        session.set_param("purchase1", 3),
        Err(ProphetError::OutOfDomain { ref name, value: 3 }) if name == "purchase1"
    ));
    assert!(matches!(
        session.progressive_expect("nope", 0, 0.1, 10),
        Err(ProphetError::UnknownColumn { .. })
    ));
    // Parse failures arrive as the Sql variant with position info intact.
    match Prophet::builder().scenario_sql("bad", "SELECT oops") {
        Err(ProphetError::Sql(e)) => assert!(e.to_string().contains("line")),
        other => panic!("expected ProphetError::Sql, got {other:?}"),
    }
}

#[test]
fn exploration_strategy_plugs_into_the_builder() {
    // A grid-walking strategy instead of the default priority queue:
    // prefetch_tick then walks the whole parameter grid row-major.
    let prophet = Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .worlds_per_point(8)
        .exploration(|decls: &[ParameterDecl]| {
            Box::new(GridGuide::new(decls)) as Box<dyn Guide + Send>
        })
        .build()
        .unwrap();
    let mut session = prophet.online("figure2").unwrap();
    // The grid guide ignores adjustments and serves the sweep instead.
    let done = session.prefetch_tick(3).unwrap();
    assert_eq!(done, 3, "grid strategy always has points pending");
}

use prophet_mc::GridGuide;

#[test]
fn sessions_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<OnlineSession>();
    assert_send::<Prophet>();
}
