//! Deeper integration tests of the online session: proactive prefetch,
//! progressive refinement, series export, materialization of session
//! results, and the interaction between sliders and the basis store.

use fuzzy_prophet::prelude::*;
use fuzzy_prophet::render::{ascii_chart, series_csv};
use prophet_mc::{summary_table, worlds_table};
use prophet_models::demo_registry;

fn session(worlds: usize) -> OnlineSession {
    Prophet::builder()
        .scenario("figure2", Scenario::figure2().unwrap())
        .registry(demo_registry())
        .config(EngineConfig {
            worlds_per_point: worlds,
            ..EngineConfig::default()
        })
        .build()
        .unwrap()
        .online("figure2")
        .unwrap()
}

#[test]
fn prefetch_makes_future_adjustments_free() {
    let mut s = session(16);
    s.set_param("purchase1", 16).unwrap();
    s.set_param("purchase2", 36).unwrap();
    // Each adjustment queues its slider's domain neighbours: purchase1
    // queued {12, 20}, purchase2 queued {32, 40}.
    let prefetched = s.prefetch_tick(10).unwrap();
    assert_eq!(prefetched, 4);
    // Moving to a prefetched value re-simulates nothing at all.
    let report = s.set_param("purchase2", 32).unwrap();
    assert_eq!(report.weeks_simulated, 0);
    assert_eq!(report.weeks_mapped, 0);
    assert_eq!(report.weeks_cached, 53);
    // Budget zero is a no-op.
    assert_eq!(s.prefetch_tick(0).unwrap(), 0);
}

#[test]
fn progressive_estimates_are_monotone_in_epsilon() {
    let mut s = session(400);
    s.set_param("purchase1", 16).unwrap();
    s.engine().clear_basis();
    // Tighter epsilon must need at least as many worlds.
    let loose = s.progressive_expect("overload", 30, 0.10, 10).unwrap();
    s.engine().clear_basis();
    let tight = s.progressive_expect("overload", 30, 0.02, 10).unwrap();
    assert!(
        tight.worlds_used >= loose.worlds_used,
        "tight {} vs loose {}",
        tight.worlds_used,
        loose.worlds_used
    );
}

#[test]
fn exported_series_match_the_chart_and_csv() {
    let mut s = session(24);
    s.refresh().unwrap();
    let exported = s.export_series();
    assert_eq!(exported.len(), 3);
    for (_, _, points) in &exported {
        assert_eq!(points.len(), 53);
    }
    let series: Vec<_> = s.graph().iter().collect();
    let chart = ascii_chart(&series, 80, 12);
    assert!(chart.contains("EXPECT overload"));
    let csv = series_csv(&series);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 54, "header + 53 weeks");
    assert!(lines[0].starts_with("x,EXPECT overload"));
}

#[test]
fn session_results_materialize_into_relations() {
    let engine = Engine::new(
        &Scenario::figure2().unwrap(),
        demo_registry(),
        EngineConfig {
            worlds_per_point: 20,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut sets = Vec::new();
    for week in [0i64, 10, 20] {
        let point = ParamPoint::from_pairs([
            ("current", week),
            ("purchase1", 16i64),
            ("purchase2", 36),
            ("feature", 12),
        ]);
        sets.push(engine.evaluate(&point).unwrap().0);
    }
    let worlds = worlds_table(&sets).unwrap();
    assert_eq!(worlds.num_rows(), 60, "3 points × 20 worlds");
    assert!(worlds.schema().index_of("demand").is_ok());
    assert!(worlds.schema().index_of("world").is_ok());

    let summary = summary_table(&sets).unwrap();
    assert_eq!(summary.num_rows(), 3);
    let e0 = summary.cell(0, "expect_demand").unwrap().as_f64().unwrap();
    assert!((7_000.0..9_500.0).contains(&e0), "week-0 demand {e0}");
}

#[test]
fn slider_round_trip_restores_cached_graph() {
    let mut s = session(24);
    s.set_param("feature", 36).unwrap();
    let overload_before: Vec<(f64, f64)> = s.series("overload").unwrap().xy();
    s.set_param("feature", 44).unwrap();
    let report = s.set_param("feature", 36).unwrap();
    // Coming back to an already-computed slider value is pure cache.
    assert_eq!(report.weeks_simulated, 0);
    assert_eq!(report.weeks_cached, 53);
    let overload_after: Vec<(f64, f64)> = s.series("overload").unwrap().xy();
    assert_eq!(
        overload_before, overload_after,
        "cache must reproduce the graph exactly"
    );
}

#[test]
fn metrics_accumulate_across_adjustments() {
    let mut s = session(16);
    s.refresh().unwrap();
    let m1 = s.engine().metrics();
    s.set_param("purchase2", 40).unwrap();
    let m2 = s.engine().metrics();
    assert!(m2.points_total() > m1.points_total());
    let delta = m2.since(&m1);
    assert_eq!(
        delta.points_total(),
        53,
        "one adjustment touches every week once"
    );
}
