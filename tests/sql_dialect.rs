//! Broad DSL coverage: dialect corners exercised end-to-end through the
//! engine (not just the parser), so that expression semantics, parameter
//! binding and aggregate plumbing are all checked against hand-computable
//! answers.

use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;

fn engine_for(src: &str, worlds: usize) -> Engine {
    Engine::new(
        &Scenario::parse(src).unwrap(),
        demo_registry(),
        EngineConfig {
            worlds_per_point: worlds,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn deterministic_scenarios_compute_exactly() {
    // No VG calls at all: every world computes the same row, expectations
    // are exact.
    let e = engine_for(
        "DECLARE PARAMETER @x AS RANGE 1 TO 5 STEP BY 1;\n\
         SELECT @x * @x AS square,\n\
                CASE WHEN @x % 2 = 0 THEN 1 ELSE 0 END AS even,\n\
                POWER(2, @x) AS pow2,\n\
                GREATEST(@x, 3) AS clamped\n\
         INTO results;",
        7,
    );
    for x in 1..=5i64 {
        let p = ParamPoint::from_pairs([("x", x)]);
        let (s, _) = e.evaluate(&p).unwrap();
        assert_eq!(s.expect("square").unwrap(), (x * x) as f64);
        assert_eq!(
            s.expect("even").unwrap(),
            if x % 2 == 0 { 1.0 } else { 0.0 }
        );
        assert_eq!(s.expect("pow2").unwrap(), 2f64.powi(x as i32));
        assert_eq!(s.expect("clamped").unwrap(), (x.max(3)) as f64);
        assert_eq!(s.expect_std_dev("square").unwrap(), 0.0);
    }
}

#[test]
fn alias_chains_evaluate_left_to_right() {
    let e = engine_for(
        "DECLARE PARAMETER @x AS SET (10);\n\
         SELECT @x + 1 AS a, a * 2 AS b, b - a AS c INTO results;",
        3,
    );
    let p = ParamPoint::from_pairs([("x", 10i64)]);
    let (s, _) = e.evaluate(&p).unwrap();
    assert_eq!(s.expect("a").unwrap(), 11.0);
    assert_eq!(s.expect("b").unwrap(), 22.0);
    assert_eq!(s.expect("c").unwrap(), 11.0);
}

#[test]
fn boolean_logic_and_comparison_chains() {
    let e = engine_for(
        "DECLARE PARAMETER @x AS RANGE 0 TO 10 STEP BY 1;\n\
         SELECT CASE WHEN @x >= 3 AND @x < 7 THEN 1 ELSE 0 END AS band,\n\
                CASE WHEN NOT (@x = 5) THEN 1 ELSE 0 END AS not5,\n\
                CASE WHEN @x < 2 OR @x > 8 THEN 1 ELSE 0 END AS fringe\n\
         INTO results;",
        2,
    );
    for x in 0..=10i64 {
        let (s, _) = e.evaluate(&ParamPoint::from_pairs([("x", x)])).unwrap();
        assert_eq!(
            s.expect("band").unwrap(),
            f64::from((3..7).contains(&x) as u8),
            "x={x}"
        );
        assert_eq!(
            s.expect("not5").unwrap(),
            f64::from((x != 5) as u8),
            "x={x}"
        );
        assert_eq!(
            s.expect("fringe").unwrap(),
            f64::from(!(2..=8).contains(&x) as u8),
            "x={x}"
        );
    }
}

#[test]
fn float_literals_and_precedence_in_thresholds() {
    let e = engine_for(
        "DECLARE PARAMETER @x AS RANGE 0 TO 4 STEP BY 1;\n\
         SELECT 1.5e2 + @x * 0.5 AS v INTO results;",
        2,
    );
    let (s, _) = e.evaluate(&ParamPoint::from_pairs([("x", 4i64)])).unwrap();
    assert_eq!(s.expect("v").unwrap(), 152.0);
}

#[test]
fn stddev_metric_reflects_model_noise() {
    // demand sd before release is the base noise (400).
    let e = engine_for(
        "DECLARE PARAMETER @w AS SET (5);\n\
         DECLARE PARAMETER @f AS SET (30);\n\
         SELECT DemandModel(@w, @f) AS demand INTO results;",
        3_000,
    );
    let p = ParamPoint::from_pairs([("w", 5i64), ("f", 30)]);
    let (s, _) = e.evaluate(&p).unwrap();
    let sd = s.expect_std_dev("demand").unwrap();
    assert!((sd - 400.0).abs() < 25.0, "sd={sd}");
}

#[test]
fn optimize_with_min_and_avg_aggregates() {
    // MIN over the axis: feasible iff the *best* week satisfies; AVG:
    // feasible iff the year-average satisfies. Both hand-checkable on a
    // deterministic scenario.
    let src = "\
DECLARE PARAMETER @x AS RANGE 0 TO 4 STEP BY 1;
DECLARE PARAMETER @w AS RANGE 0 TO 9 STEP BY 1;
SELECT @x * 10 + @w AS v INTO results;
OPTIMIZE SELECT @x FROM results
WHERE MIN(EXPECT v) <= 20 AND AVG(EXPECT v) <= 27
GROUP BY x
FOR MAX @x";
    let opt = OfflineOptimizer::open(
        Engine::new(
            &Scenario::parse(src).unwrap(),
            demo_registry(),
            EngineConfig {
                worlds_per_point: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap(),
    )
    .unwrap();
    let report = opt.run().unwrap();
    // For group x: MIN over w of (10x + w) = 10x; AVG = 10x + 4.5.
    // MIN <= 20 → x <= 2;  AVG <= 27 → 10x <= 22.5 → x <= 2. Best (MAX) x=2.
    assert_eq!(report.best.as_ref().unwrap().point.get("x"), Some(2));
    assert_eq!(report.feasible().count(), 3);
}

#[test]
fn equality_and_inequality_constraint_operators() {
    let src = "\
DECLARE PARAMETER @x AS RANGE 0 TO 3 STEP BY 1;
DECLARE PARAMETER @w AS SET (0);
SELECT @x AS v INTO results;
OPTIMIZE SELECT @x FROM results
WHERE MAX(EXPECT v) <> 2
GROUP BY x
FOR MAX @x";
    let opt = OfflineOptimizer::open(
        Engine::new(
            &Scenario::parse(src).unwrap(),
            demo_registry(),
            EngineConfig {
                worlds_per_point: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap(),
    )
    .unwrap();
    let report = opt.run().unwrap();
    // all x except 2 are feasible; best is 3
    assert_eq!(report.best.as_ref().unwrap().point.get("x"), Some(3));
    assert_eq!(report.feasible().count(), 3);
}

#[test]
fn whitespace_comments_and_case_insensitivity() {
    let src = "\n\
-- leading comment\n\
declare parameter @X as range 0 to 2 step by 1; -- trailing\n\
select @X as v into results;\n\
graph over @X expect v;\n";
    let scenario = Scenario::parse(src).unwrap();
    assert_eq!(scenario.script().params[0].name, "X");
    assert!(scenario.script().graph.is_some());
}
