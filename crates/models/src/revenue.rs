//! Subscription-revenue model for the pricing what-if example.
//!
//! Not part of the paper's demo scenario, but representative of the "many
//! enterprises" scenarios the introduction motivates: choose a price point
//! under uncertain subscriber growth and price elasticity.

use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_vg::dist::{LogNormal, Normal};
use prophet_vg::rng::Rng64;
use prophet_vg::VgFunction;

/// Parameters of the revenue model.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueConfig {
    /// Subscribers at week 0 at the anchor price.
    pub base_subscribers: f64,
    /// Weekly subscriber growth at the anchor price.
    pub growth_per_week: f64,
    /// Subscriber noise (std-dev).
    pub subscriber_std: f64,
    /// Anchor price (currency units / month) at which elasticity is zero.
    pub anchor_price: f64,
    /// Subscribers lost per currency-unit of price above the anchor.
    pub elasticity: f64,
    /// Log-scale sigma of per-subscriber engagement revenue multiplier.
    pub engagement_sigma: f64,
}

impl Default for RevenueConfig {
    fn default() -> Self {
        RevenueConfig {
            base_subscribers: 50_000.0,
            growth_per_week: 600.0,
            subscriber_std: 2_000.0,
            anchor_price: 20.0,
            elasticity: 1_500.0,
            engagement_sigma: 0.08,
        }
    }
}

/// `RevenueModel(@week, @price)` → one cell: weekly revenue at the given
/// price point.
#[derive(Debug, Clone)]
pub struct RevenueModel {
    config: RevenueConfig,
    subscriber_noise: Normal,
    engagement: LogNormal,
}

impl RevenueModel {
    /// Build from a config.
    ///
    /// # Panics
    /// Panics if noise parameters are not positive (analyst constants).
    pub fn new(config: RevenueConfig) -> Self {
        let subscriber_noise =
            Normal::new(0.0, config.subscriber_std).expect("subscriber_std must be positive");
        // mean-1 engagement multiplier: mu = -sigma^2/2
        let engagement = LogNormal::new(
            -config.engagement_sigma * config.engagement_sigma / 2.0,
            config.engagement_sigma,
        )
        .expect("engagement_sigma must be positive");
        RevenueModel {
            config,
            subscriber_noise,
            engagement,
        }
    }

    /// Sample weekly revenue (Rust-level API).
    ///
    /// Stream discipline: exactly two draws per invocation (subscriber
    /// noise, engagement), so price changes map affinely under fixed seeds:
    /// revenue = (trend − elasticity·Δprice + noise) · price · engagement.
    pub fn revenue_at<R: Rng64 + ?Sized>(&self, week: i64, price: f64, rng: &mut R) -> f64 {
        let trend = self.config.base_subscribers + self.config.growth_per_week * week as f64;
        let price_penalty = self.config.elasticity * (price - self.config.anchor_price);
        let noise = self.subscriber_noise.sample_with(rng);
        let engagement = self.engagement.sample_with(rng);
        let subscribers = (trend - price_penalty + noise).max(0.0);
        subscribers * price * engagement / 4.0 // monthly price → weekly revenue
    }

    /// Analytic mean subscribers at a week/price.
    pub fn mean_subscribers(&self, week: i64, price: f64) -> f64 {
        (self.config.base_subscribers + self.config.growth_per_week * week as f64
            - self.config.elasticity * (price - self.config.anchor_price))
            .max(0.0)
    }
}

impl Default for RevenueModel {
    fn default() -> Self {
        RevenueModel::new(RevenueConfig::default())
    }
}

impl VgFunction for RevenueModel {
    fn name(&self) -> &str {
        "RevenueModel"
    }

    fn arity(&self) -> usize {
        2
    }

    fn output_schema(&self) -> Schema {
        Schema::of(&[("revenue", DataType::Float)])
    }

    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let week = params[0].as_i64()?;
        let price = params[1].as_f64()?;
        let revenue = self.revenue_at(week, price, rng);
        let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
        b.push_row(vec![Value::Float(revenue)])?;
        Ok(b.finish())
    }

    /// Raw-`f64` batch lane for the typed columnar tier: the scalar output
    /// is always `Value::Float`, so each world's draw lands directly in
    /// the column — same per-world streams as [`VgFunction::invoke`], but
    /// monomorphized over the concrete generator (no `dyn` per draw).
    fn invoke_batch_f64(
        &self,
        calls: &mut [prophet_vg::VgCallF64<'_>],
    ) -> DataResult<Option<Vec<f64>>> {
        calls
            .iter_mut()
            .map(|call| {
                let week = call.params[0].as_i64()?;
                let price = call.params[1].as_f64()?;
                Ok(self.revenue_at(week, price, call.rng))
            })
            .collect::<DataResult<Vec<f64>>>()
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;

    #[test]
    fn higher_price_loses_subscribers() {
        let m = RevenueModel::default();
        assert!(m.mean_subscribers(0, 25.0) < m.mean_subscribers(0, 20.0));
        assert!(m.mean_subscribers(0, 15.0) > m.mean_subscribers(0, 20.0));
    }

    #[test]
    fn revenue_peaks_at_interior_price() {
        // With linear elasticity, revenue = subs(p)·p is a downward parabola
        // in p; the Monte Carlo means must reflect that shape.
        let m = RevenueModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let n = 5_000;
        let mean_rev = |price: f64, rng: &mut Xoshiro256StarStar| {
            (0..n).map(|_| m.revenue_at(0, price, rng)).sum::<f64>() / n as f64
        };
        let low = mean_rev(10.0, &mut rng);
        let mid = mean_rev(26.0, &mut rng);
        let high = mean_rev(48.0, &mut rng);
        assert!(mid > low, "mid={mid:.0} low={low:.0}");
        assert!(mid > high, "mid={mid:.0} high={high:.0}");
    }

    #[test]
    fn subscribers_never_negative() {
        let m = RevenueModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        // absurd price: elasticity would drive subscribers negative
        for _ in 0..100 {
            assert!(m.revenue_at(0, 500.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn engagement_multiplier_is_mean_one() {
        let cfg = RevenueConfig::default();
        let m = RevenueModel::new(cfg);
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| m.engagement.sample_with(&mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean engagement {mean}");
    }

    #[test]
    fn vg_interface_accepts_int_and_float_price() {
        let m = RevenueModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let t = m
            .invoke(&[Value::Int(0), Value::Int(20)], &mut rng)
            .unwrap();
        assert!(t.cell(0, "revenue").unwrap().as_f64().unwrap() > 0.0);
        let t = m
            .invoke(&[Value::Int(0), Value::Float(19.5)], &mut rng)
            .unwrap();
        assert!(t.cell(0, "revenue").unwrap().as_f64().unwrap() > 0.0);
    }
}
