//! Purchase-to-deployment lag model.
//!
//! Paper §3.1: the capacity model includes "expected time from new hardware
//! purchase to deployment". Hardware ordered in week `p` comes online in
//! week `p + lag` where the lag is stochastic (logistics, burn-in,
//! integration) — the paper's §2 explicitly calls out "the nondeterministic
//! date when new hardware comes online" as the kind of discontinuity
//! fingerprinting must cope with.

use prophet_vg::dist::Triangular;
use prophet_vg::rng::Rng64;

/// Deployment-lag configuration (weeks, as a min/mode/max triangle).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentConfig {
    /// Fastest plausible lag.
    pub min_weeks: f64,
    /// Most likely lag.
    pub mode_weeks: f64,
    /// Slowest plausible lag.
    pub max_weeks: f64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            min_weeks: 1.0,
            mode_weeks: 2.0,
            max_weeks: 5.0,
        }
    }
}

impl DeploymentConfig {
    /// Build the sampler.
    ///
    /// # Panics
    /// Panics on an invalid triangle (analyst-authored constants).
    pub fn sampler(&self) -> DeploymentSampler {
        DeploymentSampler {
            dist: Triangular::new(self.min_weeks, self.mode_weeks, self.max_weeks)
                .expect("deployment lag triangle must satisfy min <= mode <= max, min < max"),
        }
    }

    /// Expected lag in weeks.
    pub fn mean_weeks(&self) -> f64 {
        (self.min_weeks + self.mode_weeks + self.max_weeks) / 3.0
    }
}

/// Samples integer deployment lags.
#[derive(Debug, Clone)]
pub struct DeploymentSampler {
    dist: Triangular,
}

impl DeploymentSampler {
    /// Sample a lag in whole weeks (rounded down; deployment counts from
    /// the start of a week).
    pub fn sample_lag<R: Rng64 + ?Sized>(&self, rng: &mut R) -> i64 {
        self.dist.sample_with(rng).floor() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;

    #[test]
    fn lags_fall_in_the_triangle() {
        let s = DeploymentConfig::default().sampler();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        for _ in 0..10_000 {
            let lag = s.sample_lag(&mut rng);
            assert!((1..=4).contains(&lag), "lag {lag} outside [1, 4]");
        }
    }

    #[test]
    fn mean_lag_is_sane() {
        let cfg = DeploymentConfig::default();
        let s = cfg.sampler();
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| s.sample_lag(&mut rng) as f64).sum::<f64>() / n as f64;
        // floor() pulls the continuous mean (8/3 ≈ 2.67) down a bit
        assert!((1.5..2.7).contains(&mean), "mean lag {mean}");
        assert!((cfg.mean_weeks() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = DeploymentConfig::default().sampler();
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(s.sample_lag(&mut a), s.sample_lag(&mut b));
        }
    }
}
