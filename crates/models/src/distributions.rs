//! The bundled parametric distributions as catalog VG functions.
//!
//! MCDB exposes its basic distributions (`Normal(...)`, `Poisson(...)`,
//! …) directly to SQL; these wrappers do the same for the reproduction's
//! [`prophet_vg::dist`] family so a scenario can draw from a raw
//! distribution without writing a model struct:
//!
//! ```sql
//! SELECT Normal(@mu, 25.0) AS noise, Poisson(40) AS arrivals INTO r;
//! ```
//!
//! Every wrapper provides the raw-`f64` batch lane
//! ([`prophet_vg::VgFunction::invoke_batch_f64`]): a whole world-block of
//! draws lands directly in a typed column, one sample per world, with the
//! per-world `(world, function, call index)` substream discipline
//! untouched — each world still draws from its own generator, and the
//! distribution consumes exactly the draws its scalar `sample` would.

use prophet_data::{DataError, DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_vg::dist::{Distribution, LogNormal, Normal, Poisson, Triangular};
use prophet_vg::rng::Rng64;
use prophet_vg::{VgCall, VgCallF64, VgFunction};

fn bad_params(name: &str, spec: &str, params: &[Value]) -> DataError {
    DataError::SchemaMismatch(format!("{name}{spec} got invalid parameters {params:?}"))
}

fn one_cell(schema: Schema, sample: f64) -> DataResult<Table> {
    let mut b = TableBuilder::with_capacity(schema, 1);
    b.push_row(vec![Value::Float(sample)])?;
    Ok(b.finish())
}

macro_rules! dist_vg {
    ($(#[$doc:meta])* $wrapper:ident, $name:literal, $spec:literal, $arity:literal,
     $dist:ty, |$params:ident| $build:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $wrapper;

        impl $wrapper {
            fn dist($params: &[Value]) -> DataResult<$dist> {
                $build.ok_or_else(|| bad_params($name, $spec, $params))
            }
        }

        impl VgFunction for $wrapper {
            fn name(&self) -> &str {
                $name
            }

            fn arity(&self) -> usize {
                $arity
            }

            fn output_schema(&self) -> Schema {
                Schema::of(&[("sample", DataType::Float)])
            }

            fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
                one_cell(self.output_schema(), Self::dist(params)?.sample(rng))
            }

            fn invoke_batch_scalar(&self, calls: &mut [VgCall<'_>]) -> DataResult<Vec<Value>> {
                calls
                    .iter_mut()
                    .map(|call| Ok(Value::Float(Self::dist(call.params)?.sample(call.rng))))
                    .collect()
            }

            /// One raw draw per world, straight into the `f64` lane —
            /// monomorphized over the concrete generator (no `dyn` per
            /// draw).
            fn invoke_batch_f64(
                &self,
                calls: &mut [VgCallF64<'_>],
            ) -> DataResult<Option<Vec<f64>>> {
                calls
                    .iter_mut()
                    .map(|call| Ok(Self::dist(call.params)?.sample_with(call.rng)))
                    .collect::<DataResult<Vec<f64>>>()
                    .map(Some)
            }
        }
    };
}

dist_vg!(
    /// `Normal(@mean, @std)` → one gaussian draw per world.
    NormalVg, "Normal", "(mean, std)", 2,
    Normal, |params| Normal::new(params[0].as_f64()?, params[1].as_f64()?)
);

dist_vg!(
    /// `LogNormal(@mu, @sigma)` → one log-normal draw per world (log-scale
    /// parameters, as in [`prophet_vg::dist::LogNormal`]).
    LogNormalVg, "LogNormal", "(mu, sigma)", 2,
    LogNormal, |params| LogNormal::new(params[0].as_f64()?, params[1].as_f64()?)
);

dist_vg!(
    /// `Poisson(@lambda)` → one Poisson count per world (as a float cell,
    /// like every distribution sample).
    PoissonVg, "Poisson", "(lambda)", 1,
    Poisson, |params| Poisson::new(params[0].as_f64()?)
);

dist_vg!(
    /// `Triangular(@min, @mode, @max)` → one triangular draw per world.
    TriangularVg, "Triangular", "(min, mode, max)", 3,
    Triangular, |params| Triangular::new(
        params[0].as_f64()?,
        params[1].as_f64()?,
        params[2].as_f64()?
    )
);

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;
    use prophet_vg::{BatchSamples, VgRegistry};
    use std::sync::Arc;

    fn registry() -> VgRegistry {
        let mut r = VgRegistry::new();
        r.register(Arc::new(NormalVg));
        r.register(Arc::new(LogNormalVg));
        r.register(Arc::new(PoissonVg));
        r.register(Arc::new(TriangularVg));
        r
    }

    fn params_for(name: &str) -> Vec<Value> {
        match name {
            "Normal" => vec![Value::Float(10.0), Value::Float(2.0)],
            "LogNormal" => vec![Value::Float(0.0), Value::Float(0.25)],
            "Poisson" => vec![Value::Float(6.5)],
            "Triangular" => vec![Value::Int(0), Value::Int(3), Value::Int(10)],
            other => panic!("unknown distribution {other}"),
        }
    }

    #[test]
    fn batch_f64_lane_is_bit_identical_to_scalar_invoke() {
        let r = registry();
        for name in ["Normal", "LogNormal", "Poisson", "Triangular"] {
            let params = params_for(name);
            let mut rngs: Vec<_> = (0..16u64).map(Xoshiro256StarStar::seed_from_u64).collect();
            let mut calls: Vec<VgCallF64<'_>> = rngs
                .iter_mut()
                .map(|rng| VgCallF64 {
                    params: &params,
                    rng,
                })
                .collect();
            let BatchSamples::F64(lane) = r.invoke_batch_columnar(name, &mut calls).unwrap() else {
                panic!("{name} must provide the f64 lane");
            };
            for (world, &sample) in lane.iter().enumerate() {
                let mut rng = Xoshiro256StarStar::seed_from_u64(world as u64);
                let cell = r
                    .invoke(name, &params, &mut rng)
                    .unwrap()
                    .cell(0, "sample")
                    .unwrap();
                assert_eq!(
                    Value::Float(sample),
                    cell,
                    "{name} world {world} lane diverged from scalar invoke"
                );
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected_with_the_spec() {
        let r = registry();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let err = r
            .invoke("Normal", &[Value::Float(0.0), Value::Float(-1.0)], &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("Normal(mean, std)"), "{err}");
        let err = r
            .invoke("Poisson", &[Value::Float(0.0)], &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("Poisson(lambda)"), "{err}");
        let err = r
            .invoke(
                "Triangular",
                &[Value::Int(5), Value::Int(1), Value::Int(2)],
                &mut rng,
            )
            .unwrap_err();
        assert!(
            err.to_string().contains("Triangular(min, mode, max)"),
            "{err}"
        );
    }

    #[test]
    fn sample_moments_are_plausible() {
        let r = registry();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let n = 4_000;
        let mean = |name: &str, params: &[Value], rng: &mut Xoshiro256StarStar| {
            (0..n)
                .map(|_| {
                    r.invoke(name, params, rng)
                        .unwrap()
                        .cell(0, "sample")
                        .unwrap()
                        .as_f64()
                        .unwrap()
                })
                .sum::<f64>()
                / n as f64
        };
        let m = mean("Normal", &params_for("Normal"), &mut rng);
        assert!((m - 10.0).abs() < 0.2, "Normal mean {m}");
        let m = mean("Poisson", &params_for("Poisson"), &mut rng);
        assert!((m - 6.5).abs() < 0.2, "Poisson mean {m}");
        let m = mean("Triangular", &params_for("Triangular"), &mut rng);
        assert!((m - 13.0 / 3.0).abs() < 0.2, "Triangular mean {m}");
    }
}
