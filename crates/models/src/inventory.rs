//! Inventory / stockout model for the supply-chain example.
//!
//! A weekly (s, Q) reorder policy under Poisson demand with a fixed lead
//! time: when on-hand + on-order inventory falls to the reorder point `s`,
//! an order of `Q` units is placed and arrives `lead_weeks` later. Another
//! Markov chain with event discontinuities — structurally the same shape
//! as the capacity model, exercising fingerprints on a second domain.

use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_vg::dist::Poisson;
use prophet_vg::rng::Rng64;
use prophet_vg::VgFunction;

/// Parameters of the inventory simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct InventoryConfig {
    /// Units on hand at week 0.
    pub initial_units: f64,
    /// Mean units demanded per week (Poisson).
    pub weekly_demand: f64,
    /// Order lead time in weeks.
    pub lead_weeks: i64,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        InventoryConfig {
            initial_units: 500.0,
            weekly_demand: 60.0,
            lead_weeks: 3,
        }
    }
}

/// `InventoryModel(@week, @reorder_point, @reorder_qty)` → one cell: units
/// on hand at the end of `@week` (0 when stocked out).
#[derive(Debug, Clone)]
pub struct InventoryModel {
    config: InventoryConfig,
    demand: Poisson,
}

impl InventoryModel {
    /// Build from a config.
    ///
    /// # Panics
    /// Panics if `weekly_demand` is not positive (analyst constant).
    pub fn new(config: InventoryConfig) -> Self {
        let demand = Poisson::new(config.weekly_demand).expect("weekly_demand must be positive");
        InventoryModel { config, demand }
    }

    /// The config in use.
    pub fn config(&self) -> &InventoryConfig {
        &self.config
    }

    /// Simulate weeks `0..=last_week`; returns end-of-week on-hand levels.
    ///
    /// Stream discipline: exactly one Poisson demand draw per week from the
    /// main stream; policy parameters only gate *when* orders are placed,
    /// never what is drawn, so different (s, Q) policies stay sample-aligned
    /// under common random numbers.
    pub fn trajectory<R: Rng64 + ?Sized>(
        &self,
        last_week: i64,
        reorder_point: i64,
        reorder_qty: i64,
        rng: &mut R,
    ) -> Vec<f64> {
        let mut on_hand = self.config.initial_units;
        let mut pipeline: Vec<(i64, f64)> = Vec::new(); // (arrival week, qty)
        let mut out = Vec::with_capacity(last_week.max(0) as usize + 1);
        for week in 0..=last_week.max(0) {
            // arrivals first
            pipeline.retain(|&(arrive, qty)| {
                if arrive == week {
                    on_hand += qty;
                    false
                } else {
                    true
                }
            });
            // demand
            let demanded = self.demand.sample_with(rng);
            on_hand = (on_hand - demanded).max(0.0);
            // reorder policy on inventory position (on hand + on order)
            let position = on_hand + pipeline.iter().map(|(_, q)| q).sum::<f64>();
            if position <= reorder_point as f64 {
                pipeline.push((week + self.config.lead_weeks, reorder_qty as f64));
            }
            out.push(on_hand);
        }
        out
    }

    /// On-hand units at one week (the VG-visible scalar).
    pub fn on_hand_at<R: Rng64 + ?Sized>(
        &self,
        week: i64,
        reorder_point: i64,
        reorder_qty: i64,
        rng: &mut R,
    ) -> f64 {
        *self
            .trajectory(week, reorder_point, reorder_qty, rng)
            .last()
            .expect("trajectory is never empty")
    }
}

impl Default for InventoryModel {
    fn default() -> Self {
        InventoryModel::new(InventoryConfig::default())
    }
}

impl VgFunction for InventoryModel {
    fn name(&self) -> &str {
        "InventoryModel"
    }

    fn arity(&self) -> usize {
        3
    }

    fn output_schema(&self) -> Schema {
        Schema::of(&[("on_hand", DataType::Float)])
    }

    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let week = params[0].as_i64()?;
        let s = params[1].as_i64()?;
        let q = params[2].as_i64()?;
        let on_hand = self.on_hand_at(week, s, q, rng);
        let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
        b.push_row(vec![Value::Float(on_hand)])?;
        Ok(b.finish())
    }

    /// Raw-`f64` batch lane for the typed columnar tier: the scalar output
    /// is always `Value::Float`, so each world's draw lands directly in
    /// the column — same per-world streams as [`VgFunction::invoke`], but
    /// monomorphized over the concrete generator (no `dyn` per draw).
    fn invoke_batch_f64(
        &self,
        calls: &mut [prophet_vg::VgCallF64<'_>],
    ) -> DataResult<Option<Vec<f64>>> {
        calls
            .iter_mut()
            .map(|call| {
                let week = call.params[0].as_i64()?;
                let s = call.params[1].as_i64()?;
                let q = call.params[2].as_i64()?;
                Ok(self.on_hand_at(week, s, q, call.rng))
            })
            .collect::<DataResult<Vec<f64>>>()
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;

    #[test]
    fn generous_policy_avoids_stockouts() {
        let m = InventoryModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut stockouts = 0;
        for _ in 0..200 {
            let t = m.trajectory(52, 400, 400, &mut rng);
            stockouts += t.iter().filter(|&&x| x == 0.0).count();
        }
        assert_eq!(
            stockouts, 0,
            "reorder at 400 with lead-time demand ≈180 should never stock out"
        );
    }

    #[test]
    fn stingy_policy_stocks_out() {
        let m = InventoryModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut stockout_runs = 0;
        for _ in 0..200 {
            let t = m.trajectory(52, 60, 100, &mut rng);
            if t.contains(&0.0) {
                stockout_runs += 1;
            }
        }
        assert!(
            stockout_runs > 100,
            "reorder at 60 with ~180 lead-time demand must usually stock out, got {stockout_runs}/200"
        );
    }

    #[test]
    fn policy_parameters_do_not_perturb_demand_stream() {
        let m = InventoryModel::default();
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        // Different policies, same seed: both consume one draw per week, so
        // the *demand* sequences are identical; inventory differs only via
        // policy. Sanity-check by comparing week-0 levels (no reorder can
        // have arrived yet with lead 3).
        let ta = m.trajectory(10, 200, 300, &mut a);
        let tb = m.trajectory(10, 100, 150, &mut b);
        assert_eq!(ta[0], tb[0], "week 0 must be identical across policies");
        assert_eq!(ta[1], tb[1]);
        assert_eq!(ta[2], tb[2]);
        // after lead time the generous policy has received more stock
        assert!(ta[9] >= tb[9]);
    }

    #[test]
    fn on_hand_is_never_negative() {
        let m = InventoryModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let t = m.trajectory(52, 0, 0, &mut rng); // never reorder
        assert!(t.iter().all(|&x| x >= 0.0));
        assert_eq!(*t.last().unwrap(), 0.0, "no reorders must end stocked out");
    }

    #[test]
    fn vg_interface() {
        let m = InventoryModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let t = m
            .invoke(
                &[Value::Int(10), Value::Int(200), Value::Int(300)],
                &mut rng,
            )
            .unwrap();
        assert_eq!((t.num_rows(), t.schema().len()), (1, 1));
        assert!(t.cell(0, "on_hand").unwrap().as_f64().unwrap() >= 0.0);
    }
}
