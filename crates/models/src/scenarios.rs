//! The bundled example scenarios, as DSL text.
//!
//! One canonical home for the scenario scripts the repository's examples,
//! benches and differential tests all run, so that "the five bundled
//! scenarios" means the same five scripts everywhere. The models they call
//! live in this crate's [`registry`](crate::registry) — the Figure-2 pair
//! ([`crate::demand`], [`crate::capacity`]) resolves against
//! [`demo_registry`](crate::registry::demo_registry), everything else
//! against [`full_registry`](crate::registry::full_registry).
//!
//! The paper's *full* Figure-2 text lives upstream in
//! `fuzzy_prophet::scenario::FIGURE2_SQL` (it is the paper's artifact, not
//! a model's); the coarse variant here is the reduced grid the sweep-heavy
//! examples and benches use.

/// A reduced-grid Figure 2 used by sweep-heavy examples and experiments:
/// identical structure, coarser purchase grid so full sweeps complete in
/// seconds. `{THRESHOLD}` is substituted by the caller (the demo runs both
/// the SQL text's 1% and the prose's 5%).
pub const FIGURE2_COARSE: &str = "\
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 2;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 8;
DECLARE PARAMETER @feature AS SET (12,36,44);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current
    EXPECT overload WITH bold red,
    EXPECT capacity WITH blue y2,
    EXPECT_STDDEV demand WITH orange y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < {THRESHOLD}
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2";

/// Inventory policy what-if: pick an (s, Q) reorder policy under uncertain
/// demand with a delivery lead time — the leanest reorder point that keeps
/// stockout probability acceptable across the year.
pub const INVENTORY_POLICY: &str = "\
DECLARE PARAMETER @week AS RANGE 4 TO 52 STEP BY 4;
DECLARE PARAMETER @reorder_point AS RANGE 120 TO 360 STEP BY 40;
DECLARE PARAMETER @reorder_qty AS SET (200, 300, 400);
SELECT InventoryModel(@week, @reorder_point, @reorder_qty) AS on_hand,
       CASE WHEN on_hand <= 0 THEN 1 ELSE 0 END AS stockout
INTO results;
OPTIMIZE SELECT @reorder_point, @reorder_qty
FROM results
WHERE MAX(EXPECT stockout) < 0.05
GROUP BY reorder_point, reorder_qty
FOR MIN @reorder_point, MIN @reorder_qty";

/// Pricing what-if: choose a subscription price and a promo week under
/// uncertain subscriber growth and price elasticity.
pub const PRICING_WHATIF: &str = "\
DECLARE PARAMETER @week AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @price AS RANGE 12 TO 40 STEP BY 2;
SELECT RevenueModel(@week, @price) AS revenue,
       CASE WHEN revenue < 200000 THEN 1 ELSE 0 END AS miss
INTO results;
GRAPH OVER @price
    EXPECT revenue WITH green y2,
    EXPECT miss WITH red bold;
OPTIMIZE SELECT @price
FROM results
WHERE MAX(EXPECT miss) < 0.5
GROUP BY price
FOR MAX @price";

/// Support staffing: the smallest team that keeps the average ticket
/// backlog acceptable as volume grows through the year.
pub const SUPPORT_STAFFING: &str = "\
DECLARE PARAMETER @week AS RANGE 0 TO 48 STEP BY 4;
DECLARE PARAMETER @agents AS RANGE 6 TO 20 STEP BY 1;
SELECT QueueModel(@week, @agents) AS backlog,
       CASE WHEN backlog > 25 THEN 1 ELSE 0 END AS breach
INTO results;
GRAPH OVER @week
    EXPECT backlog WITH purple,
    EXPECT breach WITH red bold;
OPTIMIZE SELECT @agents
FROM results
WHERE MAX(EXPECT breach) < 0.2
GROUP BY agents
FOR MIN @agents";

/// The coarse Figure 2 with a concrete overload threshold substituted in.
pub fn figure2_coarse_sql(threshold: f64) -> String {
    FIGURE2_COARSE.replace("{THRESHOLD}", &threshold.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_substitution() {
        let sql = figure2_coarse_sql(0.05);
        assert!(sql.contains("< 0.05"));
        assert!(!sql.contains("{THRESHOLD}"));
    }

    #[test]
    fn scenarios_name_registered_models() {
        use crate::registry::full_registry;
        let registry = full_registry();
        for (src, model) in [
            (FIGURE2_COARSE, "DemandModel"),
            (FIGURE2_COARSE, "CapacityModel"),
            (INVENTORY_POLICY, "InventoryModel"),
            (PRICING_WHATIF, "RevenueModel"),
            (SUPPORT_STAFFING, "QueueModel"),
        ] {
            assert!(src.contains(model));
            assert!(registry.get(model).is_ok(), "{model} must be registered");
        }
    }
}
