//! The demand forecast model.
//!
//! Paper §3.1: "The DemandModel is a daily demand forecast expressed as a
//! simple gaussian. A second gaussian is added to the first after the
//! feature release date, representing additional demand resulting from the
//! released feature."
//!
//! We add the linear growth trend the demo narrative implies (guests are
//! invited to vary "a different user growth").

use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_vg::dist::Normal;
use prophet_vg::rng::Rng64;
use prophet_vg::VgFunction;

/// Parameters of the demand forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandConfig {
    /// Mean CPU-core demand in week 0.
    pub base_mean: f64,
    /// Weekly demand noise (standard deviation).
    pub base_std: f64,
    /// Linear growth of mean demand per week (user growth).
    pub growth_per_week: f64,
    /// Mean extra demand once the feature has been released.
    pub feature_mean: f64,
    /// Noise of the feature's extra demand.
    pub feature_std: f64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            base_mean: 8_000.0,
            base_std: 400.0,
            growth_per_week: 70.0,
            feature_mean: 1_200.0,
            feature_std: 300.0,
        }
    }
}

/// `DemandModel(@current, @feature)` → one cell: cores demanded in week
/// `@current` given the feature releases in week `@feature`.
#[derive(Debug, Clone)]
pub struct DemandModel {
    config: DemandConfig,
    base: Normal,
    feature: Normal,
}

impl DemandModel {
    /// Build from a config.
    ///
    /// # Panics
    /// Panics if the config's standard deviations are not positive —
    /// model configs are authored by the analyst, not end-user input.
    pub fn new(config: DemandConfig) -> Self {
        let base = Normal::new(0.0, config.base_std).expect("base_std must be positive");
        let feature = Normal::new(config.feature_mean, config.feature_std)
            .expect("feature_std must be positive");
        DemandModel {
            config,
            base,
            feature,
        }
    }

    /// The config in use.
    pub fn config(&self) -> &DemandConfig {
        &self.config
    }

    /// Sample demand for one week (Rust-level API used by benches).
    ///
    /// Stream discipline: exactly two normal draws per invocation, in fixed
    /// order (base noise, feature noise), *regardless* of whether the
    /// feature has released — the feature draw is discarded before release
    /// so that changing `@feature` leaves the base-demand stream aligned.
    pub fn demand_at<R: Rng64 + ?Sized>(
        &self,
        current: i64,
        feature_week: i64,
        rng: &mut R,
    ) -> f64 {
        let trend = self.config.base_mean + self.config.growth_per_week * current as f64;
        let base_noise = self.base.sample_with(rng);
        let feature_extra = self.feature.sample_with(rng);
        let extra = if current >= feature_week {
            feature_extra
        } else {
            0.0
        };
        (trend + base_noise + extra).max(0.0)
    }

    /// Analytic mean demand at a week (for tests and EXPERIMENTS.md).
    pub fn mean_demand(&self, current: i64, feature_week: i64) -> f64 {
        let trend = self.config.base_mean + self.config.growth_per_week * current as f64;
        if current >= feature_week {
            trend + self.config.feature_mean
        } else {
            trend
        }
    }
}

impl Default for DemandModel {
    fn default() -> Self {
        DemandModel::new(DemandConfig::default())
    }
}

impl VgFunction for DemandModel {
    fn name(&self) -> &str {
        "DemandModel"
    }

    fn arity(&self) -> usize {
        2
    }

    fn output_schema(&self) -> Schema {
        Schema::of(&[("demand", DataType::Float)])
    }

    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let current = params[0].as_i64()?;
        let feature = params[1].as_i64()?;
        let demand = self.demand_at(current, feature, rng);
        let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
        b.push_row(vec![Value::Float(demand)])?;
        Ok(b.finish())
    }

    /// Batched scalar-position invocation: same per-world draws as
    /// [`VgFunction::invoke`] (each world still owns its rng), without
    /// building a one-cell relation per world.
    fn invoke_batch_scalar(&self, calls: &mut [prophet_vg::VgCall<'_>]) -> DataResult<Vec<Value>> {
        calls
            .iter_mut()
            .map(|call| {
                let current = call.params[0].as_i64()?;
                let feature = call.params[1].as_i64()?;
                Ok(Value::Float(self.demand_at(current, feature, call.rng)))
            })
            .collect()
    }

    /// Raw-`f64` batch lane for the typed columnar tier: the scalar output
    /// is always `Value::Float`, so each world's draw lands directly in
    /// the column — same per-world streams as [`VgFunction::invoke`], but
    /// monomorphized over the concrete generator (no `dyn` per draw).
    fn invoke_batch_f64(
        &self,
        calls: &mut [prophet_vg::VgCallF64<'_>],
    ) -> DataResult<Option<Vec<f64>>> {
        calls
            .iter_mut()
            .map(|call| {
                let current = call.params[0].as_i64()?;
                let feature = call.params[1].as_i64()?;
                Ok(self.demand_at(current, feature, call.rng))
            })
            .collect::<DataResult<Vec<f64>>>()
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;

    fn model() -> DemandModel {
        DemandModel::default()
    }

    #[test]
    fn mean_tracks_trend_and_feature_jump() {
        let m = model();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let n = 20_000;
        let sample_mean = |week: i64, feature: i64, rng: &mut Xoshiro256StarStar| {
            (0..n).map(|_| m.demand_at(week, feature, rng)).sum::<f64>() / n as f64
        };
        let w0 = sample_mean(0, 26, &mut rng);
        assert!((w0 - 8_000.0).abs() < 30.0, "week-0 mean {w0}");
        let w20 = sample_mean(20, 26, &mut rng);
        assert!(
            (w20 - (8_000.0 + 70.0 * 20.0)).abs() < 30.0,
            "week-20 mean {w20}"
        );
        // after release the feature gaussian is added
        let w30 = sample_mean(30, 26, &mut rng);
        assert!(
            (w30 - (8_000.0 + 70.0 * 30.0 + 1_200.0)).abs() < 35.0,
            "week-30 mean {w30}"
        );
    }

    #[test]
    fn analytic_mean_matches_formula() {
        let m = model();
        assert_eq!(m.mean_demand(10, 20), 8_000.0 + 700.0);
        assert_eq!(m.mean_demand(20, 20), 8_000.0 + 1_400.0 + 1_200.0);
    }

    #[test]
    fn feature_change_preserves_prerelease_stream_alignment() {
        // Same seed, different feature week: demand before either release
        // must be bit-identical (the CRN discipline).
        let m = model();
        for week in 0..12 {
            let mut a = Xoshiro256StarStar::seed_from_u64(99);
            let mut b = Xoshiro256StarStar::seed_from_u64(99);
            let da = m.demand_at(week, 12, &mut a);
            let db = m.demand_at(week, 36, &mut b);
            assert_eq!(da, db, "week {week} diverged before any release");
        }
    }

    #[test]
    fn post_release_shift_is_exactly_the_feature_draw() {
        // With the same seed, demand with and without release differs by
        // exactly the (fixed) feature gaussian — the Offset mapping
        // fingerprinting detects.
        let m = model();
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        let released = m.demand_at(20, 12, &mut a);
        let unreleased = m.demand_at(20, 36, &mut b);
        let diff = released - unreleased;
        // the diff equals the feature draw for this seed; just check range
        assert!(diff > 0.0, "feature should add demand, diff={diff}");
        assert!((diff - 1_200.0).abs() < 4.0 * 300.0, "diff={diff}");
    }

    #[test]
    fn vg_interface_returns_single_cell() {
        let m = model();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let t = m
            .invoke(&[Value::Int(10), Value::Int(26)], &mut rng)
            .unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.schema().len(), 1);
        assert!(t.cell(0, "demand").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn demand_is_never_negative() {
        let cfg = DemandConfig {
            base_mean: 10.0,
            base_std: 500.0,
            ..DemandConfig::default()
        };
        let m = DemandModel::new(cfg);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for week in 0..52 {
            assert!(m.demand_at(week, 26, &mut rng) >= 0.0);
        }
    }
}
