//! Service-capacity queueing model for the staffing example.
//!
//! A discrete-time M/M/c-style simulation of a support queue: Poisson
//! arrivals per hour, `c` agents each completing work at a Poisson service
//! rate, FIFO backlog. The what-if question — "how many agents keep the
//! backlog acceptable as ticket volume grows?" — is the same
//! risk-vs-cost-of-ownership trade-off as the datacenter demo, in a second
//! domain.

use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_vg::dist::Poisson;
use prophet_vg::rng::Rng64;
use prophet_vg::VgFunction;

/// Parameters of the queue simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueConfig {
    /// Mean tickets arriving per hour at week 0.
    pub base_arrivals_per_hour: f64,
    /// Weekly growth of the arrival rate (percent, e.g. 1.5 = +1.5%/week).
    pub weekly_growth_pct: f64,
    /// Mean tickets one agent resolves per hour.
    pub service_rate: f64,
    /// Hours simulated per evaluation (one work week).
    pub hours: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            base_arrivals_per_hour: 40.0,
            weekly_growth_pct: 1.5,
            service_rate: 6.0,
            hours: 40,
        }
    }
}

/// `QueueModel(@week, @agents)` → one cell: mean backlog (tickets waiting)
/// over the simulated week.
#[derive(Debug, Clone)]
pub struct QueueModel {
    config: QueueConfig,
}

impl QueueModel {
    /// Build from a config.
    pub fn new(config: QueueConfig) -> Self {
        QueueModel { config }
    }

    /// The config in use.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// Arrival rate at a given week (compounded growth).
    pub fn arrival_rate(&self, week: i64) -> f64 {
        self.config.base_arrivals_per_hour
            * (1.0 + self.config.weekly_growth_pct / 100.0).powi(week as i32)
    }

    /// Offered load ρ = λ / (c·μ); above 1.0 the queue is unstable.
    pub fn utilization(&self, week: i64, agents: i64) -> f64 {
        self.arrival_rate(week) / (agents.max(1) as f64 * self.config.service_rate)
    }

    /// Simulate one week; returns the mean backlog across hours.
    ///
    /// Stream discipline: two Poisson draws per hour (arrivals, then
    /// completed work), in fixed order; the agent count scales the service
    /// draw's rate but the *number* of draws is parameter-independent.
    pub fn mean_backlog<R: Rng64 + ?Sized>(&self, week: i64, agents: i64, rng: &mut R) -> f64 {
        let arrivals = Poisson::new(self.arrival_rate(week))
            .expect("arrival rate is positive by construction");
        let service = Poisson::new((agents.max(1) as f64 * self.config.service_rate).max(1e-9))
            .expect("service rate is positive by construction");
        let mut backlog = 0.0f64;
        let mut total = 0.0;
        for _ in 0..self.config.hours {
            backlog += arrivals.sample_with(rng);
            let served = service.sample_with(rng);
            backlog = (backlog - served).max(0.0);
            total += backlog;
        }
        total / self.config.hours as f64
    }
}

impl Default for QueueModel {
    fn default() -> Self {
        QueueModel::new(QueueConfig::default())
    }
}

impl VgFunction for QueueModel {
    fn name(&self) -> &str {
        "QueueModel"
    }

    fn arity(&self) -> usize {
        2
    }

    fn output_schema(&self) -> Schema {
        Schema::of(&[("backlog", DataType::Float)])
    }

    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let week = params[0].as_i64()?;
        let agents = params[1].as_i64()?;
        let backlog = self.mean_backlog(week, agents, rng);
        let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
        b.push_row(vec![Value::Float(backlog)])?;
        Ok(b.finish())
    }

    /// Raw-`f64` batch lane for the typed columnar tier: the scalar output
    /// is always `Value::Float`, so each world's draw lands directly in
    /// the column — same per-world streams as [`VgFunction::invoke`], but
    /// monomorphized over the concrete generator (no `dyn` per draw).
    fn invoke_batch_f64(
        &self,
        calls: &mut [prophet_vg::VgCallF64<'_>],
    ) -> DataResult<Option<Vec<f64>>> {
        calls
            .iter_mut()
            .map(|call| {
                let week = call.params[0].as_i64()?;
                let agents = call.params[1].as_i64()?;
                Ok(self.mean_backlog(week, agents, call.rng))
            })
            .collect::<DataResult<Vec<f64>>>()
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;

    #[test]
    fn utilization_math() {
        let m = QueueModel::default();
        // week 0: 40 arrivals/h, 10 agents × 6/h = 60 capacity → ρ = 2/3
        assert!((m.utilization(0, 10) - 40.0 / 60.0).abs() < 1e-12);
        assert!(
            m.utilization(52, 10) > m.utilization(0, 10),
            "growth raises load"
        );
        // zero agents clamps rather than dividing by zero
        assert!(m.utilization(0, 0).is_finite());
    }

    #[test]
    fn understaffed_queue_explodes_overstaffed_stays_small() {
        let m = QueueModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let n = 200;
        let mean = |agents: i64, rng: &mut Xoshiro256StarStar| {
            (0..n).map(|_| m.mean_backlog(0, agents, rng)).sum::<f64>() / n as f64
        };
        let under = mean(5, &mut rng); // capacity 30 < arrivals 40
        let over = mean(12, &mut rng); // capacity 72 > arrivals 40
        assert!(
            under > 100.0,
            "unstable queue should accumulate, got {under:.1}"
        );
        assert!(over < 15.0, "stable queue should stay small, got {over:.1}");
    }

    #[test]
    fn backlog_grows_with_weeks_at_fixed_staff() {
        let m = QueueModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let n = 200;
        let mean = |week: i64, rng: &mut Xoshiro256StarStar| {
            (0..n).map(|_| m.mean_backlog(week, 8, rng)).sum::<f64>() / n as f64
        };
        let early = mean(0, &mut rng); // ρ = 40/48 ≈ 0.83
        let late = mean(40, &mut rng); // ρ ≈ 1.51 → unstable
        assert!(late > early * 3.0, "early={early:.1} late={late:.1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let m = QueueModel::default();
        let mut a = Xoshiro256StarStar::seed_from_u64(9);
        let mut b = Xoshiro256StarStar::seed_from_u64(9);
        assert_eq!(m.mean_backlog(10, 8, &mut a), m.mean_backlog(10, 8, &mut b));
    }

    #[test]
    fn vg_interface() {
        let m = QueueModel::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(10);
        let t = m
            .invoke(&[Value::Int(0), Value::Int(10)], &mut rng)
            .unwrap();
        assert!(t.cell(0, "backlog").unwrap().as_f64().unwrap() >= 0.0);
    }
}
