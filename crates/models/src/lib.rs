//! # prophet-models
//!
//! The VG-Function models of the paper's demonstration scenario (§3.1,
//! "Risk vs Cost of Ownership") plus additional enterprise models used by
//! the repository's examples.
//!
//! The demo data in the paper was "arbitrarily chosen for intellectual
//! property reasons"; the defaults here are likewise synthetic, tuned so the
//! scenario exhibits the dynamics the paper describes: demand grows through
//! the year (with a jump at the feature release), capacity decays through
//! stochastic hardware failures and jumps when purchased hardware deploys,
//! and the overload probability consequently rises until a purchase lands.
//!
//! ## Stream-alignment discipline
//!
//! Every model documents — and tests — how it consumes its PRNG stream,
//! because Fuzzy Prophet's fingerprinting depends on *common random
//! numbers*: with the same seed, changing a parameter must perturb the
//! output only through the parameter's causal path, not by desynchronizing
//! unrelated draws. Two rules implemented throughout:
//!
//! 1. draws that exist regardless of parameter values (weekly failure
//!    events, weekly demand noise) come from the main stream in a fixed
//!    order;
//! 2. draws whose *timing* depends on parameters (deployment lags) come
//!    from a sub-stream seeded once at invocation start, so they cannot
//!    shift the main stream.

pub mod capacity;
pub mod demand;
pub mod deployment;
pub mod distributions;
pub mod failures;
pub mod inventory;
pub mod queueing;
pub mod registry;
pub mod revenue;
pub mod scenarios;

pub use capacity::{CapacityConfig, CapacityModel};
pub use demand::{DemandConfig, DemandModel};
pub use deployment::DeploymentConfig;
pub use distributions::{LogNormalVg, NormalVg, PoissonVg, TriangularVg};
pub use failures::FailureClass;
pub use inventory::{InventoryConfig, InventoryModel};
pub use queueing::{QueueConfig, QueueModel};
pub use registry::{demo_registry, demo_registry_with, full_registry};
pub use revenue::{RevenueConfig, RevenueModel};

/// Weeks in the simulated year (the paper's scenario spans one year in
/// weekly resolution: parameters range 0–52).
pub const WEEKS_PER_YEAR: i64 = 52;
