//! Pre-wired VG registries.
//!
//! The paper stores table-generating functions in the database so every
//! Prophet instance sees updated definitions. These helpers are the
//! reproduction's "database install": a registry preloaded with the demo's
//! models (and optionally the auxiliary ones), ready to run Figure 2.

use std::sync::Arc;

use prophet_vg::VgRegistry;

use crate::capacity::{CapacityConfig, CapacityModel};
use crate::demand::{DemandConfig, DemandModel};
use crate::distributions::{LogNormalVg, NormalVg, PoissonVg, TriangularVg};
use crate::inventory::InventoryModel;
use crate::queueing::QueueModel;
use crate::revenue::RevenueModel;

/// Registry with the two demo models (`DemandModel`, `CapacityModel`) at
/// default configurations — everything the paper's Figure-2 scenario needs.
pub fn demo_registry() -> VgRegistry {
    demo_registry_with(DemandConfig::default(), CapacityConfig::default())
}

/// Demo registry with explicit model configurations (the demo's §3.3
/// "guests are invited to vary the simulation characteristics, e.g.
/// starting the simulation with a different initial capacity or a different
/// user growth").
pub fn demo_registry_with(demand: DemandConfig, capacity: CapacityConfig) -> VgRegistry {
    let mut r = VgRegistry::new();
    r.register(Arc::new(DemandModel::new(demand)));
    r.register(Arc::new(CapacityModel::new(capacity)));
    r
}

/// Registry with every bundled model: the demo pair plus revenue,
/// inventory and queueing (used by the non-datacenter examples), and the
/// raw parametric distributions (`Normal`, `LogNormal`, `Poisson`,
/// `Triangular`) callable straight from SQL.
pub fn full_registry() -> VgRegistry {
    let mut r = demo_registry();
    r.register(Arc::new(RevenueModel::default()));
    r.register(Arc::new(InventoryModel::default()));
    r.register(Arc::new(QueueModel::default()));
    r.register(Arc::new(NormalVg));
    r.register(Arc::new(LogNormalVg));
    r.register(Arc::new(PoissonVg));
    r.register(Arc::new(TriangularVg));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_data::Value;
    use prophet_vg::rng::Xoshiro256StarStar;

    #[test]
    fn demo_registry_has_the_figure2_functions() {
        let r = demo_registry();
        assert_eq!(
            r.names(),
            vec!["CapacityModel".to_string(), "DemandModel".to_string()]
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let t = r
            .invoke("DemandModel", &[Value::Int(0), Value::Int(26)], &mut rng)
            .unwrap();
        assert_eq!(t.num_rows(), 1);
        let t = r
            .invoke(
                "CapacityModel",
                &[Value::Int(0), Value::Int(8), Value::Int(24)],
                &mut rng,
            )
            .unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn full_registry_adds_the_extras() {
        let r = full_registry();
        assert_eq!(r.len(), 9);
        assert!(r.get("RevenueModel").is_ok());
        assert!(r.get("InventoryModel").is_ok());
        assert!(r.get("QueueModel").is_ok());
        for dist in ["Normal", "LogNormal", "Poisson", "Triangular"] {
            assert!(r.get(dist).is_ok(), "missing distribution VG `{dist}`");
        }
    }

    #[test]
    fn custom_configs_change_behaviour() {
        let generous = demo_registry_with(
            DemandConfig {
                base_mean: 100.0,
                ..DemandConfig::default()
            },
            CapacityConfig {
                initial_cores: 1_000_000.0,
                ..CapacityConfig::default()
            },
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let cap = generous
            .invoke(
                "CapacityModel",
                &[Value::Int(0), Value::Int(52), Value::Int(52)],
                &mut rng,
            )
            .unwrap()
            .cell(0, "capacity")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(cap > 900_000.0);
    }
}
