//! The capacity model: a Markovian event-driven core-count simulation.
//!
//! Paper §3.1: "The Capacity Model is expressed as an aggregate of many
//! different individual models, each expressing different classes of
//! hardware failures, as well as expected time from new hardware purchase
//! to deployment. The model accepts a set of hardware purchase dates,
//! constructs (stochastically) a series of events that modify the number of
//! cores available during a given week, and tracks the sum of all changes
//! over the course of the entire year."
//!
//! `CapacityModel(@current, @purchase1, @purchase2)` simulates weeks
//! `0..=@current` — each week applying failures (from the
//! [`FailureClass`] fleet) and any purchase deployments — and returns the
//! core count at week `@current`. The chain structure (week `w` depends on
//! week `w−1`) is exactly the Markovian shape §2 discusses, and
//! [`CapacityModel::trajectory`] exposes the whole chain for the
//! Markov-region experiments.

use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_vg::rng::{Pcg32, Rng64};
use prophet_vg::VgFunction;

use crate::deployment::{DeploymentConfig, DeploymentSampler};
use crate::failures::FailureClass;

/// Parameters of the capacity simulation.
#[derive(Debug, Clone)]
pub struct CapacityConfig {
    /// Cores online at week 0.
    pub initial_cores: f64,
    /// Cores added by each purchase when it deploys.
    pub cores_per_purchase: f64,
    /// Failure classes aggregated into the weekly loss.
    pub failure_classes: Vec<FailureClass>,
    /// Purchase-to-deployment lag model.
    pub deployment: DeploymentConfig,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            initial_cores: 10_000.0,
            cores_per_purchase: 4_000.0,
            failure_classes: FailureClass::default_fleet(),
            deployment: DeploymentConfig::default(),
        }
    }
}

/// `CapacityModel(@current, @purchase1, @purchase2)` → one cell: cores
/// available in week `@current`.
#[derive(Debug, Clone)]
pub struct CapacityModel {
    config: CapacityConfig,
    lag_sampler: DeploymentSampler,
}

impl CapacityModel {
    /// Build from a config.
    pub fn new(config: CapacityConfig) -> Self {
        let lag_sampler = config.deployment.sampler();
        CapacityModel {
            config,
            lag_sampler,
        }
    }

    /// The config in use.
    pub fn config(&self) -> &CapacityConfig {
        &self.config
    }

    /// Simulate the full chain `0..=last_week` and return the capacity at
    /// the *end* of every week.
    ///
    /// Stream discipline (critical for fingerprinting, see crate docs):
    ///
    /// 1. exactly one `u64` is taken from the main stream up front to seed
    ///    the deployment-lag sub-stream — so purchase parameters can never
    ///    desynchronize failure draws;
    /// 2. failure draws then proceed week by week in class order from the
    ///    main stream, identically for *any* purchase parameters.
    ///
    /// Consequence: under a fixed seed, two parameterizations' capacity
    /// series differ only by the deployed-cores step functions — which is
    /// why fingerprint matching finds exact Offset/Identity mappings across
    /// purchase-date changes (experiment E5).
    pub fn trajectory<R: Rng64 + ?Sized>(
        &self,
        last_week: i64,
        purchase1: i64,
        purchase2: i64,
        rng: &mut R,
    ) -> Vec<f64> {
        let lag_seed = rng.next_u64();
        let mut lag_rng = Pcg32::new(lag_seed, 0x5851_F42D_4C95_7F2D);
        let deploy1 = purchase1 + self.lag_sampler.sample_lag(&mut lag_rng);
        let deploy2 = purchase2 + self.lag_sampler.sample_lag(&mut lag_rng);

        let mut capacity = self.config.initial_cores;
        let mut out = Vec::with_capacity(last_week.max(0) as usize + 1);
        for week in 0..=last_week.max(0) {
            if week == deploy1 {
                capacity += self.config.cores_per_purchase;
            }
            if week == deploy2 {
                capacity += self.config.cores_per_purchase;
            }
            for class in &self.config.failure_classes {
                capacity -= class.sample_weekly_loss(rng);
            }
            capacity = capacity.max(0.0);
            out.push(capacity);
        }
        out
    }

    /// Capacity at a single week (the VG-visible scalar).
    ///
    /// Same chain walk and draw order as [`CapacityModel::trajectory`]
    /// without materializing the intermediate weeks — the per-world hot
    /// path of every execution tier.
    pub fn capacity_at<R: Rng64 + ?Sized>(
        &self,
        current: i64,
        purchase1: i64,
        purchase2: i64,
        rng: &mut R,
    ) -> f64 {
        let lag_seed = rng.next_u64();
        let mut lag_rng = Pcg32::new(lag_seed, 0x5851_F42D_4C95_7F2D);
        let deploy1 = purchase1 + self.lag_sampler.sample_lag(&mut lag_rng);
        let deploy2 = purchase2 + self.lag_sampler.sample_lag(&mut lag_rng);

        let mut capacity = self.config.initial_cores;
        for week in 0..=current.max(0) {
            if week == deploy1 {
                capacity += self.config.cores_per_purchase;
            }
            if week == deploy2 {
                capacity += self.config.cores_per_purchase;
            }
            for class in &self.config.failure_classes {
                capacity -= class.sample_weekly_loss(rng);
            }
            capacity = capacity.max(0.0);
        }
        capacity
    }

    /// Expected weekly failure loss across all classes.
    pub fn mean_weekly_loss(&self) -> f64 {
        self.config
            .failure_classes
            .iter()
            .map(FailureClass::mean_weekly_loss)
            .sum()
    }
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel::new(CapacityConfig::default())
    }
}

impl VgFunction for CapacityModel {
    fn name(&self) -> &str {
        "CapacityModel"
    }

    fn arity(&self) -> usize {
        3
    }

    fn output_schema(&self) -> Schema {
        Schema::of(&[("capacity", DataType::Float)])
    }

    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let current = params[0].as_i64()?;
        let p1 = params[1].as_i64()?;
        let p2 = params[2].as_i64()?;
        let capacity = self.capacity_at(current, p1, p2, rng);
        let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
        b.push_row(vec![Value::Float(capacity)])?;
        Ok(b.finish())
    }

    /// Batched scalar-position invocation: same per-world draws as
    /// [`VgFunction::invoke`] (each world still owns its rng), without
    /// building a one-cell relation per world.
    fn invoke_batch_scalar(&self, calls: &mut [prophet_vg::VgCall<'_>]) -> DataResult<Vec<Value>> {
        calls
            .iter_mut()
            .map(|call| {
                let current = call.params[0].as_i64()?;
                let p1 = call.params[1].as_i64()?;
                let p2 = call.params[2].as_i64()?;
                Ok(Value::Float(self.capacity_at(current, p1, p2, call.rng)))
            })
            .collect()
    }

    /// Raw-`f64` batch lane for the typed columnar tier: the scalar output
    /// is always `Value::Float`, so each world's draw lands directly in
    /// the column — same per-world streams as [`VgFunction::invoke`], but
    /// monomorphized over the concrete generator (no `dyn` per draw).
    ///
    /// When every call shares one parameter row (a world block at a single
    /// sweep point — the common case), the whole block walks the chain
    /// *week-outer, world-inner*: each world still consumes draws from its
    /// own generator in exactly the scalar order, so every sample is
    /// bit-identical, but adjacent inner iterations are independent worlds
    /// and their transcendental-heavy draw chains overlap in the pipeline
    /// instead of serializing one world at a time.
    fn invoke_batch_f64(
        &self,
        calls: &mut [prophet_vg::VgCallF64<'_>],
    ) -> DataResult<Option<Vec<f64>>> {
        let uniform = match calls.split_first_mut() {
            None => return Ok(Some(Vec::new())),
            Some((first, rest)) => rest.iter().all(|c| c.params == first.params),
        };
        if !uniform {
            return calls
                .iter_mut()
                .map(|call| {
                    let current = call.params[0].as_i64()?;
                    let p1 = call.params[1].as_i64()?;
                    let p2 = call.params[2].as_i64()?;
                    Ok(self.capacity_at(current, p1, p2, call.rng))
                })
                .collect::<DataResult<Vec<f64>>>()
                .map(Some);
        }

        let current = calls[0].params[0].as_i64()?;
        let p1 = calls[0].params[1].as_i64()?;
        let p2 = calls[0].params[2].as_i64()?;
        // Deployment lags first: one u64 from each world's main stream
        // seeds that world's lag sub-stream, as in `capacity_at`.
        let deploys: Vec<(i64, i64)> = calls
            .iter_mut()
            .map(|c| {
                let mut lag_rng = Pcg32::new(c.rng.next_u64(), 0x5851_F42D_4C95_7F2D);
                (
                    p1 + self.lag_sampler.sample_lag(&mut lag_rng),
                    p2 + self.lag_sampler.sample_lag(&mut lag_rng),
                )
            })
            .collect();
        let mut caps = vec![self.config.initial_cores; calls.len()];
        let mut counts = vec![0u64; calls.len()];
        for week in 0..=current.max(0) {
            for (cap, &(deploy1, deploy2)) in caps.iter_mut().zip(&deploys) {
                if week == deploy1 {
                    *cap += self.config.cores_per_purchase;
                }
                if week == deploy2 {
                    *cap += self.config.cores_per_purchase;
                }
            }
            // Class-level passes: every world draws its event count, then
            // every world draws its losses. Per world the stream still sees
            // count-then-losses in class order (the scalar discipline), but
            // adjacent loss draws now come from *independent* worlds, so
            // their lognormal exp/ln chains overlap instead of serializing.
            for class in &self.config.failure_classes {
                for (count, call) in counts.iter_mut().zip(calls.iter_mut()) {
                    *count = class.sample_event_count(call.rng);
                }
                for ((cap, call), &count) in caps.iter_mut().zip(calls.iter_mut()).zip(&counts) {
                    *cap -= class.sample_loss_sum(count, call.rng);
                }
            }
            for cap in caps.iter_mut() {
                *cap = cap.max(0.0);
            }
        }
        Ok(Some(caps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;

    fn model() -> CapacityModel {
        CapacityModel::default()
    }

    #[test]
    fn capacity_declines_without_deployed_purchases() {
        let m = model();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let n = 2_000;
        // purchases far in the future → pure decay
        let mean_w40: f64 = (0..n)
            .map(|_| m.capacity_at(40, 52, 52, &mut rng))
            .sum::<f64>()
            / n as f64;
        let expected = 10_000.0 - 41.0 * m.mean_weekly_loss();
        let rel = (mean_w40 - expected).abs() / expected;
        assert!(rel < 0.03, "mean={mean_w40:.0} expected={expected:.0}");
    }

    #[test]
    fn purchases_add_cores_after_deployment() {
        let m = model();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let n = 2_000;
        let mean = |p1: i64, rng: &mut Xoshiro256StarStar| {
            (0..n).map(|_| m.capacity_at(30, p1, 52, rng)).sum::<f64>() / n as f64
        };
        let early = mean(10, &mut rng);
        let late = mean(52, &mut rng);
        assert!(
            (early - late - 4_000.0).abs() < 150.0,
            "early={early:.0} late={late:.0} (diff should be ≈ one purchase)"
        );
    }

    #[test]
    fn purchase_params_do_not_perturb_failure_stream() {
        // Same seed, different purchase weeks: trajectories must differ by
        // *exactly* the deployed-cores step function — i.e. after
        // subtracting the purchases, they are identical (up to the
        // max(0.0) floor, which defaults never hit).
        let m = model();
        let mut a = Xoshiro256StarStar::seed_from_u64(77);
        let mut b = Xoshiro256StarStar::seed_from_u64(77);
        let ta = m.trajectory(52, 8, 24, &mut a);
        let tb = m.trajectory(52, 16, 40, &mut b);
        // Deployment lags are also identical (same lag sub-stream seed), so
        // compute them to know where the steps are. Reconstruct by aligning
        // differences: ta - tb must be a step function with values in
        // {-8000, -4000, 0, 4000, 8000}.
        let mut steps: Vec<f64> = ta.iter().zip(&tb).map(|(x, y)| x - y).collect();
        steps.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert!(
            steps.len() <= 5,
            "difference should be a coarse step function, got {} levels: {steps:?}",
            steps.len()
        );
        for s in &steps {
            let quantized = s / 4_000.0;
            assert!(
                (quantized - quantized.round()).abs() < 1e-9,
                "step {s} is not a multiple of the purchase size"
            );
        }
    }

    #[test]
    fn trajectory_is_markovian_decreasing_between_events() {
        let m = model();
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let t = m.trajectory(52, 12, 30, &mut rng);
        assert_eq!(t.len(), 53);
        // Between deployments, capacity must be non-increasing.
        let mut increases = 0;
        for w in t.windows(2) {
            if w[1] > w[0] {
                increases += 1;
            }
        }
        assert!(
            increases <= 2,
            "at most the two purchase deployments add cores, saw {increases}"
        );
    }

    #[test]
    fn capacity_is_never_negative() {
        let cfg = CapacityConfig {
            initial_cores: 50.0,
            ..CapacityConfig::default()
        };
        let m = CapacityModel::new(cfg);
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        for _ in 0..50 {
            assert!(m.capacity_at(52, 52, 52, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn vg_interface_round_trip() {
        let m = model();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let t = m
            .invoke(&[Value::Int(10), Value::Int(4), Value::Int(8)], &mut rng)
            .unwrap();
        assert_eq!((t.num_rows(), t.schema().len()), (1, 1));
        let cap = t.cell(0, "capacity").unwrap().as_f64().unwrap();
        assert!(cap > 5_000.0, "cap={cap}");
    }

    #[test]
    fn week_zero_and_negative_weeks() {
        let m = model();
        let mut rng = Xoshiro256StarStar::seed_from_u64(10);
        let t = m.trajectory(0, 10, 20, &mut rng);
        assert_eq!(t.len(), 1);
        // negative current clamps to week 0
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(10);
        let t2 = m.trajectory(-3, 10, 20, &mut rng2);
        assert_eq!(t2.len(), 1);
        assert_eq!(t, t2);
    }

    #[test]
    fn capacity_at_matches_trajectory_last_bit_exactly() {
        // The allocation-free scalar walk must consume the identical draw
        // sequence as the materialized trajectory.
        let m = model();
        for seed in 0..20 {
            let mut a = Xoshiro256StarStar::seed_from_u64(seed);
            let mut b = Xoshiro256StarStar::seed_from_u64(seed);
            let t = m.trajectory(30, 8, 20, &mut a);
            let c = m.capacity_at(30, 8, 20, &mut b);
            assert_eq!(t.last().unwrap().to_bits(), c.to_bits());
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let m = model();
        let mut a = Xoshiro256StarStar::seed_from_u64(123);
        let mut b = Xoshiro256StarStar::seed_from_u64(123);
        assert_eq!(
            m.trajectory(52, 8, 20, &mut a),
            m.trajectory(52, 8, 20, &mut b)
        );
    }
}
