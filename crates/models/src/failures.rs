//! Hardware failure classes.
//!
//! Paper §3.1: the capacity model "is expressed as an aggregate of many
//! different individual models, each expressing different classes of
//! hardware failures". Each [`FailureClass`] is one such individual model:
//! a Poisson-distributed weekly event count and a per-event core loss.

use prophet_vg::dist::{Distribution, LogNormal, Poisson};
use prophet_vg::rng::Rng64;

/// One class of hardware failure.
#[derive(Debug, Clone)]
pub struct FailureClass {
    name: String,
    events_per_week: Poisson,
    cores_per_event: LogNormal,
    mean_cores_per_event: f64,
    weekly_rate: f64,
}

impl FailureClass {
    /// Define a class by its weekly event rate and the median / spread of
    /// the per-event core loss (lognormal, so losses are positive and
    /// right-skewed — most incidents are small, some are not).
    ///
    /// # Panics
    /// Panics on non-positive rate or spread; classes are analyst-authored
    /// constants.
    pub fn new(
        name: impl Into<String>,
        events_per_week: f64,
        median_cores: f64,
        sigma: f64,
    ) -> Self {
        let events = Poisson::new(events_per_week).expect("event rate must be positive");
        let loss = LogNormal::new(median_cores.ln(), sigma).expect("sigma must be positive");
        FailureClass {
            name: name.into(),
            mean_cores_per_event: loss.mean(),
            events_per_week: events,
            cores_per_event: loss,
            weekly_rate: events_per_week,
        }
    }

    /// Class name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected cores lost per week (rate × mean loss).
    pub fn mean_weekly_loss(&self) -> f64 {
        self.weekly_rate * self.mean_cores_per_event
    }

    /// Sample this class's total core loss for one week.
    ///
    /// Stream discipline: one Poisson draw, then exactly `count` loss
    /// draws. The count comes first so that identical seeds give identical
    /// event sequences across parameterizations (capacity parameters never
    /// influence failure draws).
    pub fn sample_weekly_loss<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        let count = self.sample_event_count(rng);
        self.sample_loss_sum(count, rng)
    }

    /// The count half of [`FailureClass::sample_weekly_loss`]: one Poisson
    /// draw. Split out so a world-block walker can run the count pass for
    /// every world, then the loss pass — each world's own stream still
    /// sees count-then-losses in the scalar order.
    pub fn sample_event_count<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        self.events_per_week.sample_with(rng) as u64
    }

    /// The loss half of [`FailureClass::sample_weekly_loss`]: exactly
    /// `count` per-event draws, summed in draw order.
    pub fn sample_loss_sum<R: Rng64 + ?Sized>(&self, count: u64, rng: &mut R) -> f64 {
        (0..count)
            .map(|_| self.cores_per_event.sample_with(rng))
            .sum()
    }

    /// The default fleet: four classes spanning frequent/small to
    /// rare/large incidents. Total expected loss ≈ 57 cores/week, tuned so
    /// un-replenished capacity decays visibly over a 52-week year.
    pub fn default_fleet() -> Vec<FailureClass> {
        vec![
            // disks die constantly but cost few cores each
            FailureClass::new("disk", 2.0, 7.0, 0.5),
            // a PSU takes a chassis with it
            FailureClass::new("psu", 0.5, 26.0, 0.4),
            // a switch failure takes a rack slice offline
            FailureClass::new("network", 0.2, 90.0, 0.3),
            // rare systemic incidents (bad firmware rollout, cooling)
            FailureClass::new("systemic", 0.02, 550.0, 0.25),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::Xoshiro256StarStar;

    #[test]
    fn mean_weekly_loss_matches_simulation() {
        for class in FailureClass::default_fleet() {
            let mut rng = Xoshiro256StarStar::seed_from_u64(11);
            let n = 50_000;
            let sim: f64 = (0..n)
                .map(|_| class.sample_weekly_loss(&mut rng))
                .sum::<f64>()
                / n as f64;
            let analytic = class.mean_weekly_loss();
            let rel = (sim - analytic).abs() / analytic;
            assert!(
                rel < 0.08,
                "{}: sim={sim:.2} analytic={analytic:.2}",
                class.name()
            );
        }
    }

    #[test]
    fn fleet_total_is_moderate() {
        let total: f64 = FailureClass::default_fleet()
            .iter()
            .map(|c| c.mean_weekly_loss())
            .sum();
        // Tuned range: enough to matter over a year, not enough to dominate.
        assert!((40.0..80.0).contains(&total), "total weekly loss {total}");
    }

    #[test]
    fn losses_are_nonnegative_and_deterministic() {
        let class = FailureClass::new("test", 1.5, 10.0, 0.5);
        let mut a = Xoshiro256StarStar::seed_from_u64(3);
        let mut b = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..100 {
            let la = class.sample_weekly_loss(&mut a);
            let lb = class.sample_weekly_loss(&mut b);
            assert_eq!(la, lb);
            assert!(la >= 0.0);
        }
    }

    #[test]
    fn zero_event_weeks_cost_nothing() {
        // With a tiny rate, most weeks must be zero-loss.
        let class = FailureClass::new("rare", 0.01, 100.0, 0.3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let zeros = (0..1_000)
            .filter(|_| class.sample_weekly_loss(&mut rng) == 0.0)
            .count();
        assert!(zeros > 950, "zeros={zeros}");
    }
}
