//! Flight-recorder tracing — re-exported from [`prophet_mc::trace`].
//!
//! The recorder lives in `prophet-mc` so the shared basis store and the
//! rank-ordered lock wrappers (both below this crate in the dependency
//! order) can record into it; everything user-facing — configuring it via
//! [`SchedulerConfig::trace`](crate::scheduler::SchedulerConfig::trace),
//! reading a job's events back via
//! [`JobHandle::trace`](crate::job::JobHandle::trace), snapshotting
//! service telemetry via
//! [`Prophet::telemetry`](crate::service::Prophet::telemetry) — goes
//! through this crate. See `docs/OBSERVABILITY.md` for the event
//! taxonomy, the clock/determinism argument, and the histogram bucket
//! table.

pub use prophet_mc::trace::{
    LatencyHistogram, TraceConfig, TraceEvent, TraceEventKind, TraceTelemetry, Tracer, NO_CHUNK,
    NO_JOB, NO_WORKER,
};
