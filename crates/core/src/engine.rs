//! The Figure-1 evaluation cycle with fingerprint-accelerated reuse.
//!
//! [`Engine::evaluate`] and [`Engine::evaluate_batch`] are the entry points
//! both modes use to obtain the outcome distribution of the scenario at
//! parameter points. The paper's cycle:
//!
//! 1. exact-key cache lookup in the Storage Manager (a prior run of the
//!    same point),
//! 2. fingerprint probing: evaluate the scenario under the *fixed* seed
//!    sequence (cheap — fingerprint length ≪ worlds per point) and search
//!    the basis store for a correlated prior point,
//! 3. on a hit: re-map the stored stochastic samples through the detected
//!    [`Mapping`] and *recompute the derived columns* (e.g. Figure 2's
//!    `CASE WHEN capacity < demand…`) per world — derived logic is exact,
//!    so only the stochastic inputs ever need mapping,
//! 4. on a miss: full Monte Carlo simulation, then insert into the basis
//!    store so later points can map from this one.
//!
//! The cycle itself is executed by the batched pipeline in
//! [`executor`](crate::executor) — `evaluate` is a batch of one. This
//! module keeps the engine's state (script, seeds, configuration, work
//! counters) and the per-point primitives the pipeline stages compose:
//! `Engine::probe_fingerprints`, `Engine::remap_samples` and
//! `Engine::simulate_full` (crate-visible).
//!
//! The basis store is a [`SharedBasisStore`]: engines built through the
//! [`Prophet`](crate::service::Prophet) service share one store per
//! scenario, so results simulated by one session re-map in every other,
//! and its in-flight claims guarantee concurrent sessions never duplicate
//! one point's simulation.

use std::collections::HashMap;
use std::sync::Arc;

use prophet_data::Value;
use prophet_fingerprint::{CorrelationDetector, Fingerprint, FingerprintConfig, Mapping};
use prophet_mc::{
    simulate_point, simulate_point_block, simulate_point_columnar, ParamPoint, SampleSet,
    SharedBasisStore,
};
use prophet_sql::ast::SelectItem;
use prophet_sql::columnar::{evaluate_select_columns, to_f64_samples, ColumnarStats};
use prophet_sql::error::SqlError;
use prophet_sql::executor::{evaluate_select_with, EvalContext, WorldRng};
use prophet_sql::vector::{column_to_f64, evaluate_select_block};
use prophet_sql::Script;
use prophet_vg::rng::{Rng64, SeedSequence};
use prophet_vg::{SeedManager, VgRegistry};

use crate::error::{ProphetError, ProphetResult};
use crate::metrics::{EngineMetrics, Stopwatch};
use crate::scenario::Scenario;
use crate::sync::{OrderedMutex, ENGINE_METRICS};

/// Which `prophet-sql` execution tier evaluates the scenario SELECT.
///
/// All three tiers are bit-identical per world (the differential suite in
/// `tests/vector_equivalence.rs` enforces it across every bundled
/// scenario); they differ only in how the work is shaped. See
/// `docs/VECTORIZATION.md` for the full three-tier story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// One AST walk per world (`evaluate_select_with`). The reference
    /// semantics; also what per-world re-mapping uses.
    Scalar,
    /// One AST walk per world-block over boxed `Value` columns
    /// (`evaluate_select_block`), VG functions invoked through the
    /// catalog's batch path.
    Boxed,
    /// One AST walk per world-block over typed `f64`/`i64`/`bool` column
    /// buffers (`evaluate_select_columns`): straight-line kernels over
    /// typed slices, with per-node fallback to boxed values for
    /// mixed/string data. Kernel/fallback counts surface as
    /// `EngineMetrics::columnar_kernels` / `column_fallbacks`.
    #[default]
    Columnar,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Monte Carlo worlds per fully simulated parameter point.
    pub worlds_per_point: usize,
    /// Fingerprint length (probe count).
    pub fingerprint: FingerprintConfig,
    /// Correlation acceptance thresholds.
    pub detector: CorrelationDetector,
    /// Master switch for fingerprint reuse (benches compare on/off).
    pub fingerprints_enabled: bool,
    /// Execution tier for fingerprint probes and miss-path Monte Carlo
    /// estimation: per-world scalar walks, block walks over boxed
    /// `Value` columns, or block walks over typed column buffers.
    ///
    /// Outputs are bit-identical across tiers (the differential suite in
    /// `tests/vector_equivalence.rs` enforces it), so the fastest —
    /// [`ExecTier::Columnar`] — is the default; the others exist for the
    /// tier benchmark splits and for bisecting equivalence regressions.
    pub tier: ExecTier,
    /// Prune the correlation match scan through the basis store's
    /// fingerprint summary index: candidates whose summary bound proves
    /// they cannot beat the best match found so far skip the
    /// entry-by-entry comparison (branch and bound).
    ///
    /// The bound is sound, so outcomes, samples and chosen mapping sources
    /// are bit-identical with the index off (the differential suite in
    /// `tests/match_index.rs` enforces it); disabling it exists for the
    /// indexed-vs-exhaustive benchmark split and for bisecting match
    /// regressions. Pruning effectiveness surfaces as
    /// `EngineMetrics::candidates_pruned` vs
    /// `EngineMetrics::candidates_scanned`.
    pub match_index: bool,
    /// Use common random numbers across parameter points (recommended).
    ///
    /// Fingerprint *probes* always use the canonical fixed seeds, so
    /// correlation detection works either way; what CRN adds is per-world
    /// comparability of the *estimation* samples, making mapped sample sets
    /// bitwise-reproducible against direct simulation instead of merely
    /// statistically equivalent.
    pub common_random_numbers: bool,
    /// Root seed for all estimation randomness.
    pub root_seed: u64,
    /// Maximum basis-store entries before FIFO eviction.
    pub basis_capacity: usize,
    /// Shards the basis store's entry table splits across
    /// (`1..=`[`prophet_mc::MAX_SHARDS`]). More shards means concurrent
    /// jobs touching disjoint points stop contending on one lock; answers,
    /// eviction order, and snapshot bytes are identical at every shard
    /// count. Only consulted by the store-creating constructors.
    pub store_shards: usize,
    /// Worker threads for world-level parallelism within a point
    /// (deterministic: world→sample assignment is thread-independent).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            worlds_per_point: 400,
            fingerprint: FingerprintConfig::default(),
            detector: CorrelationDetector::default(),
            fingerprints_enabled: true,
            tier: ExecTier::default(),
            match_index: true,
            common_random_numbers: true,
            root_seed: 0xF1_2E_9A_77,
            basis_capacity: 8_192,
            store_shards: prophet_mc::store::DEFAULT_SHARDS,
            threads: 1,
        }
    }
}

/// How a point's results were obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalOutcome {
    /// Exact same point served from the store.
    Cached,
    /// Re-mapped from a correlated basis point.
    Mapped {
        /// The source point the mapping came from.
        from: ParamPoint,
        /// Whether every column's mapping was exact (identity/offset).
        exact: bool,
    },
    /// Fully simulated.
    Simulated,
}

/// The evaluation engine shared by online and offline modes.
pub struct Engine {
    script: Script,
    registry: Arc<VgRegistry>,
    seeds: SeedManager,
    config: EngineConfig,
    /// Output columns whose expressions invoke a registered VG function.
    stochastic_cols: Vec<String>,
    /// The canonical probe seed block (`config.fingerprint.length` seeds),
    /// derived once — `probe_fingerprints` runs per parameter point, and
    /// the sequence depends only on the config.
    probe_seeds: SeedSequence,
    basis: SharedBasisStore,
    metrics: OrderedMutex<EngineMetrics>,
}

impl Engine {
    /// Build an engine for a scenario against a VG catalog, with a private
    /// basis store.
    pub fn new(
        scenario: &Scenario,
        registry: VgRegistry,
        config: EngineConfig,
    ) -> ProphetResult<Self> {
        Engine::with_shared_registry(scenario, Arc::new(registry), config)
    }

    /// Build with a shared catalog (several engines over one registry, as
    /// the fingerprint on/off comparison benches need).
    pub fn with_shared_registry(
        scenario: &Scenario,
        registry: Arc<VgRegistry>,
        config: EngineConfig,
    ) -> ProphetResult<Self> {
        if config.basis_capacity == 0 {
            return Err(ProphetError::InvalidConfig(
                "basis_capacity must be positive".into(),
            ));
        }
        if !(1..=prophet_mc::MAX_SHARDS).contains(&config.store_shards) {
            return Err(ProphetError::InvalidConfig(format!(
                "store_shards must be in 1..={} (got {})",
                prophet_mc::MAX_SHARDS,
                config.store_shards
            )));
        }
        let basis = SharedBasisStore::with_shards(config.basis_capacity, config.store_shards);
        Engine::with_basis_store(scenario, registry, config, basis)
    }

    /// Build against an existing (possibly shared) basis store — the
    /// constructor the [`Prophet`](crate::service::Prophet) service uses so
    /// that every session of one scenario reuses each other's simulations.
    ///
    /// Capacity is a property of the *store*: `config.basis_capacity` is
    /// only consulted by the store-creating constructors ([`Engine::new`],
    /// [`Engine::with_shared_registry`]) and is ignored here in favour of
    /// whatever the supplied store was built with.
    pub fn with_basis_store(
        scenario: &Scenario,
        registry: Arc<VgRegistry>,
        config: EngineConfig,
        basis: SharedBasisStore,
    ) -> ProphetResult<Self> {
        if config.worlds_per_point == 0 {
            return Err(ProphetError::InvalidConfig(
                "worlds_per_point must be positive".into(),
            ));
        }
        let script = scenario.script().clone();
        let stochastic_cols = script
            .select
            .items
            .iter()
            .filter(|item| {
                item.expr
                    .referenced_calls()
                    .iter()
                    .any(|(name, _)| registry.get(name).is_ok())
            })
            .map(|item| item.alias.clone())
            .collect();
        Ok(Engine {
            script,
            registry,
            seeds: SeedManager::new(config.root_seed),
            probe_seeds: SeedSequence::fingerprint_default(config.fingerprint.length),
            config,
            stochastic_cols,
            basis,
            metrics: OrderedMutex::new(ENGINE_METRICS, EngineMetrics::default()),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The scenario script.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// The VG catalog.
    pub fn registry(&self) -> &VgRegistry {
        &self.registry
    }

    /// Output columns classified as stochastic (contain VG calls).
    pub fn stochastic_columns(&self) -> &[String] {
        &self.stochastic_cols
    }

    /// All output column names, in SELECT order.
    pub fn output_columns(&self) -> Vec<String> {
        self.script
            .select
            .items
            .iter()
            .map(|i| i.alias.clone())
            .collect()
    }

    /// Snapshot of the work counters.
    pub fn metrics(&self) -> EngineMetrics {
        *self.metrics.lock()
    }

    /// Reset work counters (between bench configurations).
    pub fn reset_metrics(&self) {
        *self.metrics.lock() = EngineMetrics::default();
    }

    /// The (possibly shared) basis store backing this engine.
    pub fn basis_store(&self) -> &SharedBasisStore {
        &self.basis
    }

    /// Number of basis entries currently stored.
    pub fn basis_len(&self) -> usize {
        self.basis.len()
    }

    /// Drop all basis entries (forces cold start). Affects every engine
    /// sharing the store.
    pub fn clear_basis(&self) {
        self.basis.clear();
    }

    /// Evaluate the scenario at one parameter point, returning the sample
    /// set and how it was obtained. This is a batch of one through
    /// [`Engine::evaluate_batch`].
    pub fn evaluate(&self, point: &ParamPoint) -> ProphetResult<(SampleSet, EvalOutcome)> {
        let mut results = self.evaluate_batch(std::slice::from_ref(point))?;
        Ok(results
            .pop()
            .expect("invariant: a batch of one yields exactly one result"))
    }

    /// Monte Carlo expectation of one column at a point (convenience).
    pub fn expect(&self, point: &ParamPoint, column: &str) -> ProphetResult<f64> {
        let (samples, _) = self.evaluate(point)?;
        samples
            .expect(column)
            .ok_or_else(|| ProphetError::unknown_column(column, self.output_columns()))
    }

    // ---------------------------------------------- pipeline primitives
    // (crate-visible: composed into batches by `crate::executor`)

    pub(crate) fn bump(&self, update: impl FnOnce(&mut EngineMetrics)) {
        update(&mut self.metrics.lock());
    }

    /// Evaluate the scenario once per canonical fingerprint seed, recording
    /// each stochastic column's output. Self-times into
    /// `fingerprint_time`, so the counter sums real probe work across
    /// parallel workers.
    ///
    /// With a block tier ([`ExecTier::Boxed`] or the default
    /// [`ExecTier::Columnar`]) the whole seed block is one walk of the
    /// block executor — `vector_walks` counts it, while
    /// `probe_evaluations` keeps counting the logical per-seed evaluations
    /// so probe accounting stays comparable with the scalar tier. The
    /// columnar tier additionally accounts its typed-kernel vs boxed
    /// fallback node counts.
    pub(crate) fn probe_fingerprints(
        &self,
        point: &ParamPoint,
    ) -> ProphetResult<HashMap<String, Fingerprint>> {
        let start = Stopwatch::start();
        let seeds = &self.probe_seeds;
        let params = point.to_value_map();

        if self.config.tier != ExecTier::Scalar {
            let (named_samples, stats) = match self.config.tier {
                ExecTier::Columnar => {
                    let (columns, stats) = evaluate_select_columns(
                        &self.script.select,
                        &self.registry,
                        &params,
                        self.seeds,
                        seeds.seeds(),
                    )?;
                    let mut named = Vec::with_capacity(self.stochastic_cols.len());
                    for (name, column) in columns {
                        if self.stochastic_cols.contains(&name) {
                            named.push((name, to_f64_samples(&column)?));
                        }
                    }
                    (named, stats)
                }
                _ => {
                    let columns = evaluate_select_block(
                        &self.script.select,
                        &self.registry,
                        &params,
                        self.seeds,
                        seeds.seeds(),
                    )?;
                    let mut named = Vec::with_capacity(self.stochastic_cols.len());
                    for (name, column) in columns {
                        if self.stochastic_cols.contains(&name) {
                            named.push((name, column_to_f64(&column)?));
                        }
                    }
                    (named, ColumnarStats::default())
                }
            };
            let mut out = HashMap::with_capacity(named_samples.len());
            for (name, values) in named_samples {
                out.insert(
                    name,
                    Fingerprint::compute_block_with_seeds(seeds, |_| values),
                );
            }
            self.bump(|m| {
                m.probe_evaluations += seeds.len() as u64;
                m.vector_walks += 1;
                m.columnar_kernels += stats.kernels;
                m.column_fallbacks += stats.fallbacks;
                m.probe_eval_nanos += start.elapsed_nanos();
                m.fingerprint_time += start.elapsed();
                m.probe_latency.record(start.elapsed_nanos());
            });
            return Ok(out);
        }

        let mut per_col: HashMap<String, Vec<f64>> = self
            .stochastic_cols
            .iter()
            .map(|c| (c.clone(), Vec::with_capacity(seeds.len())))
            .collect();
        for &world in seeds.seeds() {
            let row = evaluate_select_with(
                &self.script.select,
                &self.registry,
                &params,
                WorldRng::per_call(self.seeds, world),
            )?;
            for (name, value) in row {
                if let Some(col) = per_col.get_mut(&name) {
                    let x = match value {
                        Value::Null => f64::NAN,
                        v => v.as_f64().map_err(SqlError::from)?,
                    };
                    col.push(x);
                }
            }
        }
        self.bump(|m| {
            m.probe_evaluations += seeds.len() as u64;
            m.probe_eval_nanos += start.elapsed_nanos();
            m.fingerprint_time += start.elapsed();
            m.probe_latency.record(start.elapsed_nanos());
        });
        Ok(per_col
            .into_iter()
            .map(|(name, values)| (name, Fingerprint::from_values(values)))
            .collect::<HashMap<_, _>>())
    }

    /// Map the stochastic columns and recompute the derived ones per world.
    /// Self-times into `fingerprint_time` (mapping is part of the
    /// fingerprint phase's per-call work).
    pub(crate) fn remap_samples(
        &self,
        point: &ParamPoint,
        source: &HashMap<String, Vec<f64>>,
        mappings: &HashMap<String, Mapping>,
        worlds: usize,
    ) -> ProphetResult<HashMap<String, Vec<f64>>> {
        let start = Stopwatch::start();
        let mut out: HashMap<String, Vec<f64>> =
            HashMap::with_capacity(self.script.select.items.len());
        // Stochastic columns: apply the detected mapping to stored samples.
        for col in &self.stochastic_cols {
            let src = source.get(col).ok_or_else(|| {
                ProphetError::Internal(format!("basis entry lacks samples for column `{col}`"))
            })?;
            let mapping = mappings
                .get(col)
                .ok_or_else(|| ProphetError::Internal(format!("no mapping for column `{col}`")))?;
            out.insert(col.clone(), mapping.apply_samples(src));
        }
        // Derived columns: recompute from mapped inputs, world by world.
        let derived: Vec<&SelectItem> = self
            .script
            .select
            .items
            .iter()
            .filter(|i| !self.stochastic_cols.contains(&i.alias))
            .collect();
        if !derived.is_empty() {
            let params = point.to_value_map();
            for item in &derived {
                out.insert(item.alias.clone(), Vec::with_capacity(worlds));
            }
            for w in 0..worlds {
                let mut rng = NoRandomness;
                let mut ctx = EvalContext::new(&self.registry, &params, &mut rng);
                // Bind aliases in select order so derived items see both
                // stochastic and earlier derived columns.
                for item in &self.script.select.items {
                    if self.stochastic_cols.contains(&item.alias) {
                        let v = out[&item.alias][w];
                        ctx.bind_alias(&item.alias, Value::Float(v));
                    } else {
                        let v = prophet_sql::executor::eval_expr(&item.expr, &mut ctx)?;
                        let x = match &v {
                            Value::Null => f64::NAN,
                            v => v.as_f64().map_err(SqlError::from)?,
                        };
                        ctx.bind_alias(&item.alias, v);
                        out.get_mut(&item.alias)
                            .expect("invariant: derived columns are pre-inserted above")
                            .push(x);
                    }
                }
            }
        }
        self.bump(|m| m.fingerprint_time += start.elapsed());
        Ok(out)
    }

    /// Full Monte Carlo simulation of one point.
    ///
    /// `world_parallel` selects how `config.threads` is spent: `true`
    /// splits this point's worlds across the pool (the lone-miss case);
    /// `false` runs single-threaded because the executor is already
    /// simulating sibling points on the pool (point-level parallelism).
    /// The world→sample assignment is identical either way, so the choice
    /// never changes the produced samples or the work counters.
    ///
    /// With a block tier ([`ExecTier::Boxed`] or the default
    /// [`ExecTier::Columnar`]) each worker's world span is one block walk
    /// of the block executor; per-world samples are bit-identical to the
    /// scalar tier under either schedule.
    pub(crate) fn simulate_full(
        &self,
        point: &ParamPoint,
        world_parallel: bool,
    ) -> ProphetResult<HashMap<String, Vec<f64>>> {
        let start = Stopwatch::start();
        let worlds: Vec<u64> = (0..self.config.worlds_per_point as u64).collect();
        let simulate = |ws: &[u64]| self.simulate_span_once(point, ws);
        let (sample_set, stats) = if world_parallel && self.config.threads > 1 {
            let chunk = worlds.len().div_ceil(self.config.threads);
            let chunks: Vec<&[u64]> = worlds.chunks(chunk).collect();
            // World-level parallelism within one point is this engine
            // primitive's own scoped fan-out; the scheduler's pool
            // parallelizes across points, not worlds.
            // lint:allow(thread-spawn): per-point world fan-out
            let results = std::thread::scope(|scope| {
                let simulate = &simulate;
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|ws| scope.spawn(move || simulate(ws)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .expect("invariant: world-simulation workers do not panic")
                    })
                    .collect::<Vec<Result<(SampleSet, ColumnarStats), SqlError>>>()
            });
            let mut iter = results.into_iter();
            let (mut first, mut stats) = iter
                .next()
                .expect("invariant: a non-empty world list yields at least one chunk")?;
            for r in iter {
                let (set, s) = r?;
                first.absorb(&set);
                stats.kernels += s.kernels;
                stats.fallbacks += s.fallbacks;
            }
            (first, stats)
        } else {
            simulate(&worlds)?
        };
        let mut out = HashMap::with_capacity(sample_set.columns().len());
        for col in sample_set.columns() {
            out.insert(
                col.clone(),
                sample_set
                    .samples(col)
                    .expect("invariant: column exists by construction")
                    .to_vec(),
            );
        }
        self.bump(|m| {
            m.worlds_simulated += worlds.len() as u64;
            m.columnar_kernels += stats.kernels;
            m.column_fallbacks += stats.fallbacks;
            m.simulation_time += start.elapsed();
            m.sim_latency.record(start.elapsed_nanos());
        });
        Ok(out)
    }

    /// One tier-routed simulation of a world list (no metrics bump — the
    /// callers aggregate). Non-columnar tiers report zero columnar stats.
    fn simulate_span_once(
        &self,
        point: &ParamPoint,
        worlds: &[u64],
    ) -> Result<(SampleSet, ColumnarStats), SqlError> {
        match self.config.tier {
            ExecTier::Columnar => simulate_point_columnar(
                &self.script.select,
                &self.registry,
                &self.seeds,
                point,
                worlds,
                self.config.common_random_numbers,
            ),
            ExecTier::Boxed => simulate_point_block(
                &self.script.select,
                &self.registry,
                &self.seeds,
                point,
                worlds,
                self.config.common_random_numbers,
            )
            .map(|set| (set, ColumnarStats::default())),
            ExecTier::Scalar => simulate_point(
                &self.script.select,
                &self.registry,
                &self.seeds,
                point,
                worlds,
                self.config.common_random_numbers,
            )
            .map(|set| (set, ColumnarStats::default())),
        }
    }

    /// Simulate one contiguous span of a point's worlds — the primitive
    /// behind chunk-at-a-time progressive estimation
    /// ([`OnlineSession::progressive_expect`]). World→sample assignment is
    /// seed-based (`(root seed, world, point)`), so simulating worlds
    /// `0..k` here yields bit-for-bit the first `k` samples a full
    /// [`Engine::simulate_full`] run would produce.
    ///
    /// [`OnlineSession::progressive_expect`]: crate::session::OnlineSession::progressive_expect
    pub(crate) fn simulate_world_span(
        &self,
        point: &ParamPoint,
        span: std::ops::Range<u64>,
    ) -> ProphetResult<HashMap<String, Vec<f64>>> {
        let start = Stopwatch::start();
        let worlds: Vec<u64> = span.collect();
        let (sample_set, stats) = self.simulate_span_once(point, &worlds)?;
        let mut out = HashMap::with_capacity(sample_set.columns().len());
        for col in sample_set.columns() {
            out.insert(
                col.clone(),
                sample_set
                    .samples(col)
                    .expect("invariant: column exists by construction")
                    .to_vec(),
            );
        }
        self.bump(|m| {
            m.worlds_simulated += worlds.len() as u64;
            m.columnar_kernels += stats.kernels;
            m.column_fallbacks += stats.fallbacks;
            m.simulation_time += start.elapsed();
            m.sim_latency.record(start.elapsed_nanos());
        });
        Ok(out)
    }

    pub(crate) fn to_sample_set(
        &self,
        point: &ParamPoint,
        samples: &HashMap<String, Vec<f64>>,
    ) -> SampleSet {
        SampleSet::from_samples(point.clone(), self.output_columns(), samples.clone())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("stochastic_cols", &self.stochastic_cols)
            .field("config", &self.config)
            .field("basis", &self.basis)
            .finish_non_exhaustive()
    }
}

/// An RNG that must never be consulted — derived-column recomputation is
/// deterministic, and drawing from this is a classification bug.
struct NoRandomness;

impl Rng64 for NoRandomness {
    fn next_u64(&mut self) -> u64 {
        unreachable!("derived columns must not consume randomness")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_models::demo_registry;

    fn engine(config: EngineConfig) -> Engine {
        let scenario = Scenario::figure2().unwrap();
        Engine::new(&scenario, demo_registry(), config).unwrap()
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            worlds_per_point: 60,
            ..EngineConfig::default()
        }
    }

    fn demo_point(current: i64, p1: i64, p2: i64, feature: i64) -> ParamPoint {
        ParamPoint::from_pairs([
            ("current", current),
            ("purchase1", p1),
            ("purchase2", p2),
            ("feature", feature),
        ])
    }

    #[test]
    fn classifies_stochastic_vs_derived_columns() {
        let e = engine(small_config());
        assert_eq!(
            e.stochastic_columns(),
            &["demand".to_string(), "capacity".to_string()]
        );
        assert_eq!(e.output_columns(), ["demand", "capacity", "overload"]);
    }

    #[test]
    fn first_evaluation_simulates_second_hits_cache() {
        let e = engine(small_config());
        let p = demo_point(10, 16, 36, 12);
        let (s1, o1) = e.evaluate(&p).unwrap();
        assert_eq!(o1, EvalOutcome::Simulated);
        assert_eq!(s1.world_count(), 60);
        let (s2, o2) = e.evaluate(&p).unwrap();
        assert_eq!(o2, EvalOutcome::Cached);
        assert_eq!(s1.samples("demand"), s2.samples("demand"));
        let m = e.metrics();
        assert_eq!(m.points_simulated, 1);
        assert_eq!(m.points_cached, 1);
        assert_eq!(m.worlds_simulated, 60);
    }

    #[test]
    fn correlated_point_is_mapped_not_simulated() {
        let e = engine(small_config());
        // Same week, same purchases; only the feature date changes, and
        // both weeks are before either release → identical outputs.
        let a = demo_point(5, 16, 36, 12);
        let b = demo_point(5, 16, 36, 36);
        let (_, o1) = e.evaluate(&a).unwrap();
        assert_eq!(o1, EvalOutcome::Simulated);
        let (sb, o2) = e.evaluate(&b).unwrap();
        match o2 {
            EvalOutcome::Mapped { from, exact } => {
                assert_eq!(from, a);
                assert!(exact, "pre-release feature change must map exactly");
            }
            other => panic!("expected mapped, got {other:?}"),
        }
        // Mapped samples must equal direct simulation of b.
        let fresh = engine(small_config());
        let (direct, _) = fresh.evaluate(&b).unwrap();
        assert_eq!(sb.samples("demand"), direct.samples("demand"));
        assert_eq!(sb.samples("capacity"), direct.samples("capacity"));
        assert_eq!(sb.samples("overload"), direct.samples("overload"));
    }

    #[test]
    fn derived_columns_are_recomputed_consistently_under_mapping() {
        let e = engine(small_config());
        // Same week; the only change moves purchase1 from before (deployed)
        // to after (not deployed) the evaluated week — capacity shifts by
        // exactly one purchase, demand is untouched: an exact Offset map.
        let a = demo_point(10, 4, 36, 12);
        let b = demo_point(10, 16, 36, 12);
        e.evaluate(&a).unwrap();
        let (sb, outcome) = e.evaluate(&b).unwrap();
        assert!(
            matches!(outcome, EvalOutcome::Mapped { exact: true, .. }),
            "{outcome:?}"
        );
        // overload must be consistent with the mapped demand/capacity
        let demand = sb.samples("demand").unwrap();
        let capacity = sb.samples("capacity").unwrap();
        let overload = sb.samples("overload").unwrap();
        for i in 0..sb.world_count() {
            let expected = if capacity[i] < demand[i] { 1.0 } else { 0.0 };
            assert_eq!(overload[i], expected, "world {i}");
        }
    }

    #[test]
    fn fingerprints_disabled_always_simulates() {
        let e = engine(EngineConfig {
            fingerprints_enabled: false,
            ..small_config()
        });
        let a = demo_point(5, 16, 36, 12);
        let b = demo_point(5, 16, 36, 36);
        let (_, o1) = e.evaluate(&a).unwrap();
        let (_, o2) = e.evaluate(&b).unwrap();
        assert_eq!(o1, EvalOutcome::Simulated);
        assert_eq!(o2, EvalOutcome::Simulated);
        assert_eq!(e.metrics().probe_evaluations, 0);
    }

    #[test]
    fn probing_is_cheaper_than_simulation() {
        let cfg = small_config();
        let e = engine(cfg);
        let a = demo_point(5, 16, 36, 12);
        let b = demo_point(5, 16, 36, 36);
        e.evaluate(&a).unwrap();
        e.evaluate(&b).unwrap();
        let m = e.metrics();
        // two probe passes (a and b) of fingerprint length each
        assert_eq!(m.probe_evaluations, 2 * cfg.fingerprint.length as u64);
        // only the first point paid full simulation
        assert_eq!(m.worlds_simulated, cfg.worlds_per_point as u64);
        assert!(
            cfg.fingerprint.length < cfg.worlds_per_point,
            "probe cost must stay below world cost"
        );
    }

    #[test]
    fn vectorized_and_scalar_tiers_agree_bit_for_bit() {
        let columnar = engine(small_config());
        let boxed = engine(EngineConfig {
            tier: ExecTier::Boxed,
            ..small_config()
        });
        let scalar = engine(EngineConfig {
            tier: ExecTier::Scalar,
            ..small_config()
        });
        // Walk a sequence mixing simulate / map / cache outcomes.
        let points = [
            demo_point(5, 16, 36, 12),
            demo_point(5, 16, 36, 36), // maps from the first
            demo_point(50, 0, 4, 44),  // unrelated: simulates
            demo_point(5, 16, 36, 12), // exact cache hit
        ];
        for p in &points {
            let (sc, oc) = columnar.evaluate(p).unwrap();
            let (sv, ov) = boxed.evaluate(p).unwrap();
            let (ss, os) = scalar.evaluate(p).unwrap();
            assert_eq!(oc, os, "columnar outcome for {p}");
            assert_eq!(ov, os, "boxed outcome for {p}");
            for col in ["demand", "capacity", "overload"] {
                assert_eq!(sc.samples(col), ss.samples(col), "column {col} at {p}");
                assert_eq!(sv.samples(col), ss.samples(col), "column {col} at {p}");
            }
        }
        // Same logical probe accounting on every tier…
        let mc = columnar.metrics();
        let mv = boxed.metrics();
        let ms = scalar.metrics();
        assert_eq!(mc.probe_evaluations, ms.probe_evaluations);
        assert_eq!(mv.probe_evaluations, ms.probe_evaluations);
        assert_eq!(mc.worlds_simulated, ms.worlds_simulated);
        assert_eq!(mv.worlds_simulated, ms.worlds_simulated);
        // …but the block tiers did one walk per probed point.
        assert_eq!(mc.vector_walks, 3, "three probed points, one walk each");
        assert_eq!(mv.vector_walks, 3, "three probed points, one walk each");
        assert_eq!(ms.vector_walks, 0, "scalar tier never block-walks");
        // Only the columnar tier runs typed kernels; the figure-2 scenario
        // is pure numeric, so it never falls back to boxed values.
        assert!(mc.columnar_kernels > 0, "columnar tier counts kernels");
        assert_eq!(mc.column_fallbacks, 0, "figure-2 is fully typed");
        assert_eq!(mv.columnar_kernels, 0);
        assert_eq!(ms.columnar_kernels, 0);
    }

    #[test]
    fn expectation_convenience_and_unknown_column() {
        let e = engine(small_config());
        let p = demo_point(0, 16, 36, 12);
        let demand = e.expect(&p, "demand").unwrap();
        assert!(
            (7_000.0..9_000.0).contains(&demand),
            "week-0 demand ≈ 8000, got {demand}"
        );
        match e.expect(&p, "nope") {
            Err(ProphetError::UnknownColumn { name, available }) => {
                assert_eq!(name, "nope");
                assert_eq!(available, ["demand", "capacity", "overload"]);
            }
            other => panic!("expected UnknownColumn, got {other:?}"),
        }
    }

    #[test]
    fn clear_basis_forces_resimulation() {
        let e = engine(small_config());
        let p = demo_point(3, 16, 36, 12);
        e.evaluate(&p).unwrap();
        assert_eq!(e.basis_len(), 1);
        e.clear_basis();
        assert_eq!(e.basis_len(), 0);
        let (_, o) = e.evaluate(&p).unwrap();
        assert_eq!(o, EvalOutcome::Simulated);
    }

    #[test]
    fn world_parallel_simulation_is_deterministic() {
        let p = demo_point(12, 8, 24, 12);
        let seq = engine(EngineConfig {
            threads: 1,
            ..small_config()
        });
        let par = engine(EngineConfig {
            threads: 4,
            ..small_config()
        });
        let (a, _) = seq.evaluate(&p).unwrap();
        let (b, _) = par.evaluate(&p).unwrap();
        assert_eq!(a.samples("demand"), b.samples("demand"));
        assert_eq!(a.samples("capacity"), b.samples("capacity"));
    }

    #[test]
    fn zero_worlds_config_is_rejected() {
        let scenario = Scenario::figure2().unwrap();
        let err = Engine::new(
            &scenario,
            demo_registry(),
            EngineConfig {
                worlds_per_point: 0,
                ..EngineConfig::default()
            },
        );
        assert!(
            matches!(err, Err(ProphetError::InvalidConfig(_))),
            "{err:?}"
        );
    }

    #[test]
    fn basis_capacity_evicts_oldest() {
        let e = engine(EngineConfig {
            basis_capacity: 2,
            worlds_per_point: 16,
            ..EngineConfig::default()
        });
        let p1 = demo_point(1, 16, 36, 12);
        let p2 = demo_point(50, 0, 4, 44); // very different; won't map
        let p3 = demo_point(25, 16, 16, 12);
        e.evaluate(&p1).unwrap();
        e.evaluate(&p2).unwrap();
        e.evaluate(&p3).unwrap();
        assert_eq!(e.basis_len(), 2);
    }

    #[test]
    fn eviction_prefers_mapped_entries_over_simulated_sources() {
        // Capacity 2: one simulated source, one mapped entry. Inserting a
        // third (simulated) point must evict the mapped entry, because the
        // simulated source is what future matches depend on.
        let e = engine(EngineConfig {
            basis_capacity: 2,
            worlds_per_point: 16,
            ..EngineConfig::default()
        });
        let source = demo_point(5, 16, 36, 12);
        let mapped = demo_point(5, 16, 36, 36); // identity-maps from source
        let unrelated = demo_point(50, 0, 4, 44);
        let (_, o1) = e.evaluate(&source).unwrap();
        let (_, o2) = e.evaluate(&mapped).unwrap();
        assert_eq!(o1, EvalOutcome::Simulated);
        assert!(matches!(o2, EvalOutcome::Mapped { .. }));
        e.evaluate(&unrelated).unwrap();
        assert_eq!(e.basis_len(), 2);
        // The source must have survived: re-evaluating the mapped point
        // maps again (from the retained source) instead of simulating.
        let (_, o3) = e.evaluate(&mapped).unwrap();
        assert!(
            matches!(o3, EvalOutcome::Mapped { ref from, .. } if *from == source),
            "source entry must survive eviction, got {o3:?}"
        );
    }

    #[test]
    fn engines_sharing_a_store_reuse_each_others_work() {
        let scenario = Scenario::figure2().unwrap();
        let registry = Arc::new(demo_registry());
        let store = SharedBasisStore::new(1024);
        let cfg = small_config();
        let a =
            Engine::with_basis_store(&scenario, Arc::clone(&registry), cfg, store.clone()).unwrap();
        let b = Engine::with_basis_store(&scenario, registry, cfg, store).unwrap();
        let p = demo_point(10, 16, 36, 12);
        let (sa, oa) = a.evaluate(&p).unwrap();
        assert_eq!(oa, EvalOutcome::Simulated);
        // The *other* engine sees the first one's basis entry.
        let (sb, ob) = b.evaluate(&p).unwrap();
        assert_eq!(ob, EvalOutcome::Cached);
        assert_eq!(sa.samples("demand"), sb.samples("demand"));
        assert_eq!(b.metrics().worlds_simulated, 0, "engine b never simulated");
        assert!(a.basis_store().shares_storage_with(b.basis_store()));
    }

    #[test]
    fn non_crn_mapping_is_statistically_sound_but_not_bitwise() {
        // Without common random numbers, correlation detection still works
        // (probes pin their own seeds) and mapped *statistics* stay close,
        // but per-world samples no longer line up with direct simulation.
        let cfg = EngineConfig {
            worlds_per_point: 400,
            common_random_numbers: false,
            ..EngineConfig::default()
        };
        let e = engine(cfg);
        let a = demo_point(10, 4, 36, 12);
        let b = demo_point(10, 16, 36, 12); // capacity offset by one purchase
        e.evaluate(&a).unwrap();
        let (mapped, outcome) = e.evaluate(&b).unwrap();
        assert!(matches!(outcome, EvalOutcome::Mapped { .. }), "{outcome:?}");

        let fresh = engine(cfg);
        let (direct, _) = fresh.evaluate(&b).unwrap();
        let em = mapped.expect("capacity").unwrap();
        let ed = direct.expect("capacity").unwrap();
        assert!(
            (em - ed).abs() / ed < 0.02,
            "means must agree statistically: mapped {em:.0} vs direct {ed:.0}"
        );
        // but the underlying samples come from different worlds entirely
        assert_ne!(mapped.samples("capacity"), direct.samples("capacity"));
    }
}
