//! Scenario: a parsed script plus the canonical demo text.

use prophet_sql::parser::parse_script;
use prophet_sql::Script;

use crate::error::ProphetResult;

/// The paper's Figure 2, verbatim (modulo whitespace): the "Risk vs Cost of
/// Ownership" scenario for a Windows-Azure-style datacenter.
pub const FIGURE2_SQL: &str = r#"
-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature)
         AS demand,
       CapacityModel(@current, @purchase1, @purchase2)
         AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
         AS overload
INTO results;

-- ONLINE MODE --
GRAPH OVER @current
    EXPECT overload WITH bold red,
    EXPECT capacity WITH blue y2,
    EXPECT_STDDEV demand WITH orange y2;

-- OFFLINE MODE --
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
"#;

/// A business scenario: the parsed script plus its source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    source: String,
    script: Script,
}

impl Scenario {
    /// Parse a scenario from DSL text.
    pub fn parse(source: &str) -> ProphetResult<Scenario> {
        let script = parse_script(source)?;
        Ok(Scenario {
            source: source.to_owned(),
            script,
        })
    }

    /// The paper's Figure-2 scenario.
    pub fn figure2() -> ProphetResult<Scenario> {
        Scenario::parse(FIGURE2_SQL)
    }

    /// The parsed script.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// The original DSL text (the GUI shows "the small fragment of SQL code
    /// required to describe the scenario", §3.2).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Size of the full parameter space (product of all domains).
    pub fn parameter_space_size(&self) -> usize {
        self.script
            .params
            .iter()
            .map(|p| p.domain.cardinality())
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_parses_and_has_expected_shape() {
        let s = Scenario::figure2().unwrap();
        assert_eq!(s.script().params.len(), 4);
        assert!(s.script().graph.is_some());
        assert!(s.script().optimize.is_some());
        // 53 × 14 × 14 × 3
        assert_eq!(s.parameter_space_size(), 53 * 14 * 14 * 3);
        assert!(s.source().contains("OPTIMIZE"));
    }

    #[test]
    fn parse_errors_bubble_up() {
        assert!(Scenario::parse("SELECT oops").is_err());
    }
}
