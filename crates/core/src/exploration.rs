//! The Figure-4 exploration map.
//!
//! §3.3: "a live-updated view shows the simulation's progress through the
//! parameter space, as well as any established mappings, as in Figure 4"
//! (which shows a 2D slice of fingerprint mappings for the Capacity model).
//!
//! [`ExplorationMap`] is that view: a 2D grid over two chosen parameters
//! whose cells record whether each point was fully computed, re-mapped from
//! a correlated point, served from cache, or not yet visited — plus the
//! mapping edges themselves.

use std::fmt::Write as _;

use prophet_mc::ParamPoint;
use prophet_sql::ast::ParameterDecl;

use crate::engine::EvalOutcome;

/// Exploration status of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellState {
    /// Not yet visited.
    #[default]
    Pending,
    /// At least one evaluation at this cell ran a full simulation.
    Computed,
    /// Visited exclusively through fingerprint mappings.
    Mapped,
    /// Visited exclusively through the exact cache.
    Cached,
}

impl CellState {
    /// One-character glyph for the ASCII rendering.
    pub fn glyph(self) -> char {
        match self {
            CellState::Pending => '.',
            CellState::Computed => '#',
            CellState::Mapped => '+',
            CellState::Cached => 'o',
        }
    }
}

/// A recorded mapping edge between two cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingEdge {
    /// Source cell `(x, y)` parameter values.
    pub from: (i64, i64),
    /// Target cell `(x, y)` parameter values.
    pub to: (i64, i64),
}

/// A 2D slice of the parameter space with per-cell exploration state.
#[derive(Debug, Clone)]
pub struct ExplorationMap {
    x_param: String,
    y_param: String,
    x_values: Vec<i64>,
    y_values: Vec<i64>,
    /// Per-cell counters: (simulated, mapped, cached), row-major by y then x.
    counts: Vec<(u64, u64, u64)>,
    edges: Vec<MappingEdge>,
}

impl ExplorationMap {
    /// Build a map over two declared parameters.
    pub fn new(x_decl: &ParameterDecl, y_decl: &ParameterDecl) -> Self {
        let x_values = x_decl.domain.values();
        let y_values = y_decl.domain.values();
        ExplorationMap {
            x_param: x_decl.name.clone(),
            y_param: y_decl.name.clone(),
            counts: vec![(0, 0, 0); x_values.len() * y_values.len()],
            x_values,
            y_values,
            edges: Vec::new(),
        }
    }

    fn index_of(&self, point: &ParamPoint) -> Option<usize> {
        let x = point.get(&self.x_param)?;
        let y = point.get(&self.y_param)?;
        let xi = self.x_values.iter().position(|&v| v == x)?;
        let yi = self.y_values.iter().position(|&v| v == y)?;
        Some(yi * self.x_values.len() + xi)
    }

    /// Record one engine evaluation. Points lying off this 2D slice are
    /// ignored. Mapping edges are recorded when both endpoints lie on the
    /// slice.
    pub fn record(&mut self, point: &ParamPoint, outcome: &EvalOutcome) {
        let Some(idx) = self.index_of(point) else {
            return;
        };
        match outcome {
            EvalOutcome::Simulated => self.counts[idx].0 += 1,
            EvalOutcome::Mapped { from, .. } => {
                self.counts[idx].1 += 1;
                if let (Some(fx), Some(fy), Some(tx), Some(ty)) = (
                    from.get(&self.x_param),
                    from.get(&self.y_param),
                    point.get(&self.x_param),
                    point.get(&self.y_param),
                ) {
                    let edge = MappingEdge {
                        from: (fx, fy),
                        to: (tx, ty),
                    };
                    if !self.edges.contains(&edge) {
                        self.edges.push(edge);
                    }
                }
            }
            EvalOutcome::Cached => self.counts[idx].2 += 1,
        }
    }

    /// State of the cell at parameter values `(x, y)`.
    pub fn cell(&self, x: i64, y: i64) -> Option<CellState> {
        let point = ParamPoint::from_pairs([(self.x_param.clone(), x), (self.y_param.clone(), y)]);
        let idx = self.index_of(&point)?;
        let (sim, mapped, cached) = self.counts[idx];
        Some(if sim > 0 {
            CellState::Computed
        } else if mapped > 0 {
            CellState::Mapped
        } else if cached > 0 {
            CellState::Cached
        } else {
            CellState::Pending
        })
    }

    /// `(computed, mapped, cached, pending)` cell counts.
    pub fn tally(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for &(sim, mapped, cached) in &self.counts {
            if sim > 0 {
                t.0 += 1;
            } else if mapped > 0 {
                t.1 += 1;
            } else if cached > 0 {
                t.2 += 1;
            } else {
                t.3 += 1;
            }
        }
        t
    }

    /// Recorded mapping edges.
    pub fn edges(&self) -> &[MappingEdge] {
        &self.edges
    }

    /// Fraction of visited cells that avoided full simulation.
    pub fn reuse_fraction(&self) -> f64 {
        let (computed, mapped, cached, _) = self.tally();
        let visited = computed + mapped + cached;
        if visited == 0 {
            0.0
        } else {
            (mapped + cached) as f64 / visited as f64
        }
    }

    /// ASCII rendering (y grows downward): `#` computed, `+` mapped,
    /// `o` cached, `.` pending.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "@{} → (cols), @{} ↓ (rows)   # computed   + mapped   o cached   . pending",
            self.x_param, self.y_param
        );
        for (yi, &y) in self.y_values.iter().enumerate() {
            let _ = write!(out, "{y:>4} |");
            for xi in 0..self.x_values.len() {
                let (sim, mapped, cached) = self.counts[yi * self.x_values.len() + xi];
                let state = if sim > 0 {
                    CellState::Computed
                } else if mapped > 0 {
                    CellState::Mapped
                } else if cached > 0 {
                    CellState::Cached
                } else {
                    CellState::Pending
                };
                let _ = write!(out, " {}", state.glyph());
            }
            out.push('\n');
        }
        let _ = writeln!(out, "      mappings recorded: {}", self.edges.len());
        out
    }

    /// CSV rows `x,y,state` for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},{},state\n", self.x_param, self.y_param);
        for (yi, &y) in self.y_values.iter().enumerate() {
            for (xi, &x) in self.x_values.iter().enumerate() {
                let (sim, mapped, cached) = self.counts[yi * self.x_values.len() + xi];
                let state = if sim > 0 {
                    "computed"
                } else if mapped > 0 {
                    "mapped"
                } else if cached > 0 {
                    "cached"
                } else {
                    "pending"
                };
                let _ = writeln!(out, "{x},{y},{state}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_sql::ast::ParameterDomain;

    fn decl(name: &str, lo: i64, hi: i64, step: i64) -> ParameterDecl {
        ParameterDecl {
            name: name.into(),
            domain: ParameterDomain::Range { lo, hi, step },
        }
    }

    fn map() -> ExplorationMap {
        ExplorationMap::new(&decl("purchase1", 0, 8, 4), &decl("purchase2", 0, 8, 4))
    }

    fn point(p1: i64, p2: i64) -> ParamPoint {
        ParamPoint::from_pairs([("purchase1", p1), ("purchase2", p2), ("current", 0i64)])
    }

    #[test]
    fn records_and_classifies_cells() {
        let mut m = map();
        m.record(&point(0, 0), &EvalOutcome::Simulated);
        m.record(
            &point(4, 0),
            &EvalOutcome::Mapped {
                from: point(0, 0),
                exact: true,
            },
        );
        m.record(&point(8, 0), &EvalOutcome::Cached);
        assert_eq!(m.cell(0, 0), Some(CellState::Computed));
        assert_eq!(m.cell(4, 0), Some(CellState::Mapped));
        assert_eq!(m.cell(8, 0), Some(CellState::Cached));
        assert_eq!(m.cell(0, 4), Some(CellState::Pending));
        assert_eq!(m.tally(), (1, 1, 1, 6));
    }

    #[test]
    fn simulation_dominates_mapping_in_cell_state() {
        let mut m = map();
        m.record(
            &point(0, 0),
            &EvalOutcome::Mapped {
                from: point(4, 0),
                exact: true,
            },
        );
        m.record(&point(0, 0), &EvalOutcome::Simulated);
        assert_eq!(m.cell(0, 0), Some(CellState::Computed));
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut m = map();
        let o = EvalOutcome::Mapped {
            from: point(0, 0),
            exact: true,
        };
        m.record(&point(4, 4), &o);
        m.record(&point(4, 4), &o);
        assert_eq!(m.edges().len(), 1);
        assert_eq!(
            m.edges()[0],
            MappingEdge {
                from: (0, 0),
                to: (4, 4)
            }
        );
    }

    #[test]
    fn off_slice_points_are_ignored() {
        let mut m = map();
        let off = ParamPoint::from_pairs([("purchase1", 2i64), ("purchase2", 0)]); // 2 off-grid
        m.record(&off, &EvalOutcome::Simulated);
        assert_eq!(m.tally(), (0, 0, 0, 9));
        let missing = ParamPoint::from_pairs([("other", 1i64)]);
        m.record(&missing, &EvalOutcome::Simulated);
        assert_eq!(m.tally(), (0, 0, 0, 9));
    }

    #[test]
    fn reuse_fraction_counts_visited_only() {
        let mut m = map();
        assert_eq!(m.reuse_fraction(), 0.0);
        m.record(&point(0, 0), &EvalOutcome::Simulated);
        m.record(
            &point(4, 0),
            &EvalOutcome::Mapped {
                from: point(0, 0),
                exact: true,
            },
        );
        m.record(
            &point(8, 0),
            &EvalOutcome::Mapped {
                from: point(0, 0),
                exact: true,
            },
        );
        assert!((m.reuse_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_and_csv_renderings() {
        let mut m = map();
        m.record(&point(0, 0), &EvalOutcome::Simulated);
        m.record(
            &point(4, 0),
            &EvalOutcome::Mapped {
                from: point(0, 0),
                exact: true,
            },
        );
        let ascii = m.render_ascii();
        assert!(ascii.contains("# computed"));
        assert!(
            ascii.contains("0 | # +"),
            "row 0 shows computed then mapped:\n{ascii}"
        );
        let csv = m.to_csv();
        assert!(csv.starts_with("purchase1,purchase2,state\n"));
        assert!(csv.contains("0,0,computed"));
        assert!(csv.contains("4,0,mapped"));
        assert!(csv.contains("8,8,pending"));
    }
}
