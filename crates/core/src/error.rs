//! The workspace-wide typed error hierarchy.
//!
//! Every public API in this crate returns [`ProphetError`] rather than the
//! lower layers' `SqlError`/`DataError`: callers of a long-lived service
//! need to distinguish "unknown scenario name" from "parse error on line 7"
//! programmatically, and structured variants carry the context (valid
//! names, offending values) a service front-end needs to produce actionable
//! responses without string-matching messages.

use std::fmt;

use prophet_data::DataError;
use prophet_mc::SnapshotError;
use prophet_sql::error::SqlError;

/// Result alias for the `fuzzy-prophet` crate.
pub type ProphetResult<T> = Result<T, ProphetError>;

/// Everything that can go wrong when configuring or querying the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ProphetError {
    /// A syntax or semantic error from the SQL front-end.
    Sql(SqlError),
    /// An error from the relational layer.
    Data(DataError),
    /// A scenario name not registered with the service.
    UnknownScenario {
        /// The requested name.
        name: String,
        /// Names that *are* registered, sorted.
        available: Vec<String>,
    },
    /// A parameter name the scenario does not declare (or declares but
    /// cannot be set, listing the ones that can).
    UnknownParam {
        /// The requested parameter.
        name: String,
        /// Adjustable parameter names, sorted.
        available: Vec<String>,
    },
    /// An output column the scenario's SELECT does not produce.
    UnknownColumn {
        /// The requested column.
        name: String,
        /// Columns the SELECT produces, in declaration order.
        available: Vec<String>,
    },
    /// Attempted to set the graph's swept axis as if it were a slider.
    AxisParam {
        /// The axis parameter's name.
        name: String,
    },
    /// A value outside a parameter's declared domain.
    OutOfDomain {
        /// The parameter.
        name: String,
        /// The rejected value.
        value: i64,
    },
    /// Online mode requires a `GRAPH OVER` directive.
    MissingGraphDirective,
    /// Offline mode requires an `OPTIMIZE` directive.
    MissingOptimizeDirective,
    /// A scenario name registered twice on one builder.
    DuplicateScenario {
        /// The colliding name.
        name: String,
    },
    /// An engine configuration that cannot work (zero worlds, …).
    InvalidConfig(String),
    /// A refresh job spec omitted one of the scenario's sliders (every
    /// non-axis parameter needs a value).
    MissingSlider {
        /// The slider left unset.
        name: String,
        /// Every slider the spec must provide, sorted.
        required: Vec<String>,
    },
    /// A submitted job was cancelled before completing; surfaced by
    /// [`JobHandle::wait`](crate::job::JobHandle::wait) (incremental
    /// consumers see [`JobEvent::Cancelled`](crate::job::JobEvent)
    /// instead).
    JobCancelled,
    /// A basis snapshot could not be saved or restored (corrupt bytes,
    /// version/capacity mismatch, or filesystem failure); the store is
    /// left untouched on a failed restore.
    Snapshot(SnapshotError),
    /// An internal invariant violation (a bug, not user error).
    Internal(String),
}

impl ProphetError {
    /// Construct [`ProphetError::UnknownParam`] with its candidates sorted.
    pub fn unknown_param(name: impl Into<String>, mut available: Vec<String>) -> Self {
        available.sort();
        ProphetError::UnknownParam {
            name: name.into(),
            available,
        }
    }

    /// Construct [`ProphetError::UnknownColumn`] (candidates keep SELECT
    /// order, which is already deterministic).
    pub fn unknown_column(name: impl Into<String>, available: Vec<String>) -> Self {
        ProphetError::UnknownColumn {
            name: name.into(),
            available,
        }
    }

    /// Construct [`ProphetError::UnknownScenario`] with its candidates
    /// sorted.
    pub fn unknown_scenario(name: impl Into<String>, mut available: Vec<String>) -> Self {
        available.sort();
        ProphetError::UnknownScenario {
            name: name.into(),
            available,
        }
    }
}

fn list(names: &[String]) -> String {
    if names.is_empty() {
        "none".to_owned()
    } else {
        names.join(", ")
    }
}

impl fmt::Display for ProphetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProphetError::Sql(e) => write!(f, "{e}"),
            ProphetError::Data(e) => write!(f, "data error: {e}"),
            ProphetError::UnknownScenario { name, available } => {
                write!(
                    f,
                    "unknown scenario `{name}` (registered: {})",
                    list(available)
                )
            }
            ProphetError::UnknownParam { name, available } => {
                write!(f, "unknown parameter @{name} (valid: {})", list(available))
            }
            ProphetError::UnknownColumn { name, available } => {
                write!(
                    f,
                    "unknown output column `{name}` (columns: {})",
                    list(available)
                )
            }
            ProphetError::AxisParam { name } => {
                write!(f, "@{name} is the graph axis; it is swept, not set")
            }
            ProphetError::OutOfDomain { name, value } => {
                write!(f, "value {value} outside the domain of @{name}")
            }
            ProphetError::MissingGraphDirective => {
                write!(f, "online mode requires a GRAPH OVER directive")
            }
            ProphetError::MissingOptimizeDirective => {
                write!(f, "offline mode requires an OPTIMIZE directive")
            }
            ProphetError::DuplicateScenario { name } => {
                write!(f, "scenario `{name}` registered twice")
            }
            ProphetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ProphetError::MissingSlider { name, required } => {
                write!(
                    f,
                    "refresh spec leaves slider @{name} unset (required: {})",
                    list(required)
                )
            }
            ProphetError::JobCancelled => {
                write!(f, "job cancelled before completion")
            }
            ProphetError::Snapshot(e) => write!(f, "basis snapshot error: {e}"),
            ProphetError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ProphetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProphetError::Sql(e) => Some(e),
            ProphetError::Data(e) => Some(e),
            ProphetError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ProphetError {
    fn from(err: SnapshotError) -> Self {
        ProphetError::Snapshot(err)
    }
}

impl From<SqlError> for ProphetError {
    fn from(err: SqlError) -> Self {
        // Data errors that merely passed through the SQL layer surface as
        // data errors: the hierarchy reflects origin, not call path.
        match err {
            SqlError::Data(data) => ProphetError::Data(data),
            other => ProphetError::Sql(other),
        }
    }
}

impl From<DataError> for ProphetError {
    fn from(err: DataError) -> Self {
        ProphetError::Data(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_param_lists_candidates_sorted() {
        let e = ProphetError::unknown_param(
            "nope",
            vec![
                "purchase2".to_owned(),
                "feature".to_owned(),
                "purchase1".to_owned(),
            ],
        );
        assert_eq!(
            e.to_string(),
            "unknown parameter @nope (valid: feature, purchase1, purchase2)"
        );
        match e {
            ProphetError::UnknownParam { available, .. } => {
                assert_eq!(available, ["feature", "purchase1", "purchase2"]);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn empty_candidate_lists_read_as_none() {
        let e = ProphetError::unknown_scenario("x", vec![]);
        assert_eq!(e.to_string(), "unknown scenario `x` (registered: none)");
    }

    #[test]
    fn sql_errors_convert_and_chain() {
        let sql = SqlError::Eval("boom".into());
        let e: ProphetError = sql.clone().into();
        assert_eq!(e, ProphetError::Sql(sql));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn data_errors_unwrap_through_the_sql_layer() {
        let inner = DataError::UnknownColumn("x".into());
        let via_sql: ProphetError = SqlError::Data(inner.clone()).into();
        let direct: ProphetError = inner.into();
        assert_eq!(
            via_sql, direct,
            "origin, not call path, decides the variant"
        );
    }

    #[test]
    fn display_is_stable_for_structured_variants() {
        assert_eq!(
            ProphetError::AxisParam {
                name: "current".into()
            }
            .to_string(),
            "@current is the graph axis; it is swept, not set"
        );
        assert_eq!(
            ProphetError::OutOfDomain {
                name: "purchase1".into(),
                value: 3
            }
            .to_string(),
            "value 3 outside the domain of @purchase1"
        );
        assert_eq!(
            ProphetError::MissingGraphDirective.to_string(),
            "online mode requires a GRAPH OVER directive"
        );
    }
}
