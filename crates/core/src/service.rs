//! The [`Prophet`] service facade: a long-lived engine front door.
//!
//! The paper's demonstration is a single-user GUI, but a production
//! deployment serves many concurrent what-if sessions over a catalog of
//! scenarios. `Prophet` is that deployment shape: scenarios are registered
//! once by name, the VG catalog and engine configuration are fixed at build
//! time, and every session handed out by [`Prophet::online`] /
//! [`Prophet::offline`] shares one basis store and fingerprint cache per
//! scenario. A slider move in one session re-maps results simulated by
//! another — the paper's fingerprint reuse, amortized across the whole
//! service instead of trapped inside one session.
//!
//! ```
//! use fuzzy_prophet::prelude::*;
//!
//! let prophet = Prophet::builder()
//!     .scenario("figure2", Scenario::figure2().unwrap())
//!     .registry(prophet_models::demo_registry())
//!     .config(EngineConfig { worlds_per_point: 32, ..EngineConfig::default() })
//!     .build()
//!     .unwrap();
//!
//! let mut first = prophet.online("figure2").unwrap();
//! first.refresh().unwrap();
//!
//! // A second session reuses everything the first one computed.
//! let mut second = prophet.online("figure2").unwrap();
//! let report = second.refresh().unwrap();
//! assert_eq!(report.weeks_simulated, 0);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use prophet_mc::guide::{Guide, GuideFactory, PriorityGuide};
use prophet_mc::{ParamPoint, SharedBasisStore, StoreStatsSnapshot};
use prophet_sql::ast::ParameterDecl;
use prophet_vg::VgRegistry;

use crate::engine::{Engine, EngineConfig};
use crate::error::{ProphetError, ProphetResult};
use crate::job::{JobHandle, JobKind, JobSpec};
use crate::obs::TelemetrySnapshot;
use crate::offline::{OfflineOptimizer, SweepPlan};
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::session::OnlineSession;
use crate::trace::{TraceConfig, TraceEvent};

/// The default exploration strategy: [`PriorityGuide`] with neighbour
/// prefetch, as the paper's online mode describes.
struct PriorityGuideFactory;

impl GuideFactory for PriorityGuideFactory {
    fn build(&self, decls: &[ParameterDecl]) -> Box<dyn Guide + Send> {
        Box::new(PriorityGuide::new(decls))
    }
}

/// One registered scenario plus its cross-session shared state.
struct Slot {
    scenario: Scenario,
    store: SharedBasisStore,
}

/// Fluent builder for [`Prophet`]. Obtained from [`Prophet::builder`].
pub struct ProphetBuilder {
    scenarios: Vec<(String, Scenario)>,
    registry: Option<Arc<VgRegistry>>,
    config: EngineConfig,
    guide_factory: Arc<dyn GuideFactory>,
    scheduler: SchedulerConfig,
}

impl std::fmt::Debug for ProphetBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProphetBuilder")
            .field(
                "scenarios",
                &self.scenarios.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ProphetBuilder {
    fn new() -> Self {
        ProphetBuilder {
            scenarios: Vec::new(),
            registry: None,
            config: EngineConfig::default(),
            guide_factory: Arc::new(PriorityGuideFactory),
            scheduler: SchedulerConfig::default(),
        }
    }

    /// Register a parsed scenario under a service-local name.
    pub fn scenario(mut self, name: impl Into<String>, scenario: Scenario) -> Self {
        self.scenarios.push((name.into(), scenario));
        self
    }

    /// Parse and register a scenario from DSL text in one step.
    pub fn scenario_sql(self, name: impl Into<String>, source: &str) -> ProphetResult<Self> {
        Ok(self.scenario(name, Scenario::parse(source)?))
    }

    /// Select the VG-Function catalog scenarios resolve against. Defaults
    /// to [`prophet_models::full_registry`] (every bundled model).
    pub fn registry(mut self, registry: VgRegistry) -> Self {
        self.registry = Some(Arc::new(registry));
        self
    }

    /// Select an already-shared VG catalog (several services over one).
    pub fn shared_registry(mut self, registry: Arc<VgRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Replace the whole engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Convenience: set only the Monte Carlo worlds per point.
    pub fn worlds_per_point(mut self, worlds: usize) -> Self {
        self.config.worlds_per_point = worlds;
        self
    }

    /// Tune the service's job scheduler (worker pool size, chunk
    /// granularity). By default the pool runs
    /// `EngineConfig::threads.max(1)` workers and chunks jobs at
    /// [`crate::scheduler::DEFAULT_CHUNK_POINTS`] points.
    pub fn scheduler(mut self, config: SchedulerConfig) -> Self {
        self.scheduler = config;
        self
    }

    /// Configure the service's flight recorder (see `docs/OBSERVABILITY.md`).
    /// Defaults to a bounded ring ([`TraceConfig::ring`]), so
    /// [`JobHandle::trace`] and [`Prophet::telemetry`] work out of the
    /// box; pass [`TraceConfig::Off`] to make every recording site a
    /// no-op. Shorthand for setting [`SchedulerConfig::trace`] through
    /// [`ProphetBuilder::scheduler`].
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.scheduler.trace = trace;
        self
    }

    /// Plug in an exploration strategy: the factory builds one fresh
    /// [`Guide`] per online session (guides are stateful and
    /// session-local). Defaults to the paper's priority queue with
    /// neighbour prefetch.
    pub fn exploration(mut self, factory: impl GuideFactory + 'static) -> Self {
        self.guide_factory = Arc::new(factory);
        self
    }

    /// Validate and assemble the service.
    pub fn build(self) -> ProphetResult<Prophet> {
        if self.config.worlds_per_point == 0 {
            return Err(ProphetError::InvalidConfig(
                "worlds_per_point must be positive".into(),
            ));
        }
        if self.config.basis_capacity == 0 {
            return Err(ProphetError::InvalidConfig(
                "basis_capacity must be positive".into(),
            ));
        }
        if !(1..=prophet_mc::MAX_SHARDS).contains(&self.config.store_shards) {
            return Err(ProphetError::InvalidConfig(format!(
                "store_shards must be in 1..={} (got {})",
                prophet_mc::MAX_SHARDS,
                self.config.store_shards
            )));
        }
        let registry = self
            .registry
            .unwrap_or_else(|| Arc::new(prophet_models::full_registry()));
        // Auto-resolved pools get at least 2 workers: job drivers occupy
        // a worker for their whole job, so a 1-worker pool would queue a
        // high-priority driver behind an entire running sweep — the exact
        // whole-job serialization the scheduler exists to eliminate. Two
        // lanes guarantee an interactive driver starts beside one batch
        // driver even at `threads: 1` (an explicit `workers: 1` is
        // honoured for tests that want a serialized pool).
        let scheduler = Arc::new(Scheduler::new(SchedulerConfig {
            workers: if self.scheduler.workers == 0 {
                self.config.threads.max(2)
            } else {
                self.scheduler.workers
            },
            ..self.scheduler
        }));
        // Stores share the pool's recorder so claim/wait/publish/evict
        // markers and in-flight wait latencies land in the same trace as
        // the scheduler events.
        let mut slots: HashMap<String, Slot> = HashMap::with_capacity(self.scenarios.len());
        for (name, scenario) in self.scenarios {
            if slots.contains_key(&name) {
                return Err(ProphetError::DuplicateScenario { name });
            }
            let store =
                SharedBasisStore::with_shards(self.config.basis_capacity, self.config.store_shards)
                    .with_tracer(scheduler.tracer().clone());
            slots.insert(name, Slot { scenario, store });
        }
        Ok(Prophet {
            registry,
            config: self.config,
            guide_factory: self.guide_factory,
            slots,
            scheduler,
        })
    }
}

/// A long-lived Fuzzy Prophet service: named scenarios, one shared basis
/// store per scenario, sessions on demand.
///
/// `Prophet` is `Send + Sync`; hand out sessions from as many threads as
/// you like — they contend only on the per-scenario basis store's
/// read-write lock.
pub struct Prophet {
    registry: Arc<VgRegistry>,
    config: EngineConfig,
    guide_factory: Arc<dyn GuideFactory>,
    slots: HashMap<String, Slot>,
    /// The service's long-lived worker pool: every session refresh,
    /// offline sweep, and [`Prophet::submit`]ted job runs on it as
    /// priority-interleaved chunks.
    scheduler: Arc<Scheduler>,
}

impl std::fmt::Debug for Prophet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prophet")
            .field("scenarios", &self.scenario_names())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Prophet {
    /// Start configuring a service.
    pub fn builder() -> ProphetBuilder {
        ProphetBuilder::new()
    }

    /// Registered scenario names, sorted.
    pub fn scenario_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.slots.keys().cloned().collect();
        names.sort();
        names
    }

    /// The registered scenario behind `name`.
    pub fn scenario(&self, name: &str) -> ProphetResult<&Scenario> {
        self.slot(name).map(|s| &s.scenario)
    }

    /// The service's engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The VG catalog every scenario resolves against.
    pub fn registry(&self) -> &Arc<VgRegistry> {
        &self.registry
    }

    /// Open an interactive online session on a named scenario. Every
    /// session of one scenario shares the same basis store: what one
    /// simulates, the others re-map or serve from cache. The session's
    /// refreshes run as high-priority jobs on the service scheduler, its
    /// idle prefetches as low-priority ones.
    pub fn online(&self, name: &str) -> ProphetResult<OnlineSession> {
        let slot = self.slot(name)?;
        let engine = Arc::new(self.engine_for(slot)?);
        let guide = self.guide_factory.build(&slot.scenario.script().params);
        OnlineSession::open_scheduled(engine, guide, Arc::clone(&self.scheduler))
    }

    /// Open an offline optimizer on a named scenario, sharing the same
    /// basis store as the online sessions. Its blocking
    /// [`run`](OfflineOptimizer::run) executes as `submit(sweep).wait()`
    /// on the service scheduler.
    pub fn offline(&self, name: &str) -> ProphetResult<OfflineOptimizer> {
        let slot = self.slot(name)?;
        OfflineOptimizer::open_scheduled(
            Arc::new(self.engine_for(slot)?),
            Arc::clone(&self.scheduler),
        )
    }

    /// Submit an asynchronous job — a sweep, a graph refresh, or a raw
    /// point batch — and return immediately with a [`JobHandle`] for
    /// progress polling, event streaming, cancellation, or a blocking
    /// [`wait`](JobHandle::wait).
    ///
    /// The job runs on the service's shared [`Scheduler`] as chunks
    /// ordered by `(priority, submission order)`: a
    /// [`Priority::High`](crate::job::Priority::High) job's chunks
    /// overtake a running lower-priority sweep mid-flight instead of
    /// queueing behind it. Each job evaluates on a fresh engine over the
    /// scenario's shared basis store, so its published simulations are
    /// reusable by every session (and vice versa), and its final answer
    /// is bit-identical to the corresponding blocking call.
    pub fn submit(&self, spec: JobSpec) -> ProphetResult<JobHandle> {
        match spec.kind {
            JobKind::Sweep { ref scenario } => {
                let slot = self.slot(scenario)?;
                let plan = SweepPlan::from_script(slot.scenario.script())?;
                let engine = Arc::new(self.engine_for(slot)?);
                Ok(self.scheduler.submit_sweep(engine, plan, spec.priority))
            }
            JobKind::Refresh {
                ref scenario,
                ref sliders,
            } => {
                let slot = self.slot(scenario)?;
                let points = self.refresh_points(slot, sliders)?;
                let engine = Arc::new(self.engine_for(slot)?);
                Ok(self.scheduler.submit_batch(engine, points, spec.priority))
            }
            JobKind::Points {
                ref scenario,
                ref points,
            } => {
                let slot = self.slot(scenario)?;
                let engine = Arc::new(self.engine_for(slot)?);
                Ok(self
                    .scheduler
                    .submit_batch(engine, points.clone(), spec.priority))
            }
        }
    }

    /// The service's job scheduler (worker/chunk introspection,
    /// [`wait_idle`](Scheduler::wait_idle) for detached jobs).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// One coherent observation of the running service: the flight
    /// recorder's latency histograms (chunk service time, queue wait by
    /// priority, match scans, in-flight store waits) and gauges (queue
    /// depth + watermark, busy workers), plus pool size and the open
    /// in-flight claims summed across every scenario's shared store.
    /// Cheap and non-blocking for job progress — all sources are atomics
    /// or leaf locks. Histograms are all-zero when the service was built
    /// with [`TraceConfig::Off`]. See `docs/OBSERVABILITY.md`.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            trace: self.scheduler.tracer().telemetry(),
            workers_total: self.scheduler.workers(),
            inflight_claims: self.slots.values().map(|s| s.store.inflight_len()).sum(),
        }
    }

    /// Every event in the service's flight-recorder ring, merged across
    /// shards and sorted by timestamp — the input
    /// [`chrome_trace_json`](crate::obs::chrome_trace_json) expects.
    /// Empty under [`TraceConfig::Off`]; bounded by the configured ring
    /// capacity (oldest events overwritten first).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.scheduler.tracer().events()
    }

    /// Expand a refresh spec into its graph-axis batch, validating the
    /// sliders exactly as [`OnlineSession::set_param`] would.
    ///
    /// [`OnlineSession::set_param`]: crate::session::OnlineSession::set_param
    fn refresh_points(&self, slot: &Slot, sliders: &ParamPoint) -> ProphetResult<Vec<ParamPoint>> {
        let script = slot.scenario.script();
        let graph = script
            .graph
            .clone()
            .ok_or(ProphetError::MissingGraphDirective)?;
        let slider_names: Vec<String> = script
            .params
            .iter()
            .filter(|p| p.name != graph.x_param)
            .map(|p| p.name.clone())
            .collect();
        let mut full = ParamPoint::new();
        for (name, value) in sliders.iter() {
            if name == graph.x_param {
                return Err(ProphetError::AxisParam {
                    name: name.to_owned(),
                });
            }
            let decl = script
                .param(name)
                .ok_or_else(|| ProphetError::unknown_param(name, slider_names.clone()))?;
            if !decl.domain.contains(value) {
                return Err(ProphetError::OutOfDomain {
                    name: name.to_owned(),
                    value,
                });
            }
            full.set(name.to_owned(), value);
        }
        for name in &slider_names {
            if full.get(name).is_none() {
                let mut required = slider_names.clone();
                required.sort();
                return Err(ProphetError::MissingSlider {
                    name: name.clone(),
                    required,
                });
            }
        }
        let x_decl = script.param(&graph.x_param).ok_or_else(|| {
            ProphetError::unknown_param(graph.x_param.clone(), slider_names.clone())
        })?;
        Ok(x_decl
            .domain
            .values()
            .into_iter()
            .map(|x| full.with(graph.x_param.clone(), x))
            .collect())
    }

    /// A raw engine on a named scenario's shared store (for batch jobs and
    /// experiments that drive [`Engine::evaluate`] directly).
    pub fn engine(&self, name: &str) -> ProphetResult<Engine> {
        let slot = self.slot(name)?;
        self.engine_for(slot)
    }

    /// Number of basis entries currently shared by `name`'s sessions.
    pub fn basis_len(&self, name: &str) -> ProphetResult<usize> {
        self.slot(name).map(|s| s.store.len())
    }

    /// Cross-session counters of `name`'s shared store: fingerprint probe
    /// hits/misses and in-flight waits (evaluations that reused another
    /// session's concurrent simulation instead of duplicating it).
    pub fn basis_stats(&self, name: &str) -> ProphetResult<StoreStatsSnapshot> {
        self.slot(name).map(|s| s.store.stats_snapshot())
    }

    /// Every scenario's shared-store counters in one call, sorted by
    /// scenario name — the operator's poll-everything endpoint (no more
    /// iterating [`Prophet::scenario_names`] + [`Prophet::basis_stats`]).
    pub fn basis_stats_all(&self) -> Vec<(String, StoreStatsSnapshot)> {
        let mut stats: Vec<(String, StoreStatsSnapshot)> = self
            .slots
            .iter()
            .map(|(name, slot)| (name.clone(), slot.store.stats_snapshot()))
            .collect();
        stats.sort_by(|a, b| a.0.cmp(&b.0));
        stats
    }

    /// Drop a scenario's shared basis entries (forces cold starts
    /// everywhere).
    pub fn clear_basis(&self, name: &str) -> ProphetResult<()> {
        self.slot(name).map(|s| s.store.clear())
    }

    /// Snapshot `name`'s shared basis store to `path` — records, stamps,
    /// matchability, checksummed (see
    /// [`SharedBasisStore::snapshot_bytes`]). Returns the number of
    /// entries written. A later [`Prophet::load_basis`] (on this or a
    /// freshly built service) warms the store from disk instead of
    /// re-simulating its basis population.
    pub fn save_basis(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> ProphetResult<usize> {
        let slot = self.slot(name)?;
        Ok(slot.store.save_to(path)?)
    }

    /// Restore `name`'s shared basis store from a [`Prophet::save_basis`]
    /// snapshot. Returns the number of restored entries. Corrupt or
    /// truncated snapshots are rejected with
    /// [`ProphetError::Snapshot`] before any store state changes; a
    /// successful restore cancels in-flight claims (their owners' results
    /// are discarded) and resets the store's counters, exactly like
    /// [`Prophet::clear_basis`] followed by replaying the snapshot.
    pub fn load_basis(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> ProphetResult<usize> {
        let slot = self.slot(name)?;
        Ok(slot.store.load_from(path)?)
    }

    fn slot(&self, name: &str) -> ProphetResult<&Slot> {
        self.slots.get(name).ok_or_else(|| {
            let mut known: Vec<String> = self.slots.keys().cloned().collect();
            known.sort();
            ProphetError::unknown_scenario(name, known)
        })
    }

    fn engine_for(&self, slot: &Slot) -> ProphetResult<Engine> {
        Engine::with_basis_store(
            &slot.scenario,
            Arc::clone(&self.registry),
            self.config,
            slot.store.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_mc::ParamPoint;
    use prophet_models::demo_registry;

    fn demo_service(worlds: usize) -> Prophet {
        Prophet::builder()
            .scenario("figure2", Scenario::figure2().unwrap())
            .registry(demo_registry())
            .config(EngineConfig {
                worlds_per_point: worlds,
                ..EngineConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let p = demo_service(16);
        assert_eq!(p.scenario_names(), ["figure2"]);
        assert_eq!(p.config().worlds_per_point, 16);
        assert_eq!(p.scenario("figure2").unwrap().script().params.len(), 4);
        assert_eq!(p.basis_len("figure2").unwrap(), 0);
    }

    #[test]
    fn unknown_scenario_lists_registered_names() {
        let p = demo_service(8);
        match p.online("nope") {
            Err(ProphetError::UnknownScenario { name, available }) => {
                assert_eq!(name, "nope");
                assert_eq!(available, ["figure2"]);
            }
            other => panic!("expected UnknownScenario, got {other:?}"),
        }
        assert!(p.offline("nope").is_err());
        assert!(p.engine("nope").is_err());
        assert!(p.basis_len("nope").is_err());
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let err = Prophet::builder()
            .scenario("a", Scenario::figure2().unwrap())
            .scenario("a", Scenario::figure2().unwrap())
            .build();
        assert!(
            matches!(err, Err(ProphetError::DuplicateScenario { ref name }) if name == "a"),
            "{err:?}"
        );
    }

    #[test]
    fn invalid_config_is_rejected_at_build() {
        let err = Prophet::builder().worlds_per_point(0).build();
        assert!(
            matches!(err, Err(ProphetError::InvalidConfig(_))),
            "{err:?}"
        );
    }

    #[test]
    fn scenario_sql_parses_inline() {
        let p = Prophet::builder()
            .scenario_sql(
                "toy",
                "DECLARE PARAMETER @x AS SET (1,2);\nSELECT @x AS y INTO r;",
            )
            .unwrap()
            .registry(demo_registry())
            .build()
            .unwrap();
        let engine = p.engine("toy").unwrap();
        let point = ParamPoint::from_pairs([("x", 2i64)]);
        assert_eq!(engine.expect(&point, "y").unwrap(), 2.0);
        // no GRAPH directive → online mode unavailable, typed
        assert!(matches!(
            p.online("toy"),
            Err(ProphetError::MissingGraphDirective)
        ));
    }

    #[test]
    fn sessions_share_one_basis_store_per_scenario() {
        let p = demo_service(24);
        let mut first = p.online("figure2").unwrap();
        let cold = first.refresh().unwrap();
        assert!(cold.weeks_simulated > 0);
        let shared_after_first = p.basis_len("figure2").unwrap();
        assert!(
            shared_after_first > 0,
            "first session populated the shared store"
        );

        // The second session's very first render is fully reused.
        let mut second = p.online("figure2").unwrap();
        let warm = second.refresh().unwrap();
        assert_eq!(warm.weeks_simulated, 0, "{warm:?}");
        assert_eq!(warm.weeks_reused(), warm.weeks_total);
        assert!(
            first
                .engine()
                .basis_store()
                .shares_storage_with(second.engine().basis_store()),
            "both sessions must hold handles onto one store"
        );
    }

    #[test]
    fn offline_and_online_share_the_store_too() {
        let p = Prophet::builder()
            .scenario("figure2", Scenario::figure2().unwrap())
            .registry(demo_registry())
            .config(EngineConfig {
                worlds_per_point: 8,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        let mut online = p.online("figure2").unwrap();
        online.refresh().unwrap();
        let populated = p.basis_len("figure2").unwrap();
        let offline = p.offline("figure2").unwrap();
        assert_eq!(offline.engine().basis_len(), populated);
        p.clear_basis("figure2").unwrap();
        assert_eq!(offline.engine().basis_len(), 0);
    }

    #[test]
    fn exploration_strategy_is_pluggable() {
        struct Inert;
        impl Guide for Inert {
            fn next_point(&mut self) -> Option<ParamPoint> {
                None
            }
        }
        struct InertFactory;
        impl GuideFactory for InertFactory {
            fn build(&self, _: &[ParameterDecl]) -> Box<dyn Guide + Send> {
                Box::new(Inert)
            }
        }
        let p = Prophet::builder()
            .scenario("figure2", Scenario::figure2().unwrap())
            .registry(demo_registry())
            .worlds_per_point(8)
            .exploration(InertFactory)
            .build()
            .unwrap();
        let mut s = p.online("figure2").unwrap();
        s.set_param("purchase2", 36).unwrap();
        assert_eq!(
            s.prefetch_tick(8).unwrap(),
            0,
            "inert strategy queues nothing"
        );
    }

    #[test]
    fn closures_work_as_guide_factories() {
        let p = Prophet::builder()
            .scenario("figure2", Scenario::figure2().unwrap())
            .registry(demo_registry())
            .worlds_per_point(8)
            .exploration(|decls: &[ParameterDecl]| {
                Box::new(PriorityGuide::new(decls)) as Box<dyn Guide + Send>
            })
            .build()
            .unwrap();
        let mut s = p.online("figure2").unwrap();
        s.set_param("purchase2", 36).unwrap();
        assert_eq!(
            s.prefetch_tick(8).unwrap(),
            2,
            "closure built a real PriorityGuide"
        );
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Prophet>();
    }

    #[test]
    fn concurrent_sessions_from_multiple_threads() {
        let p = std::sync::Arc::new(demo_service(8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut s = p.online("figure2").unwrap();
                    s.refresh().unwrap().weeks_total
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 53);
        }
        assert!(p.basis_len("figure2").unwrap() > 0);
    }
}
