//! Engine work accounting.
//!
//! The paper's claims are about *work avoided* — fewer VG invocations,
//! fewer re-rendered weeks, faster offline sweeps. [`EngineMetrics`] is the
//! ledger every experiment reads its numbers from.

use std::fmt;
use std::time::{Duration, Instant};

use prophet_mc::trace::LatencyHistogram;

/// A started wall-clock timer. This is the *only* place `crates/core`
/// touches `Instant` (pinned by the `wall-clock` lint rule in
/// `crates/analysis`): wall time is a metric, and keeping every reading
/// behind this one type guarantees no deterministic code path can branch
/// on the clock — timings land in [`EngineMetrics`] counters and report
/// wall fields, nowhere else.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Wall time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Wall time since [`Stopwatch::start`], as the nanosecond counters
    /// [`EngineMetrics`] accumulates.
    pub fn elapsed_nanos(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Counters describing how much simulation work the engine performed and
/// how much it avoided through fingerprint reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineMetrics {
    /// Parameter points whose results were served from the exact-key cache.
    pub points_cached: u64,
    /// Parameter points whose results were re-mapped from a correlated
    /// basis entry (fingerprint hit).
    pub points_mapped: u64,
    /// Parameter points fully simulated.
    pub points_simulated: u64,
    /// Monte Carlo worlds actually evaluated (full simulation only).
    pub worlds_simulated: u64,
    /// Scenario evaluations spent probing fingerprints. This counts
    /// *logical* per-seed evaluations regardless of execution tier: a
    /// vectorized probe of fingerprint length `L` counts `L`, exactly as
    /// `L` scalar walks would — so the number stays comparable across
    /// engine versions and the `vectorized` config knob.
    pub probe_evaluations: u64,
    /// Vectorized probe walks: block evaluations of the scenario SELECT
    /// that produced a whole fingerprint in one AST walk. Zero when the
    /// scalar tier is probing; `probe_evaluations / vector_walks` is the
    /// observed worlds-per-walk amortization (the fingerprint length).
    pub vector_walks: u64,
    /// Nanoseconds spent inside probe *evaluation* alone (the SELECT
    /// walk(s) that produce fingerprint columns), summed across parallel
    /// workers. Unlike [`probe_nanos`](EngineMetrics::probe_nanos), this
    /// excludes the correlation match scan and remapping, so it is the
    /// number the scalar-vs-vector executor comparison reads.
    pub probe_eval_nanos: u64,
    /// Typed-kernel executions inside the columnar tier: expression nodes
    /// whose whole world-block was computed on `f64`/`i64`/`bool` buffers
    /// (straight-line loops over typed slices). Zero unless
    /// [`EngineConfig::tier`](crate::engine::EngineConfig::tier) is
    /// [`ExecTier::Columnar`](crate::engine::ExecTier::Columnar).
    pub columnar_kernels: u64,
    /// Expression nodes the columnar tier had to evaluate through boxed
    /// `Value` cells (mixed/string columns, integer overflow promotion,
    /// VG functions without an `f64` batch lane). Zero on pure-numeric
    /// scenarios — the bench asserts exactly that on the bundled ones.
    pub column_fallbacks: u64,
    /// (candidate, probe) pairs that ran the full entry-by-entry
    /// correlation comparison during match scans. With the summary index
    /// on, `candidates_pruned / (candidates_scanned + candidates_pruned)`
    /// is the scan's prune rate.
    pub candidates_scanned: u64,
    /// (candidate, probe) pairs the fingerprint summary index skipped:
    /// their bound proved they could not match at all, or could not beat
    /// the best match already found. Zero when
    /// [`EngineConfig::match_index`](crate::engine::EngineConfig::match_index)
    /// is off. Deterministic: the indexed scan's pruning decisions do not
    /// depend on the thread count.
    pub candidates_pruned: u64,
    /// Wall-clock nanoseconds inside the correlation match scan (the
    /// candidate search over the basis store, excluding probe evaluation
    /// and remapping) — the number the indexed-vs-exhaustive comparison
    /// reads.
    pub match_scan_nanos: u64,
    /// Evaluations served by blocking on another session's in-flight
    /// simulation of the same point (thundering-herd dedup).
    pub inflight_waits: u64,
    /// Points whose store probe went through the batched planner
    /// ([`Engine::evaluate_batch`](crate::engine::Engine::evaluate_batch)'s
    /// source-parallel `find_correlated_batch` stage).
    pub batch_probes: u64,
    /// Executor wall-clock nanoseconds inside the probe/match/remap phase.
    /// Unlike [`fingerprint_time`](EngineMetrics::fingerprint_time), which
    /// sums per-call durations across parallel workers, this measures the
    /// phase as the caller experiences it.
    pub probe_nanos: u64,
    /// Executor wall-clock nanoseconds inside the simulation phase (same
    /// wall-vs-summed distinction as
    /// [`probe_nanos`](EngineMetrics::probe_nanos)).
    pub sim_nanos: u64,
    /// Time inside full simulation, summed across parallel workers.
    pub simulation_time: Duration,
    /// Time inside fingerprint probing + matching + mapping, summed across
    /// parallel workers.
    pub fingerprint_time: Duration,
    /// Per-point fingerprint-probe latency distribution (one observation
    /// per [`Engine::probe_fingerprints`](crate::engine::Engine) call),
    /// log-bucketed so percentiles survive merging — the totals above say
    /// how much work ran; this says how it was *distributed*, which is
    /// where a slow tail hides.
    pub probe_latency: LatencyHistogram,
    /// Per-point full-simulation latency distribution (one observation
    /// per simulated point), same bucket table as
    /// [`probe_latency`](EngineMetrics::probe_latency).
    pub sim_latency: LatencyHistogram,
}

impl EngineMetrics {
    /// Total parameter points served.
    pub fn points_total(&self) -> u64 {
        self.points_cached + self.points_mapped + self.points_simulated
    }

    /// Fraction of points served without full simulation (cache + mapped).
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.points_total();
        if total == 0 {
            0.0
        } else {
            (self.points_cached + self.points_mapped) as f64 / total as f64
        }
    }

    /// Scenario evaluations that *would* have run without reuse, assuming
    /// `worlds_per_point` evaluations per reused point.
    pub fn evaluations_avoided(&self, worlds_per_point: u64) -> u64 {
        (self.points_cached + self.points_mapped) * worlds_per_point
    }

    /// Merge counters from another snapshot (parallel workers).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.points_cached += other.points_cached;
        self.points_mapped += other.points_mapped;
        self.points_simulated += other.points_simulated;
        self.worlds_simulated += other.worlds_simulated;
        self.probe_evaluations += other.probe_evaluations;
        self.vector_walks += other.vector_walks;
        self.probe_eval_nanos += other.probe_eval_nanos;
        self.columnar_kernels += other.columnar_kernels;
        self.column_fallbacks += other.column_fallbacks;
        self.candidates_scanned += other.candidates_scanned;
        self.candidates_pruned += other.candidates_pruned;
        self.match_scan_nanos += other.match_scan_nanos;
        self.inflight_waits += other.inflight_waits;
        self.batch_probes += other.batch_probes;
        self.probe_nanos += other.probe_nanos;
        self.sim_nanos += other.sim_nanos;
        self.simulation_time += other.simulation_time;
        self.fingerprint_time += other.fingerprint_time;
        self.probe_latency.merge(&other.probe_latency);
        self.sim_latency.merge(&other.sim_latency);
    }

    /// Difference since an earlier snapshot (for per-operation reporting).
    pub fn since(&self, earlier: &EngineMetrics) -> EngineMetrics {
        EngineMetrics {
            points_cached: self.points_cached - earlier.points_cached,
            points_mapped: self.points_mapped - earlier.points_mapped,
            points_simulated: self.points_simulated - earlier.points_simulated,
            worlds_simulated: self.worlds_simulated - earlier.worlds_simulated,
            probe_evaluations: self.probe_evaluations - earlier.probe_evaluations,
            vector_walks: self.vector_walks - earlier.vector_walks,
            probe_eval_nanos: self.probe_eval_nanos - earlier.probe_eval_nanos,
            columnar_kernels: self.columnar_kernels - earlier.columnar_kernels,
            column_fallbacks: self.column_fallbacks - earlier.column_fallbacks,
            candidates_scanned: self.candidates_scanned - earlier.candidates_scanned,
            candidates_pruned: self.candidates_pruned - earlier.candidates_pruned,
            match_scan_nanos: self.match_scan_nanos - earlier.match_scan_nanos,
            inflight_waits: self.inflight_waits - earlier.inflight_waits,
            batch_probes: self.batch_probes - earlier.batch_probes,
            probe_nanos: self.probe_nanos - earlier.probe_nanos,
            sim_nanos: self.sim_nanos - earlier.sim_nanos,
            simulation_time: self.simulation_time.saturating_sub(earlier.simulation_time),
            fingerprint_time: self
                .fingerprint_time
                .saturating_sub(earlier.fingerprint_time),
            probe_latency: self.probe_latency.since(&earlier.probe_latency),
            sim_latency: self.sim_latency.since(&earlier.sim_latency),
        }
    }
}

impl EngineMetrics {
    /// Fraction of bounded (candidate, probe) pairs the summary index
    /// pruned, in `[0, 1]`.
    pub fn prune_fraction(&self) -> f64 {
        let bounded = self.candidates_scanned + self.candidates_pruned;
        if bounded == 0 {
            0.0
        } else {
            self.candidates_pruned as f64 / bounded as f64
        }
    }
}

/// Renders every counter as one `name value` row in two stable, aligned
/// columns (names left-justified to 20, values right-justified to 14), in
/// a fixed order — so bench logs and snapshot diffs line up counter for
/// counter across runs instead of drifting with ad-hoc prose. Times
/// render as milliseconds with two decimals; rates as percentages with
/// one; latency percentiles (the trailing block) as microseconds with
/// two, reporting the log-bucket ceiling each percentile landed in (see
/// `docs/OBSERVABILITY.md`). The exact format is pinned by a snapshot
/// test.
impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |nanos: u64| nanos as f64 / 1e6;
        let us = |nanos: u64| format!("{:.2}", nanos as f64 / 1e3);
        let rows: [(&str, String); 26] = [
            ("points_simulated", self.points_simulated.to_string()),
            ("points_mapped", self.points_mapped.to_string()),
            ("points_cached", self.points_cached.to_string()),
            ("reuse_pct", format!("{:.1}", self.reuse_fraction() * 100.0)),
            ("worlds_simulated", self.worlds_simulated.to_string()),
            ("probe_evaluations", self.probe_evaluations.to_string()),
            ("vector_walks", self.vector_walks.to_string()),
            ("probe_eval_ms", format!("{:.2}", ms(self.probe_eval_nanos))),
            ("columnar_kernels", self.columnar_kernels.to_string()),
            ("column_fallbacks", self.column_fallbacks.to_string()),
            ("candidates_scanned", self.candidates_scanned.to_string()),
            ("candidates_pruned", self.candidates_pruned.to_string()),
            ("prune_pct", format!("{:.1}", self.prune_fraction() * 100.0)),
            ("match_scan_ms", format!("{:.2}", ms(self.match_scan_nanos))),
            ("inflight_waits", self.inflight_waits.to_string()),
            ("batch_probes", self.batch_probes.to_string()),
            ("probe_phase_ms", format!("{:.2}", ms(self.probe_nanos))),
            ("sim_phase_ms", format!("{:.2}", ms(self.sim_nanos))),
            (
                "simulation_ms",
                format!("{:.2}", self.simulation_time.as_secs_f64() * 1e3),
            ),
            (
                "fingerprint_ms",
                format!("{:.2}", self.fingerprint_time.as_secs_f64() * 1e3),
            ),
            ("probe_p50_us", us(self.probe_latency.p50())),
            ("probe_p90_us", us(self.probe_latency.p90())),
            ("probe_p99_us", us(self.probe_latency.p99())),
            ("sim_p50_us", us(self.sim_latency.p50())),
            ("sim_p90_us", us(self.sim_latency.p90())),
            ("sim_p99_us", us(self.sim_latency.p99())),
        ];
        for (i, (name, value)) in rows.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name:<20}{value:>14}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(nanos: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &n in nanos {
            h.record(n);
        }
        h
    }

    #[test]
    fn totals_and_reuse_fraction() {
        let m = EngineMetrics {
            points_cached: 10,
            points_mapped: 30,
            points_simulated: 60,
            ..EngineMetrics::default()
        };
        assert_eq!(m.points_total(), 100);
        assert!((m.reuse_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(m.evaluations_avoided(500), 20_000);
    }

    #[test]
    fn empty_metrics_have_zero_reuse() {
        let m = EngineMetrics::default();
        assert_eq!(m.reuse_fraction(), 0.0);
        assert_eq!(m.points_total(), 0);
    }

    #[test]
    fn merge_and_since_are_inverse_ish() {
        let a = EngineMetrics {
            points_simulated: 5,
            worlds_simulated: 500,
            probe_evaluations: 32,
            ..EngineMetrics::default()
        };
        let mut b = a;
        let extra = EngineMetrics {
            points_mapped: 3,
            probe_evaluations: 96,
            ..EngineMetrics::default()
        };
        b.merge(&extra);
        let diff = b.since(&a);
        assert_eq!(diff.points_mapped, 3);
        assert_eq!(diff.probe_evaluations, 96);
        assert_eq!(diff.points_simulated, 0);
    }

    #[test]
    fn executor_counters_merge_and_diff() {
        let a = EngineMetrics {
            inflight_waits: 2,
            batch_probes: 10,
            vector_walks: 7,
            probe_eval_nanos: 2_000,
            columnar_kernels: 20,
            column_fallbacks: 2,
            candidates_scanned: 40,
            candidates_pruned: 60,
            match_scan_nanos: 800,
            probe_nanos: 1_000,
            sim_nanos: 5_000,
            ..EngineMetrics::default()
        };
        let mut b = a;
        b.merge(&EngineMetrics {
            inflight_waits: 1,
            batch_probes: 5,
            vector_walks: 3,
            probe_eval_nanos: 1_000,
            columnar_kernels: 5,
            column_fallbacks: 1,
            candidates_scanned: 4,
            candidates_pruned: 6,
            match_scan_nanos: 200,
            probe_nanos: 500,
            sim_nanos: 500,
            ..EngineMetrics::default()
        });
        assert_eq!(b.inflight_waits, 3);
        assert_eq!(b.batch_probes, 15);
        assert_eq!(b.vector_walks, 10);
        assert_eq!(b.probe_eval_nanos, 3_000);
        assert_eq!(b.columnar_kernels, 25);
        assert_eq!(b.column_fallbacks, 3);
        assert_eq!(b.candidates_scanned, 44);
        assert_eq!(b.candidates_pruned, 66);
        assert_eq!(b.match_scan_nanos, 1_000);
        let diff = b.since(&a);
        assert_eq!(diff.inflight_waits, 1);
        assert_eq!(diff.batch_probes, 5);
        assert_eq!(diff.vector_walks, 3);
        assert_eq!(diff.probe_eval_nanos, 1_000);
        assert_eq!(diff.columnar_kernels, 5);
        assert_eq!(diff.column_fallbacks, 1);
        assert_eq!(diff.candidates_scanned, 4);
        assert_eq!(diff.candidates_pruned, 6);
        assert_eq!(diff.match_scan_nanos, 200);
        assert_eq!(diff.probe_nanos, 500);
        assert_eq!(diff.sim_nanos, 500);
    }

    #[test]
    fn display_mentions_the_key_numbers() {
        let m = EngineMetrics {
            points_mapped: 7,
            points_simulated: 3,
            worlds_simulated: 1200,
            ..EngineMetrics::default()
        };
        let s = m.to_string();
        assert!(s.contains("points_simulated"));
        assert!(s.contains("points_mapped"));
        assert!(s.contains("70.0"), "reuse percentage rendered: {s}");
        assert!(s.contains("1200"));
    }

    /// The `Display` format is a stability contract: bench diffs read it.
    /// Every counter is one `name value` row, names padded to 20, values
    /// right-justified to 14, fixed order, times in ms.
    #[test]
    fn display_snapshot_is_stable_and_aligned() {
        let m = EngineMetrics {
            points_cached: 1,
            points_mapped: 2,
            points_simulated: 5,
            worlds_simulated: 320,
            probe_evaluations: 48,
            vector_walks: 6,
            probe_eval_nanos: 1_250_000,
            columnar_kernels: 210,
            column_fallbacks: 0,
            candidates_scanned: 30,
            candidates_pruned: 90,
            match_scan_nanos: 2_500_000,
            inflight_waits: 4,
            batch_probes: 7,
            probe_nanos: 3_000_000,
            sim_nanos: 12_345_678,
            simulation_time: Duration::from_micros(15_500),
            fingerprint_time: Duration::from_micros(4_250),
            // Log-bucketed: 800 and 1600 ns land in the 1023/2047 buckets,
            // 200 µs in the 262143 bucket — so p50 reads 2047 ns (2.05 µs)
            // and p90/p99 read 262143 ns (262.14 µs).
            probe_latency: hist(&[800, 1_600, 200_000]),
            sim_latency: hist(&[1_000_000, 2_000_000, 4_000_000]),
        };
        let expected = "\
points_simulated                 5
points_mapped                    2
points_cached                    1
reuse_pct                     37.5
worlds_simulated               320
probe_evaluations               48
vector_walks                     6
probe_eval_ms                 1.25
columnar_kernels               210
column_fallbacks                 0
candidates_scanned              30
candidates_pruned               90
prune_pct                     75.0
match_scan_ms                 2.50
inflight_waits                   4
batch_probes                     7
probe_phase_ms                3.00
sim_phase_ms                 12.35
simulation_ms                15.50
fingerprint_ms                4.25
probe_p50_us                  2.05
probe_p90_us                262.14
probe_p99_us                262.14
sim_p50_us                 2097.15
sim_p90_us                 4194.30
sim_p99_us                 4194.30";
        assert_eq!(m.to_string(), expected);
        // Alignment invariant: every row is exactly 34 columns wide.
        for line in m.to_string().lines() {
            assert_eq!(line.len(), 34, "row {line:?} drifted");
        }
    }

    /// Completeness audit for `merge`/`since`: construct a metrics value
    /// with **every** field nonzero (no `..Default::default()` — adding a
    /// field to `EngineMetrics` breaks this constructor until the test is
    /// updated), then check `(m + m) - m == m`. A counter dropped from
    /// `merge` makes the doubled value too small; one dropped from `since`
    /// leaves the difference too large — either way the round trip fails.
    #[test]
    fn merge_and_since_cover_every_field() {
        let m = EngineMetrics {
            points_cached: 1,
            points_mapped: 2,
            points_simulated: 3,
            worlds_simulated: 4,
            probe_evaluations: 5,
            vector_walks: 6,
            probe_eval_nanos: 7,
            columnar_kernels: 8,
            column_fallbacks: 9,
            candidates_scanned: 10,
            candidates_pruned: 11,
            match_scan_nanos: 12,
            inflight_waits: 13,
            batch_probes: 14,
            probe_nanos: 15,
            sim_nanos: 16,
            simulation_time: Duration::from_nanos(17),
            fingerprint_time: Duration::from_nanos(18),
            probe_latency: hist(&[19]),
            sim_latency: hist(&[20, 1 << 20]),
        };
        assert_ne!(m, EngineMetrics::default(), "fixture must be nonzero");
        let mut doubled = m;
        doubled.merge(&m);
        assert_ne!(doubled, m, "merge must change every-field-nonzero sums");
        assert_eq!(
            doubled.since(&m),
            m,
            "merge/since round trip dropped a field"
        );
    }
}
