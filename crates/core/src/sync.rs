//! Rank-ordered locks: the engine half of the workspace lock-rank table.
//!
//! The instrumented primitives — [`OrderedMutex`], [`OrderedRwLock`],
//! [`OrderedCondvar`], [`ClaimLedger`] — are implemented in
//! [`prophet_mc::sync`] and re-exported here: the shared basis store
//! (`prophet-mc`) sits *below* this crate in the dependency graph, so the
//! primitives must live where both layers can reach them. This module is
//! the workspace's one place to read the whole rank table.
//!
//! # The lock-rank table
//!
//! A thread may only acquire a lock whose rank is **strictly greater**
//! than the highest rank it currently holds. Under `cfg(any(test,
//! feature = "check"))` every acquisition is verified against a
//! thread-local held-rank stack and a violation panics (naming both
//! locks) before blocking; release builds compile the tracking out.
//!
//! | rank | lock | defined in |
//! |-----:|------|------------|
//! | 10 | [`SCHEDULER_STATE`] — scheduler queues + condvar state | this module |
//! | 20 | [`JOB_EVENTS`] — a job's event-sender cell | this module |
//! | 30 | [`rank::INFLIGHT_TABLE`] — store pending-claim table | `prophet_mc::sync` |
//! | 40 | [`rank::INFLIGHT_SLOT`] — one pending slot's state cell | `prophet_mc::sync` |
//! | 45 | [`rank::STORE_META`] — store stamp/index/eviction metadata | `prophet_mc::sync` |
//! | 50–65 | [`rank::STORE_SHARDS`] — basis entry-table shards (`RwLock` each) | `prophet_mc::sync` |
//! | 67 | [`rank::STORE_STATS`] — store counter ledger | `prophet_mc::sync` |
//! | 70 | [`CHUNK_RESULTS`] — a chunked phase's result slots | this module |
//! | 75 | [`ENGINE_METRICS`] — the engine's metrics ledger | this module |
//! | 80 | [`SCHEDULER_HANDLES`] — worker join handles (drop only) | this module |
//! | 90 | [`TRACE_RING`] — flight-recorder ring shards | `prophet_mc::trace` |
//!
//! The assignments encode the real nesting: claim/publish/clear hold the
//! in-flight table (30) across slot-state (40), store-meta (45), and
//! shard (50–65) acquisitions; inserts hold the meta lock across their
//! shard pair, and multi-shard paths (the match scan's all-shard read,
//! restore/clear) take shards strictly by ascending index; the counter
//! ledger (67) sits above every shard so accounting is legal while shard
//! guards are held. Everything else is leaf-like — acquired and released
//! with nothing nested inside — so any rank would do, but giving each a
//! distinct slot means an *accidental* future nesting is either proven
//! harmless (ascending) or caught (inverted), instead of silently
//! becoming a deadlock candidate. [`TRACE_RING`] is deliberately the
//! highest rank: recording a trace event must be legal while holding
//! *any* other lock (events are emitted from deep inside the scheduler
//! and store), and nothing may nest inside a ring shard. The
//! `--features check` lock-wait hook skips ranks at or above it so the
//! recorder never observes itself. `docs/CONCURRENCY.md` carries the
//! protocol-level discussion; `docs/OBSERVABILITY.md` the recorder's.

pub use prophet_mc::sync::{
    rank, ClaimLedger, LockRank, OrderedCondvar, OrderedMutex, OrderedMutexGuard, OrderedReadGuard,
    OrderedRwLock, OrderedWriteGuard, MAX_SHARDS,
};
pub use prophet_mc::trace::TRACE_RING;

/// The scheduler's queue state (`drivers`/`chunks` heaps, shutdown flag)
/// and its `ready` condvar. Held only to push/pop tasks and notify —
/// never across running a task or touching the store.
pub const SCHEDULER_STATE: LockRank = LockRank::new(10, "scheduler state");

/// A job's event-sender cell (`JobCore::events`, a private detail of
/// `crate::job`): taken to emit or close the stream, with nothing nested
/// inside.
pub const JOB_EVENTS: LockRank = LockRank::new(20, "job event sender");

/// A chunked phase's result slots (`run_chunked`): each chunk briefly
/// stores its computed values; the driver drains it once the phase
/// completes.
pub const CHUNK_RESULTS: LockRank = LockRank::new(70, "chunk result slots");

/// The engine's [`EngineMetrics`](crate::metrics::EngineMetrics) ledger:
/// a leaf bumped after each primitive completes.
pub const ENGINE_METRICS: LockRank = LockRank::new(75, "engine metrics");

/// The scheduler's worker join handles, taken only during `Drop`.
pub const SCHEDULER_HANDLES: LockRank = LockRank::new(80, "scheduler worker handles");

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "check")]
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The engine-side ranks and the store-side ranks really form one
    /// table: every constant is distinct and the documented order holds.
    #[test]
    fn rank_table_is_consistent() {
        let table = [
            SCHEDULER_STATE,
            JOB_EVENTS,
            rank::INFLIGHT_TABLE,
            rank::INFLIGHT_SLOT,
            rank::STORE_META,
            rank::STORE_SHARDS[0],
            rank::STORE_SHARDS[MAX_SHARDS - 1],
            rank::STORE_STATS,
            CHUNK_RESULTS,
            ENGINE_METRICS,
            SCHEDULER_HANDLES,
            TRACE_RING,
        ];
        // The shard ranks themselves are contiguous and strictly ascending,
        // one per possible shard index.
        for pair in rank::STORE_SHARDS.windows(2) {
            assert!(pair[0].rank < pair[1].rank, "shard ranks out of order");
        }
        for pair in table.windows(2) {
            assert!(
                pair[0].rank < pair[1].rank,
                "rank table out of order: {} ({}) !< {} ({})",
                pair[0].name,
                pair[0].rank,
                pair[1].name,
                pair[1].rank
            );
        }
    }

    /// Cross-layer inversion — store lock held, scheduler lock acquired —
    /// trips the checker exactly like a same-layer inversion. (This is
    /// the nesting the help-while-holding-a-claim deadlock would need.)
    ///
    /// Gated on `check`: under a plain `cargo test`, `prophet-mc` is
    /// compiled as a dependency without `cfg(test)`, so its tracking is
    /// inert from this crate. The CI `--features check` lane runs this.
    #[cfg(feature = "check")]
    #[test]
    fn cross_layer_inversion_trips_the_checker() {
        let store_side = OrderedMutex::new(rank::INFLIGHT_TABLE, ());
        let scheduler_side = OrderedMutex::new(SCHEDULER_STATE, ());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _t = store_side.lock();
            let _s = scheduler_side.lock();
        }));
        let payload = result.expect_err("inversion must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        assert!(
            msg.contains("scheduler state") && msg.contains("store inflight table"),
            "got: {msg}"
        );
    }
}
