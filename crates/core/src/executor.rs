//! The batched evaluation executor: the paper's Figure-1 cycle, pipelined
//! over a whole batch of parameter points.
//!
//! The Figure-1 loop — Guide proposes an instance, the Storage Manager is
//! probed, a fingerprint hit re-maps stored samples, a miss runs the Monte
//! Carlo simulation whose results feed back into the store — was executed
//! one point at a time by `Engine::evaluate`. Offline sweeps and online
//! graph refreshes, however, always know dozens of points up front; this
//! module makes the *batch* the unit of work and maps each Figure-1 stage
//! onto a batch-wide phase:
//!
//! | Figure-1 stage           | batch phase                                 |
//! |--------------------------|---------------------------------------------|
//! | Guide emits instances    | callers submit `&[ParamPoint]` (deduplicated)|
//! | Storage Manager lookup   | *plan*: per-point exact-cache check plus an  |
//! |                          | in-flight claim ([`SharedBasisStore::try_claim`]) |
//! | fingerprint probe        | *probe*: claimed points fingerprint in       |
//! |                          | parallel across the worker pool              |
//! | correlation search       | *match*: one summary-indexed                 |
//! |                          | [`SharedBasisStore::find_correlated_batch`]  |
//! |                          | scan — candidates whose fingerprint-summary  |
//! |                          | bound cannot beat the best match are pruned  |
//! |                          | (`EngineConfig::match_index`), the survivors |
//! |                          | score in parallel waves                      |
//! | re-map on a hit          | *remap*: mapped sample reconstruction,       |
//! |                          | parallel across hits                         |
//! | simulate on a miss       | *simulate*: misses partitioned across the    |
//! |                          | scoped worker pool — point-level             |
//! |                          | parallelism, not just world-level            |
//! | results feed the store   | *publish*: completions insert basis entries  |
//! |                          | and wake cross-session waiters               |
//!
//! Two properties the phases preserve:
//!
//! * **Work deduplication.** The plan phase claims each point through the
//!   shared store's in-flight table, so N sessions evaluating the same cold
//!   point perform exactly one simulation — the other N−1 block on the
//!   owner's [`WaitHandle`] and reuse its published samples (counted as
//!   `inflight_waits`). Within one batch, duplicate points collapse to a
//!   single evaluation, and work counters count unique points.
//! * **Determinism.** Simulation seeds depend only on `(root seed, world,
//!   point)`, candidate scanning orders sources by insertion stamp, and
//!   phase results are published in batch order — so the samples, the
//!   `worlds_simulated` count, and the chosen mapping sources are all
//!   independent of `threads`.
//!
//! Phase wall-clock lands in `EngineMetrics::probe_nanos` (probe + match +
//! remap) and `EngineMetrics::sim_nanos` (simulate), giving sweeps a true
//! probe-vs-simulation split as the caller experiences it.
//!
//! This module is the *blocking reference tier*: its parallel phases fan
//! out on per-call `std::thread::scope` pools and the call seizes the
//! caller until the batch completes. Engines handed out by the
//! [`Prophet`](crate::service::Prophet) service run the same pipeline
//! through the service's long-lived [`scheduler`](crate::scheduler)
//! instead — the phases become priority-interleaved pool chunks, and this
//! path remains as the differential baseline (`tests/jobs.rs` proves the
//! two produce bit-identical results), exactly as the scalar executor
//! backs the vectorized tier and the exhaustive scan backs the match
//! index.
//!
//! [`SharedBasisStore::try_claim`]: prophet_mc::SharedBasisStore::try_claim
//! [`SharedBasisStore::find_correlated_batch`]: prophet_mc::SharedBasisStore::find_correlated_batch
//! [`WaitHandle`]: prophet_mc::WaitHandle

use std::collections::HashMap;
use std::sync::Arc;

use prophet_fingerprint::{Fingerprint, Mapping};
use prophet_mc::{BasisHit, InflightGuard, ParamPoint, SampleSet, TryClaim, WaitHandle};

use crate::engine::{Engine, EvalOutcome};
use crate::error::ProphetResult;
use crate::metrics::Stopwatch;

impl Engine {
    /// Evaluate the scenario at a batch of parameter points, returning one
    /// `(samples, outcome)` per input point, in input order.
    ///
    /// Duplicate points are evaluated once and their result shared. Points
    /// already being simulated by a concurrent session are not duplicated:
    /// this call blocks on the in-flight owner and reuses its result
    /// (outcome [`EvalOutcome::Cached`], counted in
    /// `EngineMetrics::inflight_waits`).
    pub fn evaluate_batch(
        &self,
        points: &[ParamPoint],
    ) -> ProphetResult<Vec<(SampleSet, EvalOutcome)>> {
        if points.is_empty() {
            return Ok(Vec::new());
        }

        // ---- dedupe: unique points in first-seen order.
        let (unique, slot_of) = dedupe_points(points);

        let worlds_per_point = self.config().worlds_per_point;
        let threads = self.config().threads.max(1);
        let use_fingerprints =
            self.config().fingerprints_enabled && !self.stochastic_columns().is_empty();
        let store = self.basis_store();

        // ---- plan: exact-cache check + in-flight claim per unique point.
        let mut results: Vec<Option<(SampleSet, EvalOutcome)>> =
            (0..unique.len()).map(|_| None).collect();
        let mut guards: Vec<Option<InflightGuard>> = (0..unique.len()).map(|_| None).collect();
        let mut waits: Vec<Option<WaitHandle>> = (0..unique.len()).map(|_| None).collect();
        let mut owned: Vec<usize> = Vec::new();
        for (i, point) in unique.iter().enumerate() {
            match store.try_claim(point, worlds_per_point) {
                TryClaim::Ready { samples, .. } => {
                    self.bump(|m| m.points_cached += 1);
                    results[i] = Some((self.to_sample_set(point, &samples), EvalOutcome::Cached));
                }
                TryClaim::Owner(guard) => {
                    guards[i] = Some(guard);
                    owned.push(i);
                }
                TryClaim::Pending(handle) => waits[i] = Some(handle),
            }
        }

        // ---- probe + match + remap (the fingerprint phase).
        let mut probes: Vec<Option<HashMap<String, Fingerprint>>> =
            (0..unique.len()).map(|_| None).collect();
        let mut to_simulate: Vec<usize> = Vec::new();
        if use_fingerprints && !owned.is_empty() {
            let phase = Stopwatch::start();
            let owned_points: Vec<&ParamPoint> = owned.iter().map(|&i| &unique[i]).collect();
            let probe_results =
                parallel_map(&owned_points, threads, |p| self.probe_fingerprints(p));
            let mut owned_probes: Vec<HashMap<String, Fingerprint>> =
                Vec::with_capacity(owned.len());
            for r in probe_results {
                owned_probes.push(r?);
            }
            self.bump(|m| m.batch_probes += owned.len() as u64);

            let match_start = Stopwatch::start();
            let (hits, scan) = store.find_correlated_batch_scan(
                &owned_probes,
                self.stochastic_columns(),
                &self.config().detector,
                threads,
                self.config().match_index,
            );
            // Probe evaluation and remapping self-time into
            // `fingerprint_time`; the match scan is the remaining share of
            // the phase's per-call work.
            let match_elapsed = match_start.elapsed();
            self.bump(|m| {
                m.fingerprint_time += match_elapsed;
                m.match_scan_nanos += match_elapsed.as_nanos() as u64;
                m.candidates_scanned += scan.candidates_scanned;
                m.candidates_pruned += scan.candidates_pruned;
            });
            for (pos, probe) in owned_probes.into_iter().enumerate() {
                probes[owned[pos]] = Some(probe);
            }

            // Remap every hit in parallel, then publish in batch order.
            let mut hit_items: Vec<(usize, BasisHit)> = Vec::new();
            for (pos, hit) in hits.into_iter().enumerate() {
                match hit {
                    Some(hit) => hit_items.push((owned[pos], hit)),
                    None => to_simulate.push(owned[pos]),
                }
            }
            let remapped = parallel_map(&hit_items, threads, |(i, hit)| {
                self.remap_samples(&unique[*i], &hit.samples, &hit.mappings, hit.worlds)
            });
            for ((i, hit), mapped) in hit_items.into_iter().zip(remapped) {
                let mapped = mapped?;
                let exact = hit.mappings.values().all(Mapping::is_exact);
                let guard = guards[i]
                    .take()
                    .expect("invariant: every hit point holds its claim guard");
                guard.complete(
                    probes[i]
                        .take()
                        .expect("invariant: every hit point was probed"),
                    Arc::new(mapped.clone()),
                    hit.worlds,
                    false,
                );
                self.bump(|m| m.points_mapped += 1);
                results[i] = Some((
                    self.to_sample_set(&unique[i], &mapped),
                    EvalOutcome::Mapped {
                        from: hit.source,
                        exact,
                    },
                ));
            }
            self.bump(|m| m.probe_nanos += phase.elapsed_nanos());
        } else {
            to_simulate = owned;
        }

        // ---- simulate misses across the worker pool. With at least
        // `threads` misses, point-level parallelism saturates the pool with
        // single-threaded simulations; with fewer misses than threads,
        // each point instead world-parallelizes sequentially so no worker
        // sits idle. The world→sample assignment is seed-based, so every
        // sample and counter is identical under either schedule.
        if !to_simulate.is_empty() {
            let phase = Stopwatch::start();
            let miss_points: Vec<&ParamPoint> = to_simulate.iter().map(|&i| &unique[i]).collect();
            let simulated: Vec<ProphetResult<_>> = if miss_points.len() < threads {
                miss_points
                    .iter()
                    .map(|p| self.simulate_full(p, true))
                    .collect()
            } else {
                parallel_map(&miss_points, threads, |p| self.simulate_full(p, false))
            };
            for (&i, sim) in to_simulate.iter().zip(simulated) {
                let samples = sim?;
                let guard = guards[i]
                    .take()
                    .expect("invariant: every missed point holds its claim guard");
                guard.complete(
                    probes[i].take().unwrap_or_default(),
                    Arc::new(samples.clone()),
                    worlds_per_point,
                    true,
                );
                self.bump(|m| m.points_simulated += 1);
                results[i] = Some((
                    self.to_sample_set(&unique[i], &samples),
                    EvalOutcome::Simulated,
                ));
            }
            self.bump(|m| m.sim_nanos += phase.elapsed_nanos());
        }

        // ---- resolve cross-session waits last, so our own publications
        // are already out (two sessions waiting on each other's points
        // therefore cannot deadlock).
        for i in 0..unique.len() {
            if let Some(handle) = waits[i].take() {
                results[i] = Some(self.resolve_wait(&unique[i], handle)?);
            }
        }

        Ok(slot_of
            .into_iter()
            .map(|i| {
                results[i]
                    .clone()
                    .expect("invariant: every unique point resolves to a result")
            })
            .collect())
    }

    /// Block on another session's in-flight simulation of `point`. If the
    /// owner abandons it (error, or a store clear mid-flight), or publishes
    /// fewer worlds than this engine requires (shared store, differing
    /// `worlds_per_point`), re-claim: becoming the owner means
    /// re-simulating at this engine's own depth. (Crate-visible: the
    /// scheduled pipeline in [`crate::scheduler`] resolves its waits
    /// through the same path.)
    pub(crate) fn resolve_wait(
        &self,
        point: &ParamPoint,
        handle: WaitHandle,
    ) -> ProphetResult<(SampleSet, EvalOutcome)> {
        let mut handle = Some(handle);
        loop {
            if let Some(h) = handle.take() {
                if let Some((samples, worlds)) = h.wait() {
                    if worlds >= self.config().worlds_per_point {
                        self.bump(|m| {
                            m.points_cached += 1;
                            m.inflight_waits += 1;
                        });
                        return Ok((self.to_sample_set(point, &samples), EvalOutcome::Cached));
                    }
                    // Under-provisioned publish: fall through and re-claim,
                    // exactly as the Ready path's min-worlds filter would.
                }
            }
            match self
                .basis_store()
                .try_claim(point, self.config().worlds_per_point)
            {
                TryClaim::Ready { samples, .. } => {
                    self.bump(|m| m.points_cached += 1);
                    return Ok((self.to_sample_set(point, &samples), EvalOutcome::Cached));
                }
                TryClaim::Pending(h) => handle = Some(h),
                TryClaim::Owner(guard) => return self.run_owner(point, guard),
            }
        }
    }

    /// Probe one point's fingerprints and run the (single-probe) match
    /// scan, with the same metric accounting as the batched phase. Shared
    /// by [`Engine::run_owner`] and the progressive estimator in
    /// [`crate::session`].
    pub(crate) fn probe_and_match_one(
        &self,
        point: &ParamPoint,
    ) -> ProphetResult<(HashMap<String, Fingerprint>, Option<BasisHit>)> {
        let probes = self.probe_fingerprints(point)?;
        let match_start = Stopwatch::start();
        let (mut hits, scan) = self.basis_store().find_correlated_batch_scan(
            std::slice::from_ref(&probes),
            self.stochastic_columns(),
            &self.config().detector,
            1,
            self.config().match_index,
        );
        let hit = hits.pop().flatten();
        let match_elapsed = match_start.elapsed();
        self.bump(|m| {
            m.fingerprint_time += match_elapsed;
            m.match_scan_nanos += match_elapsed.as_nanos() as u64;
            m.candidates_scanned += scan.candidates_scanned;
            m.candidates_pruned += scan.candidates_pruned;
        });
        Ok((probes, hit))
    }

    /// Sequential Figure-1 cycle for one owned point — the retry path when
    /// a waited-on simulation was cancelled under us.
    fn run_owner(
        &self,
        point: &ParamPoint,
        guard: InflightGuard,
    ) -> ProphetResult<(SampleSet, EvalOutcome)> {
        let use_fingerprints =
            self.config().fingerprints_enabled && !self.stochastic_columns().is_empty();
        let mut probes = HashMap::new();
        if use_fingerprints {
            let phase = Stopwatch::start();
            let (point_probes, hit) = self.probe_and_match_one(point)?;
            probes = point_probes;
            if let Some(hit) = hit {
                let mapped = self.remap_samples(point, &hit.samples, &hit.mappings, hit.worlds)?;
                let exact = hit.mappings.values().all(Mapping::is_exact);
                guard.complete(probes, Arc::new(mapped.clone()), hit.worlds, false);
                self.bump(|m| {
                    m.points_mapped += 1;
                    m.probe_nanos += phase.elapsed_nanos();
                });
                return Ok((
                    self.to_sample_set(point, &mapped),
                    EvalOutcome::Mapped {
                        from: hit.source,
                        exact,
                    },
                ));
            }
            self.bump(|m| m.probe_nanos += phase.elapsed_nanos());
        }
        let phase = Stopwatch::start();
        let samples = self.simulate_full(point, true)?;
        guard.complete(
            probes,
            Arc::new(samples.clone()),
            self.config().worlds_per_point,
            true,
        );
        self.bump(|m| {
            m.points_simulated += 1;
            m.sim_nanos += phase.elapsed_nanos();
        });
        Ok((self.to_sample_set(point, &samples), EvalOutcome::Simulated))
    }
}

/// Collapse a point list to unique points in first-seen order plus, per
/// input slot, the index of its unique point. Shared by this blocking
/// pipeline and the scheduled one ([`crate::scheduler`]), so both agree on
/// what "the batch's unique points" means.
pub(crate) fn dedupe_points(points: &[ParamPoint]) -> (Vec<ParamPoint>, Vec<usize>) {
    let mut unique: Vec<ParamPoint> = Vec::new();
    let mut index_of: HashMap<ParamPoint, usize> = HashMap::with_capacity(points.len());
    let slot_of: Vec<usize> = points
        .iter()
        .map(|p| {
            *index_of.entry(p.clone()).or_insert_with(|| {
                unique.push(p.clone());
                unique.len() - 1
            })
        })
        .collect();
    (unique, slot_of)
}

/// Apply `f` to every item, fanning out across up to `threads` scoped
/// workers (contiguous chunks, results in input order). Single-item or
/// single-thread calls run inline with no spawn overhead.
fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("invariant: executor workers do not panic"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::scenario::Scenario;
    use prophet_models::demo_registry;

    fn engine(config: EngineConfig) -> Engine {
        let scenario = Scenario::figure2().unwrap();
        Engine::new(&scenario, demo_registry(), config).unwrap()
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            worlds_per_point: 60,
            ..EngineConfig::default()
        }
    }

    fn demo_point(current: i64, p1: i64, p2: i64, feature: i64) -> ParamPoint {
        ParamPoint::from_pairs([
            ("current", current),
            ("purchase1", p1),
            ("purchase2", p2),
            ("feature", feature),
        ])
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let e = engine(small_config());
        assert!(e.evaluate_batch(&[]).unwrap().is_empty());
        assert_eq!(e.metrics().points_total(), 0);
    }

    #[test]
    fn duplicate_points_in_one_batch_are_evaluated_once() {
        let e = engine(small_config());
        let p = demo_point(10, 16, 36, 12);
        let results = e.evaluate_batch(&[p.clone(), p.clone(), p]).unwrap();
        assert_eq!(results.len(), 3);
        for (samples, outcome) in &results {
            assert_eq!(*outcome, EvalOutcome::Simulated);
            assert_eq!(samples.samples("demand"), results[0].0.samples("demand"));
        }
        let m = e.metrics();
        assert_eq!(m.points_simulated, 1, "duplicates collapse to one");
        assert_eq!(m.points_total(), 1);
        assert_eq!(m.worlds_simulated, 60);
    }

    #[test]
    fn batch_results_keep_input_order() {
        let e = engine(small_config());
        let a = demo_point(5, 16, 36, 12);
        let b = demo_point(50, 0, 4, 44);
        let results = e
            .evaluate_batch(&[a.clone(), b.clone(), a.clone()])
            .unwrap();
        assert_eq!(results[0].0.point(), &a);
        assert_eq!(results[1].0.point(), &b);
        assert_eq!(results[2].0.point(), &a);
    }

    #[test]
    fn batch_phase_clocks_are_recorded() {
        let e = engine(small_config());
        let results = e
            .evaluate_batch(&[demo_point(5, 16, 36, 12), demo_point(5, 16, 36, 36)])
            .unwrap();
        assert_eq!(results.len(), 2);
        let m = e.metrics();
        assert_eq!(m.batch_probes, 2, "both cold points probed in batch");
        assert!(m.probe_nanos > 0, "probe phase wall-clock recorded");
        assert!(m.sim_nanos > 0, "simulate phase wall-clock recorded");
    }
}
