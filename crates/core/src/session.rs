//! Online sessions: user-directed parameter exploration.
//!
//! §3.2: guests set slider values; the first render "takes a few dozen
//! seconds to generate accurate statistics"; on a second adjustment "only
//! portions of the graph changed by the adjustment are re-rendered"; and
//! the GUI shows "which parameter values are proactively being explored
//! anticipating their future usage".
//!
//! [`OnlineSession`] reproduces those behaviours programmatically: sliders
//! are `set_param` calls, the graph is a set of [`Series`], each adjustment
//! returns an [`AdjustReport`] saying how many weeks were re-simulated vs
//! re-mapped vs untouched, and idle time can be donated to
//! [`OnlineSession::prefetch_tick`].
//!
//! Sessions are normally opened through
//! [`Prophet::online`](crate::service::Prophet::online), which wires every
//! session of a scenario onto one shared basis store — what one session
//! simulates, another re-maps.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use prophet_mc::aggregate::Welford;
use prophet_mc::guide::{Guide, PriorityGuide};
use prophet_mc::{ParamPoint, Series};
use prophet_sql::ast::GraphDirective;

use crate::engine::{Engine, EvalOutcome};
use crate::error::{ProphetError, ProphetResult};

/// What one slider adjustment (or initial render) cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjustReport {
    /// X-axis values in the graph (weeks in the demo).
    pub weeks_total: usize,
    /// Weeks whose distributions were fully re-simulated.
    pub weeks_simulated: usize,
    /// Weeks re-mapped from correlated basis entries.
    pub weeks_mapped: usize,
    /// Weeks served from the exact cache (unchanged by the adjustment).
    pub weeks_cached: usize,
    /// Wall-clock time for the refresh.
    pub wall: Duration,
}

impl AdjustReport {
    /// Fraction of the graph that needed fresh simulation — the paper's
    /// "only portions of the graph … are re-rendered" claim quantified.
    pub fn rerender_fraction(&self) -> f64 {
        if self.weeks_total == 0 {
            0.0
        } else {
            self.weeks_simulated as f64 / self.weeks_total as f64
        }
    }

    /// Weeks served without fresh simulation (mapped + cached).
    pub fn weeks_reused(&self) -> usize {
        self.weeks_mapped + self.weeks_cached
    }
}

/// Result of a progressive (anytime) estimate — experiment E8's
/// time-to-first-accurate-guess measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveEstimate {
    /// The converged (or best-effort) expectation.
    pub estimate: f64,
    /// Worlds consumed before convergence.
    pub worlds_used: usize,
    /// Whether a basis distribution seeded the estimate.
    pub used_basis: bool,
    /// Whether the convergence criterion was met.
    pub converged: bool,
}

/// An interactive what-if session over one scenario.
pub struct OnlineSession {
    engine: Engine,
    graph: GraphDirective,
    x_values: Vec<i64>,
    sliders: ParamPoint,
    series: Vec<Series>,
    guide: Box<dyn Guide + Send>,
    adjustments: u64,
}

impl std::fmt::Debug for OnlineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineSession")
            .field("sliders", &self.sliders)
            .field("adjustments", &self.adjustments)
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl OnlineSession {
    /// Open a session over an already-built engine, using the default
    /// [`PriorityGuide`] prefetch policy. The scenario must carry a
    /// `GRAPH OVER` directive; sliders for every non-axis parameter start
    /// at their domain minimum.
    pub fn open(engine: Engine) -> ProphetResult<Self> {
        let guide = Box::new(PriorityGuide::new(&engine.script().params));
        OnlineSession::open_with_guide(engine, guide)
    }

    /// Open a session with an explicit exploration strategy — the
    /// [`Prophet`](crate::service::Prophet) builder's `.exploration(…)`
    /// hook lands here.
    pub fn open_with_guide(engine: Engine, guide: Box<dyn Guide + Send>) -> ProphetResult<Self> {
        let script = engine.script();
        let graph = script
            .graph
            .clone()
            .ok_or(ProphetError::MissingGraphDirective)?;
        let x_decl = script.param(&graph.x_param).ok_or_else(|| {
            ProphetError::unknown_param(
                graph.x_param.clone(),
                script.params.iter().map(|p| p.name.clone()).collect(),
            )
        })?;
        let x_values = x_decl.domain.values();
        let mut sliders = ParamPoint::new();
        for p in &script.params {
            if p.name != graph.x_param {
                sliders.set(p.name.clone(), p.domain.values()[0]);
            }
        }
        let series = graph.series.iter().map(Series::new).collect();
        Ok(OnlineSession {
            engine,
            graph,
            x_values,
            sliders,
            series,
            guide,
            adjustments: 0,
        })
    }

    /// Current slider values (everything but the graph axis).
    pub fn sliders(&self) -> &ParamPoint {
        &self.sliders
    }

    /// Names of the adjustable parameters (everything but the graph axis),
    /// sorted.
    pub fn slider_names(&self) -> Vec<String> {
        self.sliders.iter().map(|(n, _)| n.to_owned()).collect()
    }

    /// The plotted series (column order follows the GRAPH directive).
    pub fn graph(&self) -> &[Series] {
        &self.series
    }

    /// One series by column name.
    pub fn series(&self, column: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.column == column)
    }

    /// The engine (metrics, basis introspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Snapshot of this session's engine work counters (simulated vs
    /// mapped vs cached points, in-flight waits, probe/simulation phase
    /// wall-clock).
    pub fn metrics(&self) -> crate::metrics::EngineMetrics {
        self.engine.metrics()
    }

    /// Number of slider adjustments performed so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Set one slider and refresh the graph. Returns what the refresh cost.
    ///
    /// Unknown names yield [`ProphetError::UnknownParam`] listing the valid
    /// sliders; the graph axis yields [`ProphetError::AxisParam`]; off-grid
    /// values yield [`ProphetError::OutOfDomain`].
    pub fn set_param(&mut self, name: &str, value: i64) -> ProphetResult<AdjustReport> {
        if name == self.graph.x_param {
            return Err(ProphetError::AxisParam {
                name: name.to_owned(),
            });
        }
        let decl = self
            .engine
            .script()
            .param(name)
            .ok_or_else(|| ProphetError::unknown_param(name, self.slider_names()))?;
        if !decl.domain.contains(value) {
            return Err(ProphetError::OutOfDomain {
                name: name.to_owned(),
                value,
            });
        }
        self.sliders.set(name.to_owned(), value);
        self.adjustments += 1;
        let report = self.refresh()?;
        // Anticipate the user's next move (paper §3.2) — the pluggable
        // strategy decides what, if anything, to queue.
        self.guide.observe_adjustment(&self.sliders, name);
        Ok(report)
    }

    /// Recompute every graph point for the current sliders, as one batch
    /// through the evaluation executor: every week probes the shared store
    /// in a single source-parallel scan and the changed weeks simulate
    /// point-parallel across the engine's worker pool.
    pub fn refresh(&mut self) -> ProphetResult<AdjustReport> {
        let start = Instant::now();
        let mut report = AdjustReport {
            weeks_total: self.x_values.len(),
            weeks_simulated: 0,
            weeks_mapped: 0,
            weeks_cached: 0,
            wall: Duration::ZERO,
        };
        let points: Vec<ParamPoint> = self
            .x_values
            .iter()
            .map(|&x| self.sliders.with(self.graph.x_param.clone(), x))
            .collect();
        let results = self.engine.evaluate_batch(&points)?;
        for (&x, (samples, outcome)) in self.x_values.iter().zip(&results) {
            match outcome {
                EvalOutcome::Cached => report.weeks_cached += 1,
                EvalOutcome::Mapped { .. } => report.weeks_mapped += 1,
                EvalOutcome::Simulated => report.weeks_simulated += 1,
            }
            for series in &mut self.series {
                series.update_from(x, samples);
            }
        }
        report.wall = start.elapsed();
        Ok(report)
    }

    /// Donate idle time: evaluate up to `budget` proactively queued points
    /// (slider-neighbourhood prefetch under the default strategy). Returns
    /// how many were evaluated.
    ///
    /// The drained points expand across every week of the graph axis and
    /// go through the executor as one batch, so anticipatory work gets the
    /// same batched probing and point-parallel simulation as a user-facing
    /// refresh.
    pub fn prefetch_tick(&mut self, budget: usize) -> ProphetResult<usize> {
        let mut drained = Vec::new();
        while drained.len() < budget {
            let Some(point) = self.guide.next_point() else {
                break;
            };
            drained.push(point);
        }
        if drained.is_empty() {
            return Ok(0);
        }
        // Prefetched points cover the whole graph for that slider setting,
        // so warm every week of the axis.
        let mut batch = Vec::with_capacity(drained.len() * self.x_values.len());
        for mut point in drained.iter().cloned() {
            for &x in &self.x_values {
                point.set(self.graph.x_param.clone(), x);
                batch.push(point.clone());
            }
        }
        self.engine.evaluate_batch(&batch)?;
        Ok(drained.len())
    }

    /// Progressive (anytime) expectation of `column` at the *current*
    /// sliders and week `x`: keeps adding Monte Carlo batches until the
    /// 95%-CI half-width drops below `epsilon`. A basis hit makes the very
    /// first guess accurate — the paper's lower "time to
    /// first-accurate-guess".
    pub fn progressive_expect(
        &mut self,
        column: &str,
        x: i64,
        epsilon: f64,
        batch: usize,
    ) -> ProphetResult<ProgressiveEstimate> {
        const Z95: f64 = 1.96;
        let point = self.sliders.with(self.graph.x_param.clone(), x);
        let (samples, outcome) = self.engine.evaluate(&point)?;
        let xs = samples
            .samples(column)
            .ok_or_else(|| ProphetError::unknown_column(column, self.engine.output_columns()))?;
        let mut acc = Welford::new();
        let used_basis = !matches!(outcome, EvalOutcome::Simulated);
        let mut worlds_used = 0usize;
        // Feed the available samples batch by batch until converged; a
        // reused (cached/mapped) evaluation converges with zero fresh work,
        // a simulated one pays as it goes.
        for chunk in xs.chunks(batch.max(1)) {
            acc.extend(chunk);
            if !used_basis {
                worlds_used += chunk.len();
            }
            if acc.converged(epsilon, Z95) {
                return Ok(ProgressiveEstimate {
                    estimate: acc.mean().unwrap_or(f64::NAN),
                    worlds_used,
                    used_basis,
                    converged: true,
                });
            }
        }
        Ok(ProgressiveEstimate {
            estimate: acc.mean().unwrap_or(f64::NAN),
            worlds_used,
            used_basis,
            converged: acc.converged(epsilon, Z95),
        })
    }

    /// All series as `(column, metric, points)` rows for CSV export.
    #[allow(clippy::type_complexity)] // a one-off export row; a named type would obscure it
    pub fn export_series(&self) -> Vec<(String, String, Vec<(f64, f64)>)> {
        self.series
            .iter()
            .map(|s| (s.column.clone(), s.metric.to_string(), s.xy()))
            .collect()
    }

    /// Map of current parameter values (for display).
    pub fn parameter_state(&self) -> HashMap<String, i64> {
        self.sliders
            .iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::scenario::Scenario;
    use prophet_models::demo_registry;

    fn session(worlds: usize) -> OnlineSession {
        let scenario = Scenario::figure2().unwrap();
        let engine = Engine::new(
            &scenario,
            demo_registry(),
            EngineConfig {
                worlds_per_point: worlds,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        OnlineSession::open(engine).unwrap()
    }

    #[test]
    fn construction_requires_graph_directive() {
        let scenario =
            Scenario::parse("DECLARE PARAMETER @p AS SET (1);\nSELECT @p AS x INTO r;").unwrap();
        let engine = Engine::new(&scenario, demo_registry(), EngineConfig::default()).unwrap();
        let err = OnlineSession::open(engine);
        assert!(
            matches!(err, Err(ProphetError::MissingGraphDirective)),
            "{err:?}"
        );
    }

    #[test]
    fn sliders_start_at_domain_minima() {
        let s = session(16);
        assert_eq!(s.sliders().get("purchase1"), Some(0));
        assert_eq!(s.sliders().get("purchase2"), Some(0));
        assert_eq!(s.sliders().get("feature"), Some(12));
        assert_eq!(s.sliders().get("current"), None, "axis is not a slider");
        assert_eq!(s.slider_names(), ["feature", "purchase1", "purchase2"]);
    }

    #[test]
    fn first_refresh_computes_every_week_with_no_cache_hits() {
        let mut s = session(24);
        let r = s.refresh().unwrap();
        assert_eq!(r.weeks_total, 53);
        // A cold start has nothing cached; every week is either simulated
        // or — for strongly week-to-week-correlated stretches of the
        // Markovian capacity chain — mapped from an earlier week of the
        // same sweep (the intra-sweep mappings Figure 4 visualizes).
        assert_eq!(r.weeks_cached, 0);
        assert_eq!(r.weeks_simulated + r.weeks_mapped, 53);
        assert!(
            r.weeks_simulated >= 20,
            "cold start must do real work: {r:?}"
        );
        // graph got all three series, fully populated
        assert_eq!(s.graph().len(), 3);
        for series in s.graph() {
            assert_eq!(series.points.len(), 53);
        }
    }

    #[test]
    fn second_adjustment_rerenders_only_a_fraction() {
        let mut s = session(24);
        s.refresh().unwrap();
        // Move the second purchase later: weeks before its deployment are
        // unchanged (identity/offset mapped), weeks after map too.
        let r = s.set_param("purchase2", 40).unwrap();
        assert_eq!(r.weeks_total, 53);
        assert!(
            r.rerender_fraction() < 0.5,
            "adjustment should re-simulate a minority of weeks, got {}",
            r.rerender_fraction()
        );
        assert!(r.weeks_reused() > 26, "most weeks reused: {r:?}");
    }

    #[test]
    fn setting_axis_or_bad_values_is_rejected_with_typed_errors() {
        let mut s = session(8);
        assert!(matches!(
            s.set_param("current", 3),
            Err(ProphetError::AxisParam { ref name }) if name == "current"
        ));
        assert!(matches!(
            s.set_param("purchase1", 3),
            Err(ProphetError::OutOfDomain { ref name, value: 3 }) if name == "purchase1"
        ));
        match s.set_param("nope", 0) {
            Err(ProphetError::UnknownParam { name, available }) => {
                assert_eq!(name, "nope");
                assert_eq!(available, ["feature", "purchase1", "purchase2"]);
            }
            other => panic!("expected UnknownParam, got {other:?}"),
        }
        assert_eq!(s.adjustments(), 0);
    }

    #[test]
    fn overload_series_reacts_to_feature_release() {
        let mut s = session(48);
        s.set_param("purchase1", 16).unwrap();
        s.set_param("purchase2", 36).unwrap();
        s.refresh().unwrap();
        let overload = s.series("overload").unwrap();
        // Before the feature release (week 12) and with 10k cores vs ~8k
        // demand, overload is rare; after release and before purchase1
        // deploys (week 16+lag), it spikes.
        let before = overload.at(5).unwrap().y;
        let spike = overload.at(15).unwrap().y;
        assert!(before < 0.2, "early overload should be rare, got {before}");
        assert!(
            spike > before,
            "overload must rise after feature release: {before} → {spike}"
        );
    }

    #[test]
    fn prefetch_tick_consumes_anticipated_neighbours() {
        let mut s = session(8);
        s.refresh().unwrap();
        s.set_param("purchase2", 36).unwrap(); // queues neighbours 32 and 40
        let done = s.prefetch_tick(8).unwrap();
        assert_eq!(done, 2, "two domain neighbours should be prefetched");
        // prefetched points now serve from cache: adjusting to a prefetched
        // value re-renders nothing
        let r = s.set_param("purchase2", 40).unwrap();
        assert_eq!(r.weeks_simulated, 0, "{r:?}");
    }

    #[test]
    fn custom_guide_strategy_replaces_prefetch_policy() {
        /// A strategy that never prefetches anything.
        struct NoPrefetch;
        impl Guide for NoPrefetch {
            fn next_point(&mut self) -> Option<ParamPoint> {
                None
            }
        }
        let scenario = Scenario::figure2().unwrap();
        let engine = Engine::new(
            &scenario,
            demo_registry(),
            EngineConfig {
                worlds_per_point: 8,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut s = OnlineSession::open_with_guide(engine, Box::new(NoPrefetch)).unwrap();
        s.set_param("purchase2", 36).unwrap();
        assert_eq!(s.prefetch_tick(8).unwrap(), 0, "NoPrefetch queues nothing");
    }

    #[test]
    fn progressive_estimate_converges_faster_warm() {
        let mut s = session(200);
        s.refresh().unwrap();
        // cold engine for comparison
        let mut cold = session(200);
        let warm = s.progressive_expect("overload", 20, 0.05, 20).unwrap();
        let cold_est = cold.progressive_expect("overload", 20, 0.05, 20).unwrap();
        assert!(warm.used_basis);
        assert!(!cold_est.used_basis);
        assert_eq!(warm.worlds_used, 0, "warm estimate needs no fresh worlds");
        assert!(cold_est.worlds_used > 0);
        assert!((warm.estimate - cold_est.estimate).abs() < 0.15);
    }

    #[test]
    fn export_series_shape() {
        let mut s = session(8);
        s.refresh().unwrap();
        let exported = s.export_series();
        assert_eq!(exported.len(), 3);
        assert_eq!(exported[0].0, "overload");
        assert_eq!(exported[0].1, "EXPECT");
        assert_eq!(exported[0].2.len(), 53);
    }
}
