//! Online sessions: user-directed parameter exploration.
//!
//! §3.2: guests set slider values; the first render "takes a few dozen
//! seconds to generate accurate statistics"; on a second adjustment "only
//! portions of the graph changed by the adjustment are re-rendered"; and
//! the GUI shows "which parameter values are proactively being explored
//! anticipating their future usage".
//!
//! [`OnlineSession`] reproduces those behaviours programmatically: sliders
//! are `set_param` calls, the graph is a set of [`Series`], each adjustment
//! returns an [`AdjustReport`] saying how many weeks were re-simulated vs
//! re-mapped vs untouched, and idle time can be donated to
//! [`OnlineSession::prefetch_tick`].
//!
//! Sessions are normally opened through
//! [`Prophet::online`](crate::service::Prophet::online), which wires every
//! session of a scenario onto one shared basis store — what one session
//! simulates, another re-maps.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use prophet_mc::aggregate::Welford;
use prophet_mc::guide::{Guide, PriorityGuide};
use prophet_mc::{ParamPoint, SampleSet, Series, TryClaim};
use prophet_sql::ast::GraphDirective;

use crate::engine::{Engine, EvalOutcome};
use crate::error::{ProphetError, ProphetResult};
use crate::job::Priority;
use crate::metrics::Stopwatch;
use crate::scheduler::Scheduler;

/// What one slider adjustment (or initial render) cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjustReport {
    /// X-axis values in the graph (weeks in the demo).
    pub weeks_total: usize,
    /// Weeks whose distributions were fully re-simulated.
    pub weeks_simulated: usize,
    /// Weeks re-mapped from correlated basis entries.
    pub weeks_mapped: usize,
    /// Weeks served from the exact cache (unchanged by the adjustment).
    pub weeks_cached: usize,
    /// Wall-clock time for the refresh.
    pub wall: Duration,
}

impl AdjustReport {
    /// Fraction of the graph that needed fresh simulation — the paper's
    /// "only portions of the graph … are re-rendered" claim quantified.
    pub fn rerender_fraction(&self) -> f64 {
        if self.weeks_total == 0 {
            0.0
        } else {
            self.weeks_simulated as f64 / self.weeks_total as f64
        }
    }

    /// Weeks served without fresh simulation (mapped + cached).
    pub fn weeks_reused(&self) -> usize {
        self.weeks_mapped + self.weeks_cached
    }
}

/// Result of a progressive (anytime) estimate — experiment E8's
/// time-to-first-accurate-guess measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveEstimate {
    /// The converged (or best-effort) expectation.
    pub estimate: f64,
    /// Worlds consumed before convergence.
    pub worlds_used: usize,
    /// Whether a basis distribution seeded the estimate.
    pub used_basis: bool,
    /// Whether the convergence criterion was met.
    pub converged: bool,
}

/// An interactive what-if session over one scenario.
pub struct OnlineSession {
    engine: Arc<Engine>,
    graph: GraphDirective,
    x_values: Vec<i64>,
    sliders: ParamPoint,
    series: Vec<Series>,
    guide: Box<dyn Guide + Send>,
    adjustments: u64,
    /// Present when opened through a [`Prophet`](crate::service::Prophet):
    /// refreshes and prefetches then execute as submitted jobs on the
    /// service's shared scheduler (interactive work at [`Priority::High`],
    /// idle prefetch at [`Priority::Low`]) instead of building per-call
    /// thread pools.
    scheduler: Option<Arc<Scheduler>>,
}

impl std::fmt::Debug for OnlineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineSession")
            .field("sliders", &self.sliders)
            .field("adjustments", &self.adjustments)
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl OnlineSession {
    /// Open a session over an already-built engine, using the default
    /// [`PriorityGuide`] prefetch policy. The scenario must carry a
    /// `GRAPH OVER` directive; sliders for every non-axis parameter start
    /// at their domain minimum.
    pub fn open(engine: Engine) -> ProphetResult<Self> {
        let guide = Box::new(PriorityGuide::new(&engine.script().params));
        OnlineSession::open_with_guide(engine, guide)
    }

    /// Open a session with an explicit exploration strategy — the
    /// [`Prophet`](crate::service::Prophet) builder's `.exploration(…)`
    /// hook lands here.
    pub fn open_with_guide(engine: Engine, guide: Box<dyn Guide + Send>) -> ProphetResult<Self> {
        OnlineSession::build(Arc::new(engine), guide, None)
    }

    /// Open over a shared engine, evaluating through the service's
    /// scheduler ([`Prophet::online`]'s constructor).
    ///
    /// [`Prophet::online`]: crate::service::Prophet::online
    pub(crate) fn open_scheduled(
        engine: Arc<Engine>,
        guide: Box<dyn Guide + Send>,
        scheduler: Arc<Scheduler>,
    ) -> ProphetResult<Self> {
        OnlineSession::build(engine, guide, Some(scheduler))
    }

    fn build(
        engine: Arc<Engine>,
        guide: Box<dyn Guide + Send>,
        scheduler: Option<Arc<Scheduler>>,
    ) -> ProphetResult<Self> {
        let script = engine.script();
        let graph = script
            .graph
            .clone()
            .ok_or(ProphetError::MissingGraphDirective)?;
        let x_decl = script.param(&graph.x_param).ok_or_else(|| {
            ProphetError::unknown_param(
                graph.x_param.clone(),
                script.params.iter().map(|p| p.name.clone()).collect(),
            )
        })?;
        let x_values = x_decl.domain.values();
        let mut sliders = ParamPoint::new();
        for p in &script.params {
            if p.name != graph.x_param {
                sliders.set(p.name.clone(), p.domain.values()[0]);
            }
        }
        let series = graph.series.iter().map(Series::new).collect();
        Ok(OnlineSession {
            engine,
            graph,
            x_values,
            sliders,
            series,
            guide,
            adjustments: 0,
            scheduler,
        })
    }

    /// Evaluate a batch of points: as a submitted job on the service
    /// scheduler when this session is service-backed (so other sessions'
    /// higher-priority chunks can interleave), directly on the engine's
    /// blocking executor otherwise. Results are bit-identical either way
    /// (the `tests/jobs.rs` differential suite enforces it).
    fn evaluate_points(
        &self,
        points: Vec<ParamPoint>,
        priority: Priority,
    ) -> ProphetResult<Vec<(SampleSet, EvalOutcome)>> {
        match &self.scheduler {
            Some(scheduler) => scheduler
                .submit_batch(Arc::clone(&self.engine), points, priority)
                .wait()?
                .into_points(),
            None => self.engine.evaluate_batch(&points),
        }
    }

    /// Current slider values (everything but the graph axis).
    pub fn sliders(&self) -> &ParamPoint {
        &self.sliders
    }

    /// Names of the adjustable parameters (everything but the graph axis),
    /// sorted.
    pub fn slider_names(&self) -> Vec<String> {
        self.sliders.iter().map(|(n, _)| n.to_owned()).collect()
    }

    /// The plotted series (column order follows the GRAPH directive).
    pub fn graph(&self) -> &[Series] {
        &self.series
    }

    /// One series by column name.
    pub fn series(&self, column: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.column == column)
    }

    /// The engine (metrics, basis introspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Snapshot of this session's engine work counters (simulated vs
    /// mapped vs cached points, in-flight waits, probe/simulation phase
    /// wall-clock).
    pub fn metrics(&self) -> crate::metrics::EngineMetrics {
        self.engine.metrics()
    }

    /// Number of slider adjustments performed so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Set one slider and refresh the graph. Returns what the refresh cost.
    ///
    /// Unknown names yield [`ProphetError::UnknownParam`] listing the valid
    /// sliders; the graph axis yields [`ProphetError::AxisParam`]; off-grid
    /// values yield [`ProphetError::OutOfDomain`].
    pub fn set_param(&mut self, name: &str, value: i64) -> ProphetResult<AdjustReport> {
        if name == self.graph.x_param {
            return Err(ProphetError::AxisParam {
                name: name.to_owned(),
            });
        }
        let decl = self
            .engine
            .script()
            .param(name)
            .ok_or_else(|| ProphetError::unknown_param(name, self.slider_names()))?;
        if !decl.domain.contains(value) {
            return Err(ProphetError::OutOfDomain {
                name: name.to_owned(),
                value,
            });
        }
        self.sliders.set(name.to_owned(), value);
        self.adjustments += 1;
        let report = self.refresh()?;
        // Anticipate the user's next move (paper §3.2) — the pluggable
        // strategy decides what, if anything, to queue.
        self.guide.observe_adjustment(&self.sliders, name);
        Ok(report)
    }

    /// Recompute every graph point for the current sliders, as one batch:
    /// every week probes the shared store in a single source-parallel scan
    /// and the changed weeks simulate in parallel. Service-backed sessions
    /// run the batch as a [`Priority::High`] job on the shared scheduler —
    /// this call stays blocking (it is `submit(refresh).wait()`), but the
    /// work interleaves with, and overtakes, lower-priority jobs instead
    /// of queueing behind them.
    pub fn refresh(&mut self) -> ProphetResult<AdjustReport> {
        let start = Stopwatch::start();
        let mut report = AdjustReport {
            weeks_total: self.x_values.len(),
            weeks_simulated: 0,
            weeks_mapped: 0,
            weeks_cached: 0,
            wall: Duration::ZERO,
        };
        let points: Vec<ParamPoint> = self
            .x_values
            .iter()
            .map(|&x| self.sliders.with(self.graph.x_param.clone(), x))
            .collect();
        let results = self.evaluate_points(points, Priority::High)?;
        for (&x, (samples, outcome)) in self.x_values.iter().zip(&results) {
            match outcome {
                EvalOutcome::Cached => report.weeks_cached += 1,
                EvalOutcome::Mapped { .. } => report.weeks_mapped += 1,
                EvalOutcome::Simulated => report.weeks_simulated += 1,
            }
            for series in &mut self.series {
                series.update_from(x, samples);
            }
        }
        report.wall = start.elapsed();
        Ok(report)
    }

    /// Donate idle time: evaluate up to `budget` proactively queued points
    /// (slider-neighbourhood prefetch under the default strategy). Returns
    /// how many were evaluated.
    ///
    /// The drained points expand across every week of the graph axis and
    /// go through as one batch, so anticipatory work gets the same batched
    /// probing and parallel simulation as a user-facing refresh — but on a
    /// service-backed session it runs as a [`Priority::Low`] job, so any
    /// interactive refresh submitted meanwhile overtakes it chunk by
    /// chunk.
    pub fn prefetch_tick(&mut self, budget: usize) -> ProphetResult<usize> {
        let mut drained = Vec::new();
        while drained.len() < budget {
            let Some(point) = self.guide.next_point() else {
                break;
            };
            drained.push(point);
        }
        if drained.is_empty() {
            return Ok(0);
        }
        // Prefetched points cover the whole graph for that slider setting,
        // so warm every week of the axis.
        let mut batch = Vec::with_capacity(drained.len() * self.x_values.len());
        for mut point in drained.iter().cloned() {
            for &x in &self.x_values {
                point.set(self.graph.x_param.clone(), x);
                batch.push(point.clone());
            }
        }
        self.evaluate_points(batch, Priority::Low)?;
        Ok(drained.len())
    }

    /// Progressive (anytime) expectation of `column` at the *current*
    /// sliders and week `x`: adds Monte Carlo work batch by batch until
    /// the 95%-CI half-width drops below `epsilon`. A basis hit makes the
    /// very first guess accurate — the paper's lower "time to
    /// first-accurate-guess".
    ///
    /// The estimate applies the job layer's chunk-at-a-time discipline
    /// at world granularity, *on the caller's thread* (the work is this
    /// session's own anytime loop, not a scheduler job — it holds the
    /// point's claim for the duration): a cold point simulates
    /// `batch`-world spans (the engine's world-span primitive keeps each
    /// span bit-identical to the corresponding slice of a full run,
    /// because the world→sample assignment is seed-based) and stops as
    /// soon as the criterion holds, instead of blocking on the whole
    /// `worlds_per_point` budget up front. Whatever was simulated is published to the shared basis
    /// store — partial progress is observable, not discarded — and a
    /// point left below full depth is handed back to the guide
    /// ([`Guide::observe_partial`]), so its `pending` queue reflects the
    /// remaining work and an idle-time [`OnlineSession::prefetch_tick`]
    /// deepens the point later.
    pub fn progressive_expect(
        &mut self,
        column: &str,
        x: i64,
        epsilon: f64,
        batch: usize,
    ) -> ProphetResult<ProgressiveEstimate> {
        const Z95: f64 = 1.96;
        let batch = batch.max(1);
        let engine = Arc::clone(&self.engine);
        if !engine.output_columns().iter().any(|c| c == column) {
            return Err(ProphetError::unknown_column(
                column,
                engine.output_columns(),
            ));
        }
        let point = self.sliders.with(self.graph.x_param.clone(), x);
        let worlds_full = engine.config().worlds_per_point;
        let store = engine.basis_store();
        let mut acc = Welford::new();

        // Serve from existing basis work first: an exact entry at any
        // depth, another session's in-flight simulation, or a correlated
        // mapping — each converges with zero fresh worlds.
        let column_samples = |samples: &HashMap<String, Vec<f64>>| -> ProphetResult<Vec<f64>> {
            samples.get(column).cloned().ok_or_else(|| {
                ProphetError::Internal(format!("basis entry lacks samples for column `{column}`"))
            })
        };
        // An entry at *any* depth can serve the first guess, but if it is
        // shallower than the budget and the criterion still fails on its
        // samples, re-claim at full depth (the min-worlds filter then
        // skips the shallow entry) and deepen — a previously published
        // partial estimate must never dead-end tighter follow-ups.
        let mut min_worlds = 1usize;
        let mut wait = None;
        let mut resume: Option<(std::sync::Arc<prophet_mc::ColumnSamples>, usize)> = None;
        let guard = loop {
            if let Some(handle) = wait.take() {
                let handle: prophet_mc::WaitHandle = handle;
                // Another session owns this point's simulation: reuse it.
                if let Some((samples, worlds)) = handle.wait() {
                    let xs = column_samples(&samples)?;
                    let mut shared = Welford::new();
                    let est = feed_progressive(&mut shared, &xs, batch, epsilon, Z95);
                    if est.converged || worlds >= worlds_full {
                        engine.bump(|m| {
                            m.points_cached += 1;
                            m.inflight_waits += 1;
                        });
                        return Ok(est);
                    }
                    min_worlds = worlds_full;
                    resume = Some((samples, worlds));
                }
                // Abandoned or too shallow: fall through and re-claim.
            }
            match store.try_claim(&point, min_worlds) {
                TryClaim::Ready { samples, worlds } => {
                    let xs = column_samples(&samples)?;
                    let mut stored = Welford::new();
                    let est = feed_progressive(&mut stored, &xs, batch, epsilon, Z95);
                    if est.converged || worlds >= worlds_full {
                        engine.bump(|m| m.points_cached += 1);
                        return Ok(est);
                    }
                    min_worlds = worlds_full;
                    resume = Some((samples, worlds));
                }
                TryClaim::Pending(handle) => wait = Some(handle),
                TryClaim::Owner(guard) => break guard,
            }
        };

        // We own the point. A correlated hit still answers instantly…
        let use_fingerprints =
            engine.config().fingerprints_enabled && !engine.stochastic_columns().is_empty();
        let mut probes = HashMap::new();
        if use_fingerprints {
            let phase = Stopwatch::start();
            let (point_probes, hit) = engine.probe_and_match_one(&point)?;
            probes = point_probes;
            if let Some(hit) = hit {
                let mapped =
                    engine.remap_samples(&point, &hit.samples, &hit.mappings, hit.worlds)?;
                guard.complete(probes, Arc::new(mapped.clone()), hit.worlds, false);
                engine.bump(|m| {
                    m.points_mapped += 1;
                    m.probe_nanos += phase.elapsed_nanos();
                });
                let xs = column_samples(&mapped)?;
                return Ok(feed_progressive(&mut acc, &xs, batch, epsilon, Z95));
            }
            engine.bump(|m| m.probe_nanos += phase.elapsed_nanos());
        }

        // …a miss simulates chunk by chunk, stopping at convergence.
        // When deepening a shallow entry, resume from its stored samples:
        // the seed-based world→sample assignment makes worlds `0..k`
        // bit-identical to what re-simulation would produce, so only the
        // remainder is fresh work.
        let phase = Stopwatch::start();
        let mut all: HashMap<String, Vec<f64>> = HashMap::new();
        let mut done = 0usize;
        let mut converged = false;
        if let Some((stored, worlds)) = resume {
            all = (*stored).clone();
            acc.extend(&column_samples(&all)?[..worlds]);
            done = worlds;
        }
        let resumed_from = done;
        while done < worlds_full {
            let end = (done + batch).min(worlds_full);
            let span = engine.simulate_world_span(&point, done as u64..end as u64)?;
            for (name, values) in span {
                all.entry(name).or_default().extend(values);
            }
            acc.extend(&all[column][done..end]);
            done = end;
            if acc.converged(epsilon, Z95) {
                converged = true;
                break;
            }
        }
        // Publish what was simulated: a full-depth entry becomes a regular
        // matchable basis source; a partial one is exact-key-reusable (the
        // store's min-worlds filters protect full-depth consumers).
        guard.complete(probes, Arc::new(all), done, done == worlds_full);
        engine.bump(|m| {
            m.points_simulated += 1;
            m.sim_nanos += phase.elapsed_nanos();
        });
        if done < worlds_full {
            // The point stopped below full depth: queue the remainder with
            // the guide so idle time can finish it.
            self.guide.observe_partial(&point);
        }
        Ok(ProgressiveEstimate {
            estimate: acc.mean().unwrap_or(f64::NAN),
            // Fresh simulation work only — resumed worlds were reused.
            worlds_used: done - resumed_from,
            used_basis: false,
            converged,
        })
    }

    /// All series as `(column, metric, points)` rows for CSV export.
    #[allow(clippy::type_complexity)] // a one-off export row; a named type would obscure it
    pub fn export_series(&self) -> Vec<(String, String, Vec<(f64, f64)>)> {
        self.series
            .iter()
            .map(|s| (s.column.clone(), s.metric.to_string(), s.xy()))
            .collect()
    }

    /// Map of current parameter values (for display).
    pub fn parameter_state(&self) -> HashMap<String, i64> {
        self.sliders
            .iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect()
    }
}

/// Feed an already-available sample column into the accumulator chunk by
/// chunk until the criterion holds — the basis-hit path of
/// [`OnlineSession::progressive_expect`], converging with zero fresh
/// worlds.
fn feed_progressive(
    acc: &mut Welford,
    xs: &[f64],
    batch: usize,
    epsilon: f64,
    z: f64,
) -> ProgressiveEstimate {
    let mut converged = false;
    for chunk in xs.chunks(batch) {
        acc.extend(chunk);
        if acc.converged(epsilon, z) {
            converged = true;
            break;
        }
    }
    ProgressiveEstimate {
        estimate: acc.mean().unwrap_or(f64::NAN),
        worlds_used: 0,
        used_basis: true,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::scenario::Scenario;
    use prophet_models::demo_registry;

    fn session(worlds: usize) -> OnlineSession {
        let scenario = Scenario::figure2().unwrap();
        let engine = Engine::new(
            &scenario,
            demo_registry(),
            EngineConfig {
                worlds_per_point: worlds,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        OnlineSession::open(engine).unwrap()
    }

    #[test]
    fn construction_requires_graph_directive() {
        let scenario =
            Scenario::parse("DECLARE PARAMETER @p AS SET (1);\nSELECT @p AS x INTO r;").unwrap();
        let engine = Engine::new(&scenario, demo_registry(), EngineConfig::default()).unwrap();
        let err = OnlineSession::open(engine);
        assert!(
            matches!(err, Err(ProphetError::MissingGraphDirective)),
            "{err:?}"
        );
    }

    #[test]
    fn sliders_start_at_domain_minima() {
        let s = session(16);
        assert_eq!(s.sliders().get("purchase1"), Some(0));
        assert_eq!(s.sliders().get("purchase2"), Some(0));
        assert_eq!(s.sliders().get("feature"), Some(12));
        assert_eq!(s.sliders().get("current"), None, "axis is not a slider");
        assert_eq!(s.slider_names(), ["feature", "purchase1", "purchase2"]);
    }

    #[test]
    fn first_refresh_computes_every_week_with_no_cache_hits() {
        let mut s = session(24);
        let r = s.refresh().unwrap();
        assert_eq!(r.weeks_total, 53);
        // A cold start has nothing cached; every week is either simulated
        // or — for strongly week-to-week-correlated stretches of the
        // Markovian capacity chain — mapped from an earlier week of the
        // same sweep (the intra-sweep mappings Figure 4 visualizes).
        assert_eq!(r.weeks_cached, 0);
        assert_eq!(r.weeks_simulated + r.weeks_mapped, 53);
        assert!(
            r.weeks_simulated >= 20,
            "cold start must do real work: {r:?}"
        );
        // graph got all three series, fully populated
        assert_eq!(s.graph().len(), 3);
        for series in s.graph() {
            assert_eq!(series.points.len(), 53);
        }
    }

    #[test]
    fn second_adjustment_rerenders_only_a_fraction() {
        let mut s = session(24);
        s.refresh().unwrap();
        // Move the second purchase later: weeks before its deployment are
        // unchanged (identity/offset mapped), weeks after map too.
        let r = s.set_param("purchase2", 40).unwrap();
        assert_eq!(r.weeks_total, 53);
        assert!(
            r.rerender_fraction() < 0.5,
            "adjustment should re-simulate a minority of weeks, got {}",
            r.rerender_fraction()
        );
        assert!(r.weeks_reused() > 26, "most weeks reused: {r:?}");
    }

    #[test]
    fn setting_axis_or_bad_values_is_rejected_with_typed_errors() {
        let mut s = session(8);
        assert!(matches!(
            s.set_param("current", 3),
            Err(ProphetError::AxisParam { ref name }) if name == "current"
        ));
        assert!(matches!(
            s.set_param("purchase1", 3),
            Err(ProphetError::OutOfDomain { ref name, value: 3 }) if name == "purchase1"
        ));
        match s.set_param("nope", 0) {
            Err(ProphetError::UnknownParam { name, available }) => {
                assert_eq!(name, "nope");
                assert_eq!(available, ["feature", "purchase1", "purchase2"]);
            }
            other => panic!("expected UnknownParam, got {other:?}"),
        }
        assert_eq!(s.adjustments(), 0);
    }

    #[test]
    fn overload_series_reacts_to_feature_release() {
        let mut s = session(48);
        s.set_param("purchase1", 16).unwrap();
        s.set_param("purchase2", 36).unwrap();
        s.refresh().unwrap();
        let overload = s.series("overload").unwrap();
        // Before the feature release (week 12) and with 10k cores vs ~8k
        // demand, overload is rare; after release and before purchase1
        // deploys (week 16+lag), it spikes.
        let before = overload.at(5).unwrap().y;
        let spike = overload.at(15).unwrap().y;
        assert!(before < 0.2, "early overload should be rare, got {before}");
        assert!(
            spike > before,
            "overload must rise after feature release: {before} → {spike}"
        );
    }

    #[test]
    fn prefetch_tick_consumes_anticipated_neighbours() {
        let mut s = session(8);
        s.refresh().unwrap();
        s.set_param("purchase2", 36).unwrap(); // queues neighbours 32 and 40
        let done = s.prefetch_tick(8).unwrap();
        assert_eq!(done, 2, "two domain neighbours should be prefetched");
        // prefetched points now serve from cache: adjusting to a prefetched
        // value re-renders nothing
        let r = s.set_param("purchase2", 40).unwrap();
        assert_eq!(r.weeks_simulated, 0, "{r:?}");
    }

    #[test]
    fn custom_guide_strategy_replaces_prefetch_policy() {
        /// A strategy that never prefetches anything.
        struct NoPrefetch;
        impl Guide for NoPrefetch {
            fn next_point(&mut self) -> Option<ParamPoint> {
                None
            }
        }
        let scenario = Scenario::figure2().unwrap();
        let engine = Engine::new(
            &scenario,
            demo_registry(),
            EngineConfig {
                worlds_per_point: 8,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut s = OnlineSession::open_with_guide(engine, Box::new(NoPrefetch)).unwrap();
        s.set_param("purchase2", 36).unwrap();
        assert_eq!(s.prefetch_tick(8).unwrap(), 0, "NoPrefetch queues nothing");
    }

    #[test]
    fn progressive_estimate_converges_faster_warm() {
        let mut s = session(200);
        s.refresh().unwrap();
        // cold engine for comparison
        let mut cold = session(200);
        let warm = s.progressive_expect("overload", 20, 0.05, 20).unwrap();
        let cold_est = cold.progressive_expect("overload", 20, 0.05, 20).unwrap();
        assert!(warm.used_basis);
        assert!(!cold_est.used_basis);
        assert_eq!(warm.worlds_used, 0, "warm estimate needs no fresh worlds");
        assert!(cold_est.worlds_used > 0);
        assert!((warm.estimate - cold_est.estimate).abs() < 0.15);
    }

    #[test]
    fn export_series_shape() {
        let mut s = session(8);
        s.refresh().unwrap();
        let exported = s.export_series();
        assert_eq!(exported.len(), 3);
        assert_eq!(exported[0].0, "overload");
        assert_eq!(exported[0].1, "EXPECT");
        assert_eq!(exported[0].2.len(), 53);
    }
}
