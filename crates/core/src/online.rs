//! Compatibility shim: online mode now lives in [`crate::session`].
//!
//! This module predates the [`Prophet`](crate::service::Prophet) service
//! facade and remains so `fuzzy_prophet::online::…` paths keep compiling
//! for one release. New code should use [`crate::session`] (types) and
//! [`crate::service`] (construction).

pub use crate::session::{AdjustReport, OnlineSession, ProgressiveEstimate};
