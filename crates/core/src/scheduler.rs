//! The shared job scheduler: one long-lived worker pool per
//! [`Prophet`](crate::service::Prophet), executing submitted jobs as
//! priority-interleaved chunks.
//!
//! # Why a scheduler
//!
//! Before this module, every evaluation call built its own
//! `std::thread::scope` pool and seized the caller until the last point
//! landed: an offline sweep monopolized the process, and an interactive
//! refresh submitted behind it waited for the whole sweep. The scheduler
//! inverts that: the service owns one worker pool, jobs are split into
//! chunk-sized slices of work, and the pool always runs the
//! highest-priority chunk available — so a [`Priority::High`] refresh's
//! chunks overtake a [`Priority::Low`] sweep's chunks mid-sweep instead of
//! queueing behind them.
//!
//! # Execution model
//!
//! Each job runs as a *driver* task plus many *chunk* tasks:
//!
//! * the **driver** executes the job's sequential skeleton — batch
//!   planning, store claims, the correlation match scan, publishing, and
//!   final ranking — and fans the embarrassingly parallel phases (probe
//!   evaluation, hit remapping, miss simulation) out to the pool as chunks
//!   of at most [`SchedulerConfig::chunk_points`] points;
//! * while a phase is outstanding the driver *helps*: it executes queued
//!   chunks (its own or, by priority, anyone else's) instead of sleeping,
//!   so a pool of `W` workers running `W` concurrent jobs cannot deadlock
//!   and never idles while chunk work is queued. A helping driver never
//!   starts another job's *driver*: chunks are pure, always-terminating
//!   computations, whereas a nested driver could block on store claims
//!   held by the suspended outer frame (deadlock) or run a whole foreign
//!   job inline ahead of the helper's own final answer (priority
//!   inversion) — only a worker's top-level loop starts drivers.
//!
//! The queue orders chunks by `(priority, job id, chunk sequence)`:
//! higher-priority jobs first, then older jobs, then earlier chunks.
//!
//! # Determinism: why a job's answer is bit-identical to the blocking path
//!
//! [`Engine::evaluate_batch`] is the reference semantics. Its batch
//! pipeline has exactly three parallel phases, and each is *independent
//! per point*: probe evaluation derives every fingerprint from fixed
//! canonical seeds, remapping is a pure function of the already-chosen
//! hit, and miss simulation seeds each world from `(root seed, world,
//! point)`. The scheduled pipeline (`run_batch`) keeps everything else
//! sequential on the driver, in the same order as the blocking path:
//!
//! * the store snapshot structure is preserved — all of a batch's probes
//!   match against the store state at batch start, never against siblings
//!   of the same batch, because the match scan runs once, on the driver,
//!   after every probe chunk has landed;
//! * publish order is preserved — the driver completes claims in batch
//!   order (hits first, then misses), so insertion stamps, and therefore
//!   future `(error, stamp)` tie-breaks, are identical to the blocking
//!   path at every chunk size and worker count;
//! * work accounting is preserved — the same primitives bump the same
//!   counters, and the match scan's scanned/pruned numbers are already
//!   thread-independent (PR 4's invariant).
//!
//! Chunking therefore changes *when* independent point computations run,
//! never *what* they compute or *in which order their results become
//! visible*. The differential suite in `tests/jobs.rs` enforces this
//! across every bundled scenario, chunk sizes {1, default, whole-sweep},
//! 1 vs 8 workers, and concurrent jobs at mixed priorities.
//!
//! # Cancellation
//!
//! [`JobHandle::cancel`](crate::job::JobHandle::cancel) is chunk-granular:
//! chunks never observe the flag mid-chunk, so an in-flight chunk always
//! finishes its points, and the driver publishes every completed result
//! before stopping — the shared basis store only ever sees complete,
//! fully-simulated entries, never a torn point. Claims for points whose
//! chunks were dropped are released (their `InflightGuard`s drop), so
//! concurrent sessions waiting on them re-claim and recover, exactly as
//! the store's cancel machinery already guarantees.
//!
//! # Concurrency conformance
//!
//! Every lock in this module is a rank-ordered wrapper from
//! [`crate::sync`] (the scheduler's locks hold ranks 10, 60 and 80 of
//! the workspace table), and [`SchedulerConfig::perturb`] arms the
//! seeded chaos scheduler that `tests/chaos.rs` sweeps to prove the
//! determinism argument above holds under adversarial interleavings.
//! `docs/CONCURRENCY.md` carries the full rank table, the store's
//! claim/publish protocol, and the lint rules that pin thread spawning
//! and raw lock construction to their sanctioned modules.
//!
//! # Observability
//!
//! The pool carries a [`Tracer`] (flight recorder + latency histograms,
//! configured through [`SchedulerConfig::trace`]): job lifecycle and
//! chunk queue events, driver phase spans, and queue-wait/service-time
//! histograms all flow through it, and [`JobHandle::trace`] /
//! [`Prophet::telemetry`](crate::service::Prophet::telemetry) read them
//! back. Tracing *observes* scheduling — no control path reads the
//! recorder — so the determinism argument above is untouched by it; the
//! default service-tier configuration records into a bounded ring. See
//! `docs/OBSERVABILITY.md` for the event taxonomy and clock model.
//!
//! [`JobHandle::trace`]: crate::job::JobHandle::trace
//! [`Engine::evaluate_batch`]: crate::engine::Engine::evaluate_batch

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use prophet_fingerprint::{Fingerprint, Mapping};
use prophet_mc::trace::{self, TraceConfig, TraceEventKind, Tracer, NO_CHUNK};
use prophet_mc::{BasisHit, InflightGuard, ParamPoint, SampleSet, TryClaim, WaitHandle};

use crate::engine::{Engine, EvalOutcome};
use crate::error::{ProphetError, ProphetResult};
use crate::executor::dedupe_points;
use crate::job::{ChunkUpdate, JobCore, JobEvent, JobHandle, JobOutput, Priority};
use crate::metrics::Stopwatch;
use crate::offline::{OfflineReport, SweepPlan};
use crate::sync::{
    OrderedCondvar, OrderedMutex, CHUNK_RESULTS, JOB_EVENTS, SCHEDULER_HANDLES, SCHEDULER_STATE,
};

/// Default number of points per scheduled chunk: small enough that a
/// high-priority job overtakes a running sweep within a few points (and
/// that a graph-sized batch fans out across the whole pool), large enough
/// that queue traffic stays negligible next to simulation cost.
pub const DEFAULT_CHUNK_POINTS: usize = 8;

/// Scheduler tuning knobs, set through
/// [`ProphetBuilder::scheduler`](crate::service::ProphetBuilder::scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads in the pool. `0` (the default) means "derive from
    /// the engine configuration": `EngineConfig::threads`, floored at 2
    /// so an interactive job's driver always has a lane beside a running
    /// batch job's driver. Note that drivers occupy a worker for their
    /// job's whole duration (only *chunks* preempt by priority), so a
    /// pool explicitly configured with 1 worker serializes whole jobs in
    /// priority order rather than overtaking mid-job.
    pub workers: usize,
    /// Maximum points per scheduled chunk (clamped to at least 1). An
    /// upper bound: phases with fewer than `workers × chunk_points`
    /// points split finer so even small batches fan out across the whole
    /// pool.
    pub chunk_points: usize,
    /// Chaos-mode seed ([`SchedulerConfig::perturb`]): `Some(seed)`
    /// injects seeded yields and chunk-pop shuffles at the scheduler's
    /// preemption points. `None` (the default) runs undisturbed.
    pub chaos_seed: Option<u64>,
    /// Flight-recorder configuration for the pool's [`Tracer`]. The
    /// service tier defaults to a bounded ring
    /// ([`TraceConfig::ring`]) so [`JobHandle::trace`] and
    /// [`Prophet::telemetry`](crate::service::Prophet::telemetry) work
    /// out of the box; set [`TraceConfig::Off`] to compile every
    /// recording call down to an `Option::None` check.
    ///
    /// [`JobHandle::trace`]: crate::job::JobHandle::trace
    pub trace: TraceConfig,
}

impl SchedulerConfig {
    /// Enable chaos mode: every chunk pickup may yield the thread a few
    /// times and swap the heap's top two chunks, seeded by `seed` — so a
    /// test sweep over seeds explores many more interleavings than the
    /// quiet scheduler would produce. Answers, chosen sources and work
    /// counters must stay bit-identical under every seed (the scheduler's
    /// determinism contract, `docs/CONCURRENCY.md`); `tests/chaos.rs`
    /// enforces it. Perturbation only reorders *independent* work: chunk
    /// execution order within a phase carries no semantic weight, which
    /// is exactly what the sweep proves.
    pub fn perturb(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 0,
            chunk_points: DEFAULT_CHUNK_POINTS,
            chaos_seed: None,
            trace: TraceConfig::ring(),
        }
    }
}

/// Seeded schedule perturbation (chaos mode). Each decision draws from a
/// counter-keyed splitmix64 stream: cheap, lock-free, and seed-dependent,
/// so different seeds explore different interleavings. (The decision
/// *sequence* still depends on OS scheduling — chaos mode is a schedule
/// explorer, not a schedule replayer; determinism of the *answers* is
/// what the chaos sweep asserts.)
struct Chaos {
    seed: u64,
    ticks: AtomicU64,
}

impl Chaos {
    fn new(seed: u64) -> Self {
        Chaos {
            seed,
            ticks: AtomicU64::new(0),
        }
    }

    fn roll(&self) -> u64 {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Yield the thread 0–3 times: a seeded preemption point.
    fn maybe_yield(&self) {
        for _ in 0..(self.roll() & 3) {
            std::thread::yield_now();
        }
    }

    /// A seeded coin flip (chunk-pop shuffles).
    fn coin(&self) -> bool {
        self.roll() & 1 == 0
    }
}

/// SplitMix64 output mixer (Steele et al.) — the same generator family
/// `prophet-vg` seeds worlds with; inlined here because chaos draws are a
/// scheduler-internal detail, not part of any model's sample stream.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One unit of pool work: the boxed task plus its queue key.
struct QueuedTask {
    priority: Priority,
    job: u64,
    seq: u64,
    run: Box<dyn FnOnce() + Send>,
}

/// Queue-wait histogram lane for a priority (index into
/// [`TraceTelemetry::queue_wait`](prophet_mc::TraceTelemetry::queue_wait)).
fn lane_of(priority: Priority) -> usize {
    match priority {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

impl QueuedTask {
    /// Max-heap key: higher priority first, then older job, then earlier
    /// chunk.
    fn key(&self) -> (Priority, std::cmp::Reverse<u64>, std::cmp::Reverse<u64>) {
        (
            self.priority,
            std::cmp::Reverse(self.job),
            std::cmp::Reverse(self.seq),
        )
    }
}

impl PartialEq for QueuedTask {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QueuedTask {}
impl PartialOrd for QueuedTask {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedTask {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.key().cmp(&other.key())
    }
}

struct State {
    /// Job driver tasks. Kept apart from chunks because only *workers*
    /// may start a driver: a driver helping with its own phase must never
    /// pop another job's driver — the nested job could block on store
    /// claims held by the suspended outer frame (deadlock), and even
    /// without shared points it would run an entire foreign job inline
    /// before finishing its own (priority inversion).
    drivers: BinaryHeap<QueuedTask>,
    /// Phase chunk tasks: pure, non-blocking computations. Safe for
    /// anyone — worker or helping driver — to run.
    chunks: BinaryHeap<QueuedTask>,
    /// Jobs submitted but not yet finished (drives [`Scheduler::wait_idle`]).
    active_jobs: usize,
    shutdown: bool,
}

impl State {
    /// Highest-priority task of either kind (workers' top-level loop).
    fn pop_any(&mut self, chaos: Option<&Chaos>) -> Option<QueuedTask> {
        match (self.drivers.peek(), self.chunks.peek()) {
            (Some(driver), Some(chunk)) => {
                if driver.cmp(chunk) == CmpOrdering::Greater {
                    self.drivers.pop()
                } else {
                    self.pop_chunk(chaos)
                }
            }
            (Some(_), None) => self.drivers.pop(),
            (None, _) => self.pop_chunk(chaos),
        }
    }

    /// Pop the next chunk — under chaos, sometimes the *second*-best
    /// chunk instead, shuffling execution order inside and across phases.
    /// Legal because chunk order never carries semantics: results land in
    /// index-addressed slots and publication happens later, on the
    /// driver, in batch order.
    fn pop_chunk(&mut self, chaos: Option<&Chaos>) -> Option<QueuedTask> {
        let first = self.chunks.pop()?;
        if let Some(chaos) = chaos {
            if chaos.coin() {
                if let Some(second) = self.chunks.pop() {
                    self.chunks.push(first);
                    return Some(second);
                }
            }
        }
        Some(first)
    }
}

pub(crate) struct Inner {
    state: OrderedMutex<State>,
    ready: OrderedCondvar,
    chunk_points: usize,
    workers: usize,
    next_job: AtomicU64,
    /// Chaos-mode perturbation source; `None` outside chaos runs.
    chaos: Option<Chaos>,
    /// The pool's flight recorder (shared with every [`JobCore`] and the
    /// slot stores). Observation only: no scheduling decision reads it.
    tracer: Tracer,
}

impl Inner {
    /// Chunk size for a phase of `n` items: at most `chunk_points`, but
    /// split finer when needed so even a small batch fans out across the
    /// whole pool (a 3-point phase on an 8-worker pool must not collapse
    /// into one sequential chunk).
    fn phase_chunk(&self, n: usize) -> usize {
        self.chunk_points.min(n.div_ceil(self.workers)).max(1)
    }
}

impl Inner {
    /// Wake every worker/helper/waiter. Taking the state lock first
    /// serializes with `help_until`'s condition check, so no wakeup is
    /// lost between "condition observed false" and "wait".
    fn notify(&self) {
        let _guard = self.state.lock();
        self.ready.notify_all();
    }

    fn push_chunks(&self, tasks: Vec<QueuedTask>) {
        let mut state = self.state.lock();
        for task in tasks {
            state.chunks.push(task);
        }
        self.tracer.gauge_queue_depth(state.chunks.len());
        self.ready.notify_all();
    }

    /// Run queued *chunk* tasks (any job's, by priority) until `done()`
    /// holds, sleeping only when no chunk is runnable. This is what lets
    /// a driver block on its own phase without wasting its thread or
    /// deadlocking the pool: chunks are pure computations that always
    /// terminate, so every outstanding phase drains even if all workers
    /// are themselves drivers stuck helping. Driver tasks are deliberately
    /// out of reach here — see [`State::drivers`].
    fn help_until(&self, done: impl Fn() -> bool) {
        loop {
            let task = {
                let mut state = self.state.lock();
                loop {
                    if done() {
                        return;
                    }
                    if let Some(task) = state.pop_chunk(self.chaos.as_ref()) {
                        self.tracer.gauge_queue_depth(state.chunks.len());
                        break task;
                    }
                    state = self.ready.wait(state);
                }
            };
            if let Some(chaos) = &self.chaos {
                chaos.maybe_yield();
            }
            run_task(task);
        }
    }
}

/// Execute one task, containing panics so a poisoned chunk cannot take a
/// pool worker down with it (the chunk's completion guard still fires
/// during unwinding, and the driver reports the lost slot as an error).
fn run_task(task: QueuedTask) {
    let _ = catch_unwind(AssertUnwindSafe(task.run));
}

/// A long-lived worker pool executing jobs as priority-ordered chunks.
/// One per [`Prophet`](crate::service::Prophet); see the [module
/// docs](self) for the execution model.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: usize,
    handles: OrderedMutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers)
            .field("chunk_points", &self.inner.chunk_points)
            .field("active_jobs", &self.active_jobs())
            .finish()
    }
}

impl Scheduler {
    /// Spawn a pool. `config.workers == 0` falls back to one worker.
    /// (The [`Prophet`](crate::service::Prophet) builder resolves `0` to
    /// its engine thread count, floored at 2, before calling this.)
    /// Crate-private: jobs can only be submitted through a
    /// [`Prophet`](crate::service::Prophet), which owns its pool — a
    /// freestanding scheduler would have no public way to receive work.
    pub(crate) fn new(config: SchedulerConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: OrderedMutex::new(
                SCHEDULER_STATE,
                State {
                    drivers: BinaryHeap::new(),
                    chunks: BinaryHeap::new(),
                    active_jobs: 0,
                    shutdown: false,
                },
            ),
            ready: OrderedCondvar::new(),
            chunk_points: config.chunk_points.max(1),
            workers,
            next_job: AtomicU64::new(0),
            chaos: config.chaos_seed.map(Chaos::new),
            tracer: Tracer::new(config.trace),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    // Stamp this thread's events with its pool index and
                    // route its lock-wait edges (`--features check`) into
                    // the pool's recorder.
                    trace::set_worker(i as u32);
                    trace::install(&inner.tracer);
                    worker_loop(&inner)
                })
            })
            .collect();
        Scheduler {
            inner,
            workers,
            handles: OrderedMutex::new(SCHEDULER_HANDLES, handles),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maximum points per scheduled chunk.
    pub fn chunk_points(&self) -> usize {
        self.inner.chunk_points
    }

    /// Jobs submitted and not yet finished (running or queued).
    pub fn active_jobs(&self) -> usize {
        self.inner.state.lock().active_jobs
    }

    /// The pool's flight recorder (shared with every job handle and slot
    /// store).
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Block until every submitted job has finished — the way to observe
    /// completion of a job whose [`JobHandle`] was dropped (detached).
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock();
        while state.active_jobs > 0 {
            state = self.inner.ready.wait(state);
        }
    }

    /// Submit an offline sweep job (the scenario's whole OPTIMIZE grid).
    pub(crate) fn submit_sweep(
        &self,
        engine: Arc<Engine>,
        plan: SweepPlan,
        priority: Priority,
    ) -> JobHandle {
        let points_total = (plan.groups_total() * plan.axis_total()) as u64;
        self.spawn_job(engine, priority, points_total, move |inner, core| {
            drive_sweep(&inner, &core, &plan);
        })
    }

    /// Submit a raw point-batch job (also the backend of graph refreshes).
    pub(crate) fn submit_batch(
        &self,
        engine: Arc<Engine>,
        points: Vec<ParamPoint>,
        priority: Priority,
    ) -> JobHandle {
        let points_total = points.len() as u64;
        self.spawn_job(engine, priority, points_total, move |inner, core| {
            drive_batch(&inner, &core, points);
        })
    }

    fn spawn_job(
        &self,
        engine: Arc<Engine>,
        priority: Priority,
        points_total: u64,
        body: impl FnOnce(Arc<Inner>, Arc<JobCore>) + Send + 'static,
    ) -> JobHandle {
        let id = self.inner.next_job.fetch_add(1, Ordering::AcqRel);
        let (tx, rx) = mpsc::channel();
        let baseline = engine.metrics();
        let core = Arc::new(JobCore {
            id,
            priority,
            cancelled: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            points_done: AtomicU64::new(0),
            points_total: AtomicU64::new(points_total),
            chunks_done: AtomicU64::new(0),
            chunks_dispatched: AtomicU64::new(0),
            events: OrderedMutex::new(JOB_EVENTS, Some(tx)),
            engine,
            baseline,
            tracer: self.inner.tracer.clone(),
        });
        self.inner
            .tracer
            .instant(TraceEventKind::JobSubmit, id, NO_CHUNK);
        let driver_core = Arc::clone(&core);
        let driver_inner = Arc::clone(&self.inner);
        let task = QueuedTask {
            priority,
            job: id,
            seq: 0,
            run: Box::new(move || {
                driver_inner
                    .tracer
                    .instant(TraceEventKind::JobStart, id, NO_CHUNK);
                // A panicking driver must still fail the job: without this
                // guard, `wait()` would block forever (the event sender
                // never drops) and `wait_idle` would never settle.
                let mut guard = DriverDone {
                    inner: Arc::clone(&driver_inner),
                    core: Arc::clone(&driver_core),
                    armed: true,
                };
                body(driver_inner, driver_core);
                guard.armed = false;
            }),
        };
        {
            let mut state = self.inner.state.lock();
            state.active_jobs += 1;
            state.drivers.push(task);
            self.inner.ready.notify_all();
        }
        JobHandle { core, rx }
    }
}

impl Drop for Scheduler {
    /// Drain the queue (every submitted job runs to completion, so shared
    /// stores are never abandoned mid-claim), then join the workers.
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            self.inner.ready.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let task = {
            let mut state = inner.state.lock();
            loop {
                if let Some(task) = state.pop_any(inner.chaos.as_ref()) {
                    inner.tracer.gauge_queue_depth(state.chunks.len());
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = inner.ready.wait(state);
            }
        };
        if let Some(chaos) = &inner.chaos {
            chaos.maybe_yield();
        }
        inner.tracer.worker_busy();
        run_task(task);
        inner.tracer.worker_idle();
    }
}

// ------------------------------------------------------------- job drivers

/// Fires only if a driver unwinds before its normal `finish_job` call
/// (the happy path disarms it after `body` returns): reports the panic as
/// a job failure and finishes the job, so handles and `wait_idle` never
/// hang on a poisoned driver.
struct DriverDone {
    inner: Arc<Inner>,
    core: Arc<JobCore>,
    armed: bool,
}

impl Drop for DriverDone {
    fn drop(&mut self) {
        if self.armed {
            self.core.emit(JobEvent::Failed(ProphetError::Internal(
                "job driver panicked".into(),
            )));
            finish_job(&self.inner, &self.core);
        }
    }
}

/// Mark the job finished (whatever the outcome), close its event stream
/// so the handle's iterator terminates, and wake idle-waiters.
fn finish_job(inner: &Inner, core: &JobCore) {
    inner
        .tracer
        .instant(TraceEventKind::JobFinish, core.id, NO_CHUNK);
    core.finished.store(true, Ordering::Release);
    core.close_events();
    let mut state = inner.state.lock();
    state.active_jobs -= 1;
    inner.ready.notify_all();
}

/// Stream a completed batch's results as chunk events, in batch order.
fn emit_chunks(
    inner: &Inner,
    core: &JobCore,
    event_chunk: &mut u64,
    points: &[ParamPoint],
    results: &[(SampleSet, EvalOutcome)],
) {
    for slice in points
        .iter()
        .zip(results.iter())
        .collect::<Vec<_>>()
        .chunks(inner.chunk_points)
    {
        core.emit(JobEvent::Chunk(ChunkUpdate {
            chunk: *event_chunk,
            results: slice
                .iter()
                .map(|(p, (_, outcome))| ((*p).clone(), outcome.clone()))
                .collect(),
        }));
        *event_chunk += 1;
    }
}

fn drive_sweep(inner: &Arc<Inner>, core: &Arc<JobCore>, plan: &SweepPlan) {
    let engine = &core.engine;
    let before = engine.metrics();
    let start = Stopwatch::start();
    let mut event_chunk = 0u64;
    let mut answers = Vec::with_capacity(plan.groups_total());
    for group in plan.groups() {
        if core.is_cancelled() {
            core.emit(JobEvent::Cancelled);
            finish_job(inner, core);
            return;
        }
        let points = plan.group_points(&group);
        let answer = run_batch(inner, core, &points).and_then(|out| match out {
            BatchOut::Cancelled => Ok(None),
            BatchOut::Done(results) => {
                emit_chunks(inner, core, &mut event_chunk, &points, &results);
                plan.answer_for(&group, &results, engine.output_columns())
                    .map(Some)
            }
        });
        match answer {
            Ok(Some(answer)) => answers.push(answer),
            Ok(None) => {
                core.emit(JobEvent::Cancelled);
                finish_job(inner, core);
                return;
            }
            Err(err) => {
                core.emit(JobEvent::Failed(err));
                finish_job(inner, core);
                return;
            }
        }
    }
    let (best, answers) = plan.rank(answers);
    core.emit(JobEvent::Final(JobOutput::Sweep(Box::new(OfflineReport {
        best,
        answers,
        groups_total: plan.groups_total(),
        metrics: engine.metrics().since(&before),
        wall: start.elapsed(),
    }))));
    finish_job(inner, core);
}

fn drive_batch(inner: &Arc<Inner>, core: &Arc<JobCore>, points: Vec<ParamPoint>) {
    let mut event_chunk = 0u64;
    match run_batch(inner, core, &points) {
        Ok(BatchOut::Done(results)) => {
            emit_chunks(inner, core, &mut event_chunk, &points, &results);
            core.emit(JobEvent::Final(JobOutput::Points(results)));
        }
        Ok(BatchOut::Cancelled) => core.emit(JobEvent::Cancelled),
        Err(err) => core.emit(JobEvent::Failed(err)),
    }
    finish_job(inner, core);
}

// --------------------------------------------------- chunked batch pipeline

/// One remapped hit ready to publish: `(unique index, mapped samples,
/// source worlds, source point, every-mapping-exact)`.
type RemappedHit = (usize, HashMap<String, Vec<f64>>, usize, ParamPoint, bool);

/// Outcome of one scheduled batch.
enum BatchOut {
    Done(Vec<(SampleSet, EvalOutcome)>),
    /// A cancel was observed: completed chunk results were published,
    /// remaining claims released, no results returned.
    Cancelled,
}

/// Decrements the phase's outstanding-chunk count and wakes the driver on
/// drop — *on drop*, so a panicking chunk still completes the phase
/// instead of hanging it.
struct ChunkDone {
    remaining: Arc<AtomicUsize>,
    core: Arc<JobCore>,
    inner: Arc<Inner>,
}

impl Drop for ChunkDone {
    fn drop(&mut self) {
        self.core.chunks_done.fetch_add(1, Ordering::AcqRel);
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        self.inner.notify();
    }
}

/// Fan `items` out to the pool as chunks of at most `chunk` items of `f`,
/// helping until every chunk finished. Slot `i` of the result is `None`
/// if its chunk was skipped (job cancelled before the chunk started) or
/// lost to a panic.
fn run_chunked<I, T, F>(
    inner: &Arc<Inner>,
    core: &Arc<JobCore>,
    items: Vec<I>,
    chunk: usize,
    f: F,
) -> Vec<Option<T>>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(&I) -> T + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = chunk.max(1);
    let results: Arc<OrderedMutex<Vec<Option<T>>>> = Arc::new(OrderedMutex::new(
        CHUNK_RESULTS,
        (0..n).map(|_| None).collect(),
    ));
    let f = Arc::new(f);
    let mut indexed: Vec<(usize, I)> = items.into_iter().enumerate().collect();
    let mut chunks: Vec<Vec<(usize, I)>> = Vec::new();
    while !indexed.is_empty() {
        let rest = indexed.split_off(chunk.min(indexed.len()));
        chunks.push(std::mem::replace(&mut indexed, rest));
    }
    let remaining = Arc::new(AtomicUsize::new(chunks.len()));

    // One enqueue stamp for the whole dispatch (they go into the queue in
    // one push). Read *before* the cancel check: if the flag read false,
    // the stamp precedes any `job_cancel` marker — so a cancelled job's
    // sorted trace never shows chunk traffic after its cancel event.
    let enqueued = inner.tracer.now();
    let dispatch_cancelled = core.is_cancelled();
    let mut tasks = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let seq = core.chunks_dispatched.fetch_add(1, Ordering::AcqRel) + 1;
        if !dispatch_cancelled {
            inner
                .tracer
                .instant_at(TraceEventKind::ChunkEnqueue, core.id, seq, enqueued);
        }
        let guard = ChunkDone {
            remaining: Arc::clone(&remaining),
            core: Arc::clone(core),
            inner: Arc::clone(inner),
        };
        let core = Arc::clone(core);
        let results = Arc::clone(&results);
        let f = Arc::clone(&f);
        tasks.push(QueuedTask {
            priority: core.priority,
            job: core.id,
            seq,
            run: Box::new(move || {
                let done = guard;
                if let Some(chaos) = &done.inner.chaos {
                    chaos.maybe_yield();
                }
                // Clock before flag: a chunk that passes the check below
                // anchors all its events at `t0`, which then provably
                // precedes any cancel marker (see `docs/OBSERVABILITY.md`).
                let t0 = done.inner.tracer.now();
                // Cancellation is chunk-granular: the flag is consulted
                // once, before any work — an in-flight chunk always
                // finishes every point it started.
                if core.is_cancelled() {
                    return;
                }
                done.inner
                    .tracer
                    .instant_at(TraceEventKind::ChunkDequeue, core.id, seq, t0);
                done.inner
                    .tracer
                    .record_queue_wait(lane_of(core.priority), t0.saturating_sub(enqueued));
                let computed: Vec<(usize, T)> =
                    chunk.iter().map(|(i, item)| (*i, f(item))).collect();
                {
                    let mut slots = results.lock();
                    for (i, value) in computed {
                        slots[i] = Some(value);
                    }
                }
                done.inner
                    .tracer
                    .span(TraceEventKind::ChunkRun, core.id, seq, t0);
                let service = done.inner.tracer.now().saturating_sub(t0);
                done.inner.tracer.record_chunk_service(service);
            }),
        });
    }
    inner.push_chunks(tasks);
    inner.help_until(|| remaining.load(Ordering::Acquire) == 0);
    let mut slots = results.lock();
    std::mem::take(&mut *slots)
}

/// Collect a phase's chunk results, mapping lost slots to either "the job
/// was cancelled" (`None`) or an internal error (a chunk panicked).
fn collect_phase<T>(
    core: &JobCore,
    outputs: Vec<Option<ProphetResult<T>>>,
) -> ProphetResult<Option<Vec<T>>> {
    let mut collected = Vec::with_capacity(outputs.len());
    for slot in outputs {
        match slot {
            Some(result) => collected.push(result?),
            None if core.is_cancelled() => return Ok(None),
            None => {
                return Err(ProphetError::Internal(
                    "a scheduled chunk was lost (worker panic)".into(),
                ))
            }
        }
    }
    Ok(Some(collected))
}

/// The scheduled mirror of [`Engine::evaluate_batch`]: same phases, same
/// sequential skeleton, same publish order — the parallel phases fan out
/// as pool chunks instead of per-call scoped threads. See the [module
/// docs](self) for the bit-identity argument.
fn run_batch(
    inner: &Arc<Inner>,
    core: &Arc<JobCore>,
    points: &[ParamPoint],
) -> ProphetResult<BatchOut> {
    let engine = &core.engine;
    if points.is_empty() {
        return Ok(BatchOut::Done(Vec::new()));
    }
    if core.is_cancelled() {
        return Ok(BatchOut::Cancelled);
    }

    let (unique, slot_of) = dedupe_points(points);
    let worlds_per_point = engine.config().worlds_per_point;
    let threads = engine.config().threads.max(1);
    let use_fingerprints =
        engine.config().fingerprints_enabled && !engine.stochastic_columns().is_empty();
    let store = engine.basis_store();

    // ---- plan: exact-cache check + in-flight claim per unique point.
    let mut results: Vec<Option<(SampleSet, EvalOutcome)>> =
        (0..unique.len()).map(|_| None).collect();
    let mut guards: Vec<Option<InflightGuard>> = (0..unique.len()).map(|_| None).collect();
    let mut waits: Vec<Option<WaitHandle>> = (0..unique.len()).map(|_| None).collect();
    let mut owned: Vec<usize> = Vec::new();
    for (i, point) in unique.iter().enumerate() {
        match store.try_claim(point, worlds_per_point) {
            TryClaim::Ready { samples, .. } => {
                engine.bump(|m| m.points_cached += 1);
                core.points_done.fetch_add(1, Ordering::AcqRel);
                results[i] = Some((engine.to_sample_set(point, &samples), EvalOutcome::Cached));
            }
            TryClaim::Owner(guard) => {
                guards[i] = Some(guard);
                owned.push(i);
            }
            TryClaim::Pending(handle) => waits[i] = Some(handle),
        }
    }

    // ---- probe + match + remap (the fingerprint phase).
    let mut probes: Vec<Option<HashMap<String, Fingerprint>>> =
        (0..unique.len()).map(|_| None).collect();
    let mut to_simulate: Vec<usize> = Vec::new();
    if use_fingerprints && !owned.is_empty() {
        let phase = Stopwatch::start();
        let t_probe = inner.tracer.now();
        let probe_engine = Arc::clone(engine);
        let owned_points: Vec<ParamPoint> = owned.iter().map(|&i| unique[i].clone()).collect();
        let probe_chunk = inner.phase_chunk(owned_points.len());
        let probe_outputs = run_chunked(inner, core, owned_points, probe_chunk, move |p| {
            probe_engine.probe_fingerprints(p)
        });
        inner
            .tracer
            .span(TraceEventKind::PhaseProbe, core.id, NO_CHUNK, t_probe);
        // A cancel during probing published nothing: every claim is simply
        // released (guards drop on return) and waiters recover.
        let Some(owned_probes) = collect_phase(core, probe_outputs)? else {
            return Ok(BatchOut::Cancelled);
        };
        engine.bump(|m| m.batch_probes += owned.len() as u64);

        let t_match = inner.tracer.now();
        let match_start = Stopwatch::start();
        let (hits, scan) = store.find_correlated_batch_scan(
            &owned_probes,
            engine.stochastic_columns(),
            &engine.config().detector,
            threads,
            engine.config().match_index,
        );
        let match_elapsed = match_start.elapsed();
        inner
            .tracer
            .span(TraceEventKind::PhaseMatch, core.id, NO_CHUNK, t_match);
        inner
            .tracer
            .record_match_scan(match_elapsed.as_nanos() as u64);
        engine.bump(|m| {
            m.fingerprint_time += match_elapsed;
            m.match_scan_nanos += match_elapsed.as_nanos() as u64;
            m.candidates_scanned += scan.candidates_scanned;
            m.candidates_pruned += scan.candidates_pruned;
        });
        for (pos, probe) in owned_probes.into_iter().enumerate() {
            probes[owned[pos]] = Some(probe);
        }

        // Remap every hit as pool chunks, then publish in batch order.
        let mut hit_items: Vec<(usize, ParamPoint, BasisHit)> = Vec::new();
        for (pos, hit) in hits.into_iter().enumerate() {
            match hit {
                Some(hit) => hit_items.push((owned[pos], unique[owned[pos]].clone(), hit)),
                None => to_simulate.push(owned[pos]),
            }
        }
        let remap_engine = Arc::clone(engine);
        let remap_chunk = inner.phase_chunk(hit_items.len());
        let t_remap = inner.tracer.now();
        let remapped: Vec<Option<ProphetResult<RemappedHit>>> = run_chunked(
            inner,
            core,
            hit_items,
            remap_chunk,
            move |(i, point, hit): &(usize, ParamPoint, BasisHit)| {
                let mapped =
                    remap_engine.remap_samples(point, &hit.samples, &hit.mappings, hit.worlds)?;
                let exact = hit.mappings.values().all(Mapping::is_exact);
                Ok((*i, mapped, hit.worlds, hit.source.clone(), exact))
            },
        );
        inner
            .tracer
            .span(TraceEventKind::PhaseRemap, core.id, NO_CHUNK, t_remap);
        let t_publish = inner.tracer.now();
        let mut cancelled_mid_remap = false;
        for slot in remapped {
            match slot {
                Some(result) => {
                    let (i, mapped, worlds, from, exact) = result?;
                    let guard = guards[i]
                        .take()
                        .expect("invariant: every hit point holds its claim guard");
                    guard.complete(
                        probes[i]
                            .take()
                            .expect("invariant: every hit point was probed"),
                        Arc::new(mapped.clone()),
                        worlds,
                        false,
                    );
                    engine.bump(|m| m.points_mapped += 1);
                    core.points_done.fetch_add(1, Ordering::AcqRel);
                    results[i] = Some((
                        engine.to_sample_set(&unique[i], &mapped),
                        EvalOutcome::Mapped { from, exact },
                    ));
                }
                None if core.is_cancelled() => cancelled_mid_remap = true,
                None => {
                    return Err(ProphetError::Internal(
                        "a scheduled chunk was lost (worker panic)".into(),
                    ))
                }
            }
        }
        inner
            .tracer
            .span(TraceEventKind::PhasePublish, core.id, NO_CHUNK, t_publish);
        engine.bump(|m| m.probe_nanos += phase.elapsed_nanos());
        if cancelled_mid_remap || core.is_cancelled() {
            return Ok(BatchOut::Cancelled);
        }
    } else {
        to_simulate = owned;
    }

    // ---- simulate misses as pool chunks, publish in batch order. With
    // at least `threads` misses, each chunk simulates single-threaded
    // (`world_parallel: false`) and parallelism lives at the chunk level;
    // with fewer misses than threads — the interactive small-refresh case
    // — the misses run as one chunk of world-parallel simulations,
    // exactly the blocking executor's schedule, so a lone cold point
    // still fans its worlds across the machine. The world→sample
    // assignment is seed-based, so samples and counters are identical
    // under every schedule.
    if !to_simulate.is_empty() {
        if core.is_cancelled() {
            return Ok(BatchOut::Cancelled);
        }
        let phase = Stopwatch::start();
        let sim_engine = Arc::clone(engine);
        let miss_items: Vec<(usize, ParamPoint)> = to_simulate
            .iter()
            .map(|&i| (i, unique[i].clone()))
            .collect();
        let world_parallel = miss_items.len() < threads;
        let sim_chunk = if world_parallel {
            miss_items.len()
        } else {
            inner.phase_chunk(miss_items.len())
        };
        let t_sim = inner.tracer.now();
        let simulated = run_chunked(
            inner,
            core,
            miss_items,
            sim_chunk,
            move |(_, p): &(usize, ParamPoint)| sim_engine.simulate_full(p, world_parallel),
        );
        inner
            .tracer
            .span(TraceEventKind::PhaseSimulate, core.id, NO_CHUNK, t_sim);
        let t_publish = inner.tracer.now();
        let mut cancelled_mid_sim = false;
        for (&i, slot) in to_simulate.iter().zip(simulated) {
            match slot {
                Some(sim) => {
                    let samples = sim?;
                    let guard = guards[i]
                        .take()
                        .expect("invariant: every missed point holds its claim guard");
                    guard.complete(
                        probes[i].take().unwrap_or_default(),
                        Arc::new(samples.clone()),
                        worlds_per_point,
                        true,
                    );
                    engine.bump(|m| m.points_simulated += 1);
                    core.points_done.fetch_add(1, Ordering::AcqRel);
                    results[i] = Some((
                        engine.to_sample_set(&unique[i], &samples),
                        EvalOutcome::Simulated,
                    ));
                }
                None if core.is_cancelled() => cancelled_mid_sim = true,
                None => {
                    return Err(ProphetError::Internal(
                        "a scheduled chunk was lost (worker panic)".into(),
                    ))
                }
            }
        }
        inner
            .tracer
            .span(TraceEventKind::PhasePublish, core.id, NO_CHUNK, t_publish);
        engine.bump(|m| m.sim_nanos += phase.elapsed_nanos());
        if cancelled_mid_sim {
            return Ok(BatchOut::Cancelled);
        }
    }

    // ---- resolve cross-session waits last, mirroring the blocking path.
    for i in 0..unique.len() {
        if let Some(handle) = waits[i].take() {
            results[i] = Some(engine.resolve_wait(&unique[i], handle)?);
            core.points_done.fetch_add(1, Ordering::AcqRel);
        }
    }

    // Duplicates resolve to their unique point's result.
    core.points_done
        .fetch_add((points.len() - unique.len()) as u64, Ordering::AcqRel);
    Ok(BatchOut::Done(
        slot_of
            .into_iter()
            .map(|i| {
                results[i]
                    .clone()
                    .expect("invariant: every unique point resolves to a result")
            })
            .collect(),
    ))
}
