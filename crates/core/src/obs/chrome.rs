//! Chrome trace-event exporter.
//!
//! Serializes a recorded event list into the Chrome trace-event JSON
//! array format, loadable in `chrome://tracing` and Perfetto: one row
//! (`tid`) per pool worker, spans as complete (`"ph":"X"`) events,
//! markers as instant (`"ph":"i"`) events, timestamps in microseconds on
//! the tracer's own monotonic clock. Zero-dependency by design — the
//! format is simple enough that hand-writing it beats carrying a JSON
//! serializer.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::trace::{TraceEvent, TraceEventKind, NO_CHUNK, NO_JOB, NO_WORKER};

/// Row id for events recorded off the pool (submitting threads, session
/// threads hitting the store): Chrome needs *some* integer `tid`, and
/// `u32::MAX` renders as an unreadable row label.
const EXTERNAL_TID: u64 = 9_999;

fn tid_of(worker: u32) -> u64 {
    if worker == NO_WORKER {
        EXTERNAL_TID
    } else {
        u64::from(worker)
    }
}

/// Microseconds with nanosecond precision, as Chrome's `ts`/`dur` expect.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Render `events` (as returned by
/// [`Tracer::events`](crate::trace::Tracer::events) or
/// [`JobHandle::trace`](crate::job::JobHandle::trace)) as a Chrome
/// trace-event JSON array. Deterministic: output depends only on the
/// event list. Load the result via `chrome://tracing` → "Load" or
/// <https://ui.perfetto.dev>; each pool worker gets its own named row,
/// off-pool threads share the "external" row.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("[\n");
    let mut first = true;
    let workers: BTreeSet<u64> = events.iter().map(|e| tid_of(e.worker)).collect();
    let mut body = String::new();
    for tid in workers {
        if !first {
            body.push_str(",\n");
        }
        first = false;
        let name = if tid == EXTERNAL_TID {
            "external".to_owned()
        } else {
            format!("worker {tid}")
        };
        let _ = write!(
            body,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for event in events {
        if !first {
            body.push_str(",\n");
        }
        first = false;
        let tid = tid_of(event.worker);
        let ts = micros(event.nanos);
        let mut args = String::new();
        if event.job != NO_JOB {
            let _ = write!(args, "\"job\":{}", event.job);
        }
        if event.chunk != NO_CHUNK {
            if !args.is_empty() {
                args.push(',');
            }
            let _ = write!(args, "\"chunk\":{}", event.chunk);
        }
        match event.kind {
            TraceEventKind::LockWait { lock } => {
                if !args.is_empty() {
                    args.push(',');
                }
                let _ = write!(args, "\"lock\":\"{lock}\"");
            }
            TraceEventKind::StoreClaim { shard } | TraceEventKind::StoreEvict { shard } => {
                if !args.is_empty() {
                    args.push(',');
                }
                let _ = write!(args, "\"shard\":{shard}");
            }
            _ => {}
        }
        let name = event.kind.name();
        if event.dur_nanos > 0 {
            let dur = micros(event.dur_nanos);
            let _ = write!(
                body,
                "  {{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                 \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}"
            );
        } else {
            let _ = write!(
                body,
                "  {{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\
                 \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}"
            );
        }
    }
    out.push_str(&body);
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: TraceEventKind, nanos: u64, dur: u64, worker: u32) -> TraceEvent {
        TraceEvent {
            nanos,
            dur_nanos: dur,
            job: 3,
            chunk: 7,
            worker,
            kind,
        }
    }

    #[test]
    fn spans_and_instants_render_with_worker_rows() {
        let events = vec![
            event(TraceEventKind::ChunkEnqueue, 1_500, 0, NO_WORKER),
            event(TraceEventKind::ChunkRun, 2_500, 1_250, 1),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        // Thread-name metadata for both rows, external mapped off u32::MAX.
        assert!(json.contains("\"args\":{\"name\":\"external\"}"), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"worker 1\"}"), "{json}");
        // The instant and the span, in Chrome phases, micros with ns digits.
        assert!(
            json.contains("\"name\":\"chunk_enqueue\",\"ph\":\"i\",\"ts\":1.500"),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"chunk_run\",\"ph\":\"X\",\"ts\":2.500,\"dur\":1.250"),
            "{json}"
        );
        assert!(json.contains("\"job\":3"), "{json}");
        assert!(json.contains("\"chunk\":7"), "{json}");
    }

    #[test]
    fn lock_waits_carry_the_lock_name_and_ids_can_be_absent() {
        let mut e = event(
            TraceEventKind::LockWait {
                lock: "store inner",
            },
            10,
            5,
            0,
        );
        e.job = NO_JOB;
        e.chunk = NO_CHUNK;
        let json = chrome_trace_json(&[e]);
        assert!(
            json.contains("\"args\":{\"lock\":\"store inner\"}"),
            "{json}"
        );
        assert!(!json.contains("\"job\""), "{json}");
    }

    #[test]
    fn output_is_valid_enough_json_to_round_trip_braces() {
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, comma-separated objects.
        let events = vec![
            event(TraceEventKind::JobSubmit, 0, 0, NO_WORKER),
            event(TraceEventKind::PhaseProbe, 10, 90, 2),
            event(TraceEventKind::JobFinish, 120, 0, 2),
        ];
        let json = chrome_trace_json(&events);
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
