//! Service-level observability surfaces.
//!
//! The raw recorder lives in [`crate::trace`] (one per scheduler pool);
//! this module is the *reading* side: a combined service snapshot
//! ([`TelemetrySnapshot`], returned by
//! [`Prophet::telemetry`](crate::service::Prophet::telemetry)) and the
//! Chrome-trace exporter ([`chrome_trace_json`]) that turns a recorded
//! event list into a `chrome://tracing` / Perfetto-loadable JSON file.
//! See `docs/OBSERVABILITY.md` for the event taxonomy and how to read
//! the exported trace.

mod chrome;

pub use chrome::chrome_trace_json;

use crate::trace::TraceTelemetry;

/// One coherent observation of a running [`Prophet`] service: the
/// scheduler tracer's histograms and gauges plus service-level facts the
/// recorder cannot see on its own. Plain data — taking a snapshot never
/// blocks job progress (every source is an atomic or a leaf lock).
///
/// [`Prophet`]: crate::service::Prophet
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetrySnapshot {
    /// Latency histograms (chunk service, queue wait by priority lane,
    /// match scan, store wait) and scheduler gauges (queue depth and its
    /// watermark, busy workers, ring accounting).
    pub trace: TraceTelemetry,
    /// Worker threads in the service's scheduler pool.
    pub workers_total: usize,
    /// In-flight simulation claims currently open across every
    /// scenario's shared basis store (points being simulated right now,
    /// deduplicated cross-session).
    pub inflight_claims: usize,
}

impl TelemetrySnapshot {
    /// Fraction of the pool currently executing tasks, in `[0, 1]`.
    pub fn worker_utilization(&self) -> f64 {
        if self.workers_total == 0 {
            0.0
        } else {
            (self.trace.workers_busy as f64 / self.workers_total as f64).min(1.0)
        }
    }
}
