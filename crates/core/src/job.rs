//! Jobs: the asynchronous unit of evaluation work.
//!
//! The paper's whole point is *interactive* exploration — a user drags a
//! slider and watches estimates refine while the heavy Monte Carlo work
//! happens behind the scenes. A blocking API cannot serve that posture:
//! `OfflineOptimizer::run` seized the caller until the last point landed.
//! This module is the service-shaped surface instead: callers
//! [`submit`](crate::service::Prophet::submit) a [`JobSpec`] describing a
//! sweep, a graph refresh, or a raw point batch, and get back a
//! [`JobHandle`] they can poll ([`JobHandle::progress`]), stream
//! ([`JobHandle::recv`] / [`JobHandle::events`]), cancel
//! ([`JobHandle::cancel`]) or block on ([`JobHandle::wait`]).
//!
//! Execution happens on the service's shared
//! [`Scheduler`](crate::scheduler::Scheduler): jobs are split into
//! chunk-sized slices of work so concurrent jobs interleave by
//! [`Priority`] instead of queueing whole-sweep-at-a-time. The scheduler
//! module's docs carry the chunking and determinism argument; the short
//! version is that a job's final answer is bit-identical to the blocking
//! path at any chunk size, priority mix, and worker count — the
//! differential suite in `tests/jobs.rs` enforces it.
//!
//! Dropping a [`JobHandle`] detaches it: the job still runs to completion
//! (its publications land in the shared basis store exactly as if someone
//! were watching), only the event stream is discarded.
//!
//! Event granularity: chunk results stream per finalized *batch* (a
//! sweep streams group by group; a raw point batch emits its chunks when
//! the batch completes) — see [`ChunkUpdate`] for why. Poll
//! [`JobHandle::progress`] for liveness finer than that.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use prophet_mc::trace::{TraceEvent, TraceEventKind, Tracer, NO_CHUNK};
use prophet_mc::{ParamPoint, SampleSet};

use crate::engine::{Engine, EvalOutcome};
use crate::error::{ProphetError, ProphetResult};
use crate::metrics::EngineMetrics;
use crate::offline::OfflineReport;
use crate::sync::OrderedMutex;

/// Scheduling class of a job: chunks of a higher-priority job are always
/// dispatched before chunks of a lower-priority one, whatever their
/// submission order. Within a class, earlier jobs win (FIFO), so equal
/// priorities never starve each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work (idle-time prefetch).
    Low,
    /// Batch work (offline sweeps).
    #[default]
    Normal,
    /// Interactive work (a user is watching).
    High,
}

/// What a job should do. Constructed through [`JobSpec::sweep`],
/// [`JobSpec::refresh`] or [`JobSpec::points`], with a fluent
/// [`JobSpec::with_priority`].
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The work description.
    pub kind: JobKind,
    /// The scheduling class. Defaults to [`Priority::Normal`].
    pub priority: Priority,
}

/// The work a [`JobSpec`] describes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Execute the named scenario's `OPTIMIZE` directive — the full
    /// offline sweep. The sweep's group axes and lexicographic objectives
    /// come from the directive itself, exactly as
    /// [`OfflineOptimizer::run`](crate::offline::OfflineOptimizer::run)
    /// executes them.
    Sweep {
        /// The registered scenario name.
        scenario: String,
    },
    /// Recompute every graph week of the named scenario at the given
    /// slider values — the job behind
    /// [`OnlineSession::refresh`](crate::session::OnlineSession::refresh).
    Refresh {
        /// The registered scenario name.
        scenario: String,
        /// One value per non-axis parameter.
        sliders: ParamPoint,
    },
    /// Evaluate an explicit batch of parameter points, in order.
    Points {
        /// The registered scenario name.
        scenario: String,
        /// The points to evaluate.
        points: Vec<ParamPoint>,
    },
}

impl JobSpec {
    /// A full offline sweep of `scenario`'s OPTIMIZE directive.
    pub fn sweep(scenario: impl Into<String>) -> Self {
        JobSpec {
            kind: JobKind::Sweep {
                scenario: scenario.into(),
            },
            priority: Priority::default(),
        }
    }

    /// A graph refresh of `scenario` at the given sliders.
    pub fn refresh(scenario: impl Into<String>, sliders: ParamPoint) -> Self {
        JobSpec {
            kind: JobKind::Refresh {
                scenario: scenario.into(),
                sliders,
            },
            priority: Priority::default(),
        }
    }

    /// A raw point batch against `scenario`.
    pub fn points(scenario: impl Into<String>, points: Vec<ParamPoint>) -> Self {
        JobSpec {
            kind: JobKind::Points {
                scenario: scenario.into(),
                points,
            },
            priority: Priority::default(),
        }
    }

    /// Set the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// A live snapshot of how far a job has progressed.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Parameter points whose results have been finalized.
    pub points_done: u64,
    /// Parameter points the job will evaluate in total.
    pub points_total: u64,
    /// Work chunks completed on the scheduler so far.
    pub chunks_done: u64,
    /// Work chunks dispatched so far (grows as the job plans batches).
    pub chunks_dispatched: u64,
    /// Whether [`JobHandle::cancel`] has been observed.
    pub cancelled: bool,
    /// Whether the job has finished (final event emitted).
    pub finished: bool,
    /// Engine work counters accumulated by this job so far — including the
    /// per-phase wall clocks (`probe_nanos` / `sim_nanos` /
    /// `match_scan_nanos` / `probe_eval_nanos`).
    pub metrics: EngineMetrics,
}

impl JobProgress {
    /// Completed fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.points_total == 0 {
            1.0
        } else {
            (self.points_done as f64 / self.points_total as f64).min(1.0)
        }
    }
}

/// One chunk's worth of finalized point results.
///
/// Granularity: results are streamed as each *batch* of the job
/// finalizes — a sweep emits its chunk updates group by group as the
/// sweep advances; a points/refresh job (a single batch) emits them when
/// that batch completes, just before the final event. Publishing is
/// deliberately deferred to batch finalization so that store insertion
/// order (and therefore every future match tie-break) is identical to
/// the blocking path — the bit-identity contract outranks mid-batch
/// streaming. Live *progress* is not deferred:
/// [`JobHandle::progress`] advances as chunks complete inside a batch.
#[derive(Debug, Clone)]
pub struct ChunkUpdate {
    /// Zero-based chunk sequence within the job.
    pub chunk: u64,
    /// `(point, how it was served)` per finalized point, in batch order.
    pub results: Vec<(ParamPoint, EvalOutcome)>,
}

/// The final answer of a completed job.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// A [`JobKind::Sweep`] finished: the ranked offline report, exactly
    /// what the blocking [`OfflineOptimizer::run`] returns. (Boxed: a
    /// report is an order of magnitude larger than the point-results
    /// vector header, and events carrying a `JobOutput` move by value.)
    ///
    /// [`OfflineOptimizer::run`]: crate::offline::OfflineOptimizer::run
    Sweep(Box<OfflineReport>),
    /// A [`JobKind::Refresh`] or [`JobKind::Points`] finished: one
    /// `(samples, outcome)` per requested point, in request order (for a
    /// refresh, graph-axis order).
    Points(Vec<(SampleSet, EvalOutcome)>),
}

impl JobOutput {
    /// The sweep report, if this was a sweep job.
    pub fn into_sweep(self) -> ProphetResult<OfflineReport> {
        match self {
            JobOutput::Sweep(report) => Ok(*report),
            other => Err(ProphetError::Internal(format!(
                "expected a sweep output, got {other:?}"
            ))),
        }
    }

    /// The per-point results, if this was a refresh/points job.
    pub fn into_points(self) -> ProphetResult<Vec<(SampleSet, EvalOutcome)>> {
        match self {
            JobOutput::Points(results) => Ok(results),
            other => Err(ProphetError::Internal(format!(
                "expected point outputs, got {other:?}"
            ))),
        }
    }
}

/// An incremental notification from a running job.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A chunk of point results was finalized and published.
    Chunk(ChunkUpdate),
    /// The job completed; this is always the last event on success.
    Final(JobOutput),
    /// The job observed a cancel: unstarted chunks were dropped, in-flight
    /// chunks finished and their results were published.
    Cancelled,
    /// The job failed; this is always the last event on error.
    Failed(ProphetError),
}

/// Shared state between a [`JobHandle`] and the scheduler's job driver.
pub(crate) struct JobCore {
    pub(crate) id: u64,
    pub(crate) priority: Priority,
    pub(crate) cancelled: AtomicBool,
    pub(crate) finished: AtomicBool,
    pub(crate) points_done: AtomicU64,
    pub(crate) points_total: AtomicU64,
    pub(crate) chunks_done: AtomicU64,
    pub(crate) chunks_dispatched: AtomicU64,
    /// Event sink; send failures (dropped handle) are ignored — the job is
    /// detached, not aborted. The scheduler takes the sender when the job
    /// finishes, so the handle's receiver disconnects and event iteration
    /// terminates after the final event.
    pub(crate) events: OrderedMutex<Option<Sender<JobEvent>>>,
    /// The job's engine (shared with the submitting session, if any).
    pub(crate) engine: Arc<Engine>,
    /// Metrics snapshot taken at submit, so `progress().metrics` reports
    /// this job's work only.
    pub(crate) baseline: EngineMetrics,
    /// The scheduler's flight recorder ([`Tracer::off`] when tracing is
    /// disabled) — lets the handle read this job's events back and the
    /// cancel path stamp its `job_cancel` marker.
    pub(crate) tracer: Tracer,
}

impl JobCore {
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    pub(crate) fn emit(&self, event: JobEvent) {
        if let Some(tx) = &*self.events.lock() {
            let _ = tx.send(event);
        }
    }

    /// Close the event stream (the job will send nothing further).
    pub(crate) fn close_events(&self) {
        self.events.lock().take();
    }
}

/// A handle onto a submitted job. See the [module docs](self) for the
/// lifecycle; dropping the handle detaches the job without cancelling it.
pub struct JobHandle {
    pub(crate) core: Arc<JobCore>,
    pub(crate) rx: Receiver<JobEvent>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.core.id)
            .field("priority", &self.core.priority)
            .field("cancelled", &self.core.is_cancelled())
            .field("finished", &self.core.finished.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    /// The job's scheduler-wide id (submission order).
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// The job's scheduling class.
    pub fn priority(&self) -> Priority {
        self.core.priority
    }

    /// Live progress: points done/total, chunk accounting, and the job's
    /// engine-metric delta (per-phase nanos included).
    pub fn progress(&self) -> JobProgress {
        JobProgress {
            points_done: self.core.points_done.load(Ordering::Acquire),
            points_total: self.core.points_total.load(Ordering::Acquire),
            chunks_done: self.core.chunks_done.load(Ordering::Acquire),
            chunks_dispatched: self.core.chunks_dispatched.load(Ordering::Acquire),
            cancelled: self.core.is_cancelled(),
            finished: self.core.finished.load(Ordering::Acquire),
            metrics: self.core.engine.metrics().since(&self.core.baseline),
        }
    }

    /// Request cancellation: chunks not yet started are dropped; chunks
    /// already in flight finish and publish, so the shared basis store
    /// never sees a half-published chunk. The job ends with
    /// [`JobEvent::Cancelled`]. Idempotent; a job that already finished is
    /// unaffected.
    pub fn cancel(&self) {
        self.core.cancelled.store(true, Ordering::Release);
        // Stamped *after* the flag is visible: any chunk that records a
        // `chunk_run` event after this instant read the flag later than
        // the store above, so it must have started before the cancel —
        // in a sorted trace no chunk of this job begins after the
        // `job_cancel` marker.
        self.core
            .tracer
            .instant(TraceEventKind::JobCancel, self.core.id, NO_CHUNK);
    }

    /// This job's flight-recorder events (submit/start/finish markers,
    /// chunk queue traffic, driver phase spans), sorted by timestamp.
    /// Empty when the scheduler's [`TraceConfig`] is `Off` — and possibly
    /// missing *oldest* events if the bounded ring wrapped; check
    /// [`Tracer::telemetry`]'s `events_dropped` when completeness
    /// matters. See `docs/OBSERVABILITY.md` for the event taxonomy.
    ///
    /// [`TraceConfig`]: prophet_mc::trace::TraceConfig
    /// [`Tracer::telemetry`]: prophet_mc::trace::Tracer::telemetry
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.core.tracer.events_for_job(self.core.id)
    }

    /// Block until the next event. `None` once the job has ended and every
    /// event has been drained.
    pub fn recv(&self) -> Option<JobEvent> {
        self.rx.recv().ok()
    }

    /// The next event if one is ready, without blocking.
    pub fn try_recv(&self) -> Option<JobEvent> {
        self.rx.try_recv().ok()
    }

    /// A blocking iterator over the job's remaining events, ending after
    /// the final event.
    pub fn events(&self) -> impl Iterator<Item = JobEvent> + '_ {
        std::iter::from_fn(move || self.recv())
    }

    /// Block until the job ends, discarding incremental events, and return
    /// the final answer. Cancellation surfaces as
    /// [`ProphetError::JobCancelled`].
    pub fn wait(self) -> ProphetResult<JobOutput> {
        for event in self.events() {
            match event {
                JobEvent::Chunk(_) => {}
                JobEvent::Final(output) => return Ok(output),
                JobEvent::Cancelled => return Err(ProphetError::JobCancelled),
                JobEvent::Failed(err) => return Err(err),
            }
        }
        Err(ProphetError::Internal(
            "job ended without a final event (scheduler shut down?)".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn spec_builders_carry_priority() {
        let spec = JobSpec::sweep("s").with_priority(Priority::High);
        assert!(matches!(spec.kind, JobKind::Sweep { ref scenario } if scenario == "s"));
        assert_eq!(spec.priority, Priority::High);
        let spec = JobSpec::points("s", vec![ParamPoint::new()]);
        assert_eq!(spec.priority, Priority::Normal);
    }

    #[test]
    fn progress_fraction_saturates() {
        let p = JobProgress {
            points_done: 3,
            points_total: 4,
            chunks_done: 0,
            chunks_dispatched: 0,
            cancelled: false,
            finished: false,
            metrics: EngineMetrics::default(),
        };
        assert!((p.fraction() - 0.75).abs() < 1e-12);
        let empty = JobProgress {
            points_total: 0,
            ..p.clone()
        };
        assert_eq!(empty.fraction(), 1.0);
    }
}
