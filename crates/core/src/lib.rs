//! # fuzzy-prophet
//!
//! A reproduction of **Fuzzy Prophet** (Kennedy, Lee, Loboz, Smyl, Nath —
//! SIGMOD 2011): a probabilistic-database tool for constructing, simulating
//! and analyzing business scenarios with uncertain data, whose key
//! innovation is *fingerprinting* — detecting correlations between
//! parameterizations of black-box stochastic models so that Monte Carlo
//! results computed for one parameter point can be re-mapped to others
//! instead of re-simulated.
//!
//! ## Quick start
//!
//! ```
//! use fuzzy_prophet::prelude::*;
//!
//! // The paper's Figure-2 scenario, verbatim.
//! let scenario = Scenario::figure2().unwrap();
//!
//! // Online mode: interactive sliders + live graph.
//! let mut session = OnlineSession::new(
//!     scenario,
//!     prophet_models::demo_registry(),
//!     EngineConfig { worlds_per_point: 64, ..EngineConfig::default() },
//! )
//! .unwrap();
//! let first = session.refresh().unwrap();
//! assert_eq!(first.weeks_cached, 0); // cold start: nothing reusable yet
//!
//! // Adjust a slider: most of the graph is re-mapped or cached, not
//! // re-simulated.
//! let report = session.set_param("purchase2", 40).unwrap();
//! assert!(report.weeks_simulated < first.weeks_simulated);
//! ```
//!
//! ## Architecture (paper Figure 1)
//!
//! ```text
//!   ┌──────────┐  instances   ┌──────────────────┐  pure TSQL  ┌────────────┐
//!   │  Guide    │ ───────────▶ │  Query Generator │ ──────────▶ │ SQL engine │
//!   └────▲─────┘              └──────────────────┘             └──────┬─────┘
//!        │  metrics                   basis hits                      │ rows
//!   ┌────┴────────────┐        ┌──────────────────┐                   │
//!   │ Result          │ ◀──────│ Storage Manager  │ ◀─────────────────┘
//!   │ Aggregator      │        │ (basis store +   │
//!   └─────────────────┘        │  fingerprints)   │
//!                              └──────────────────┘
//! ```
//!
//! [`engine::Engine`] implements the cycle; [`online::OnlineSession`] and
//! [`offline::OfflineOptimizer`] are the two user-facing modes from the
//! paper's demonstration.

pub mod engine;
pub mod exploration;
pub mod metrics;
pub mod offline;
pub mod online;
pub mod render;
pub mod scenario;

pub use engine::{Engine, EngineConfig, EvalOutcome};
pub use exploration::{CellState, ExplorationMap};
pub use metrics::EngineMetrics;
pub use offline::{OfflineOptimizer, OfflineReport, OptimizeAnswer};
pub use online::{AdjustReport, OnlineSession, ProgressiveEstimate};
pub use scenario::Scenario;

/// Convenience re-exports for applications.
pub mod prelude {
    pub use crate::engine::{Engine, EngineConfig, EvalOutcome};
    pub use crate::exploration::{CellState, ExplorationMap};
    pub use crate::metrics::EngineMetrics;
    pub use crate::offline::{OfflineOptimizer, OfflineReport, OptimizeAnswer};
    pub use crate::online::{AdjustReport, OnlineSession, ProgressiveEstimate};
    pub use crate::scenario::Scenario;
    pub use prophet_mc::ParamPoint;
}
