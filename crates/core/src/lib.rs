//! # fuzzy-prophet
//!
//! A reproduction of **Fuzzy Prophet** (Kennedy, Lee, Loboz, Smyl, Nath —
//! SIGMOD 2011): a probabilistic-database tool for constructing, simulating
//! and analyzing business scenarios with uncertain data, whose key
//! innovation is *fingerprinting* — detecting correlations between
//! parameterizations of black-box stochastic models so that Monte Carlo
//! results computed for one parameter point can be re-mapped to others
//! instead of re-simulated.
//!
//! ## Quick start
//!
//! The front door is the [`service::Prophet`] facade: a long-lived service
//! that registers scenarios by name and hands out sessions which share one
//! basis store per scenario — what any session simulates, every other
//! session re-maps or serves from cache.
//!
//! ```
//! use fuzzy_prophet::prelude::*;
//!
//! let prophet = Prophet::builder()
//!     // The paper's Figure-2 scenario, verbatim.
//!     .scenario("figure2", Scenario::figure2().unwrap())
//!     .registry(prophet_models::demo_registry())
//!     .config(EngineConfig { worlds_per_point: 64, ..EngineConfig::default() })
//!     .build()
//!     .unwrap();
//!
//! // Online mode: interactive sliders + live graph.
//! let mut session = prophet.online("figure2").unwrap();
//! let first = session.refresh().unwrap();
//! assert_eq!(first.weeks_cached, 0); // cold start: nothing reusable yet
//!
//! // Adjust a slider: most of the graph is re-mapped or cached, not
//! // re-simulated.
//! let report = session.set_param("purchase2", 40).unwrap();
//! assert!(report.weeks_simulated < first.weeks_simulated);
//!
//! // A second session starts warm: its first render reuses everything the
//! // first session computed through the shared basis store.
//! let mut another = prophet.online("figure2").unwrap();
//! let warm = another.refresh().unwrap();
//! assert_eq!(warm.weeks_simulated, 0);
//!
//! // Typed errors replace string matching.
//! match session.set_param("nope", 0) {
//!     Err(ProphetError::UnknownParam { available, .. }) => {
//!         assert_eq!(available, ["feature", "purchase1", "purchase2"]);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```
//!
//! ## Architecture (paper Figure 1, service edition)
//!
//! ```text
//!                        ┌───────────────────────────────────────────┐
//!                        │              Prophet service              │
//!   online("figure2") ──▶│  scenarios by name · registry · config    │◀── offline("figure2")
//!                        └────────┬─────────────────────────┬────────┘
//!                                 ▼                         ▼
//!                        ┌────────────────┐        ┌────────────────┐
//!                        │ OnlineSession  │  ····  │ OfflineOptimizer│
//!                        │ (Guide plug-in)│        │ (grid sweep)   │
//!                        └───────┬────────┘        └───────┬────────┘
//!                                ▼     per-session Engine  ▼
//!        ┌──────────┐  instances   ┌──────────────────┐  pure TSQL  ┌────────────┐
//!        │  Guide    │ ───────────▶ │  Query Generator │ ──────────▶ │ SQL engine │
//!        └────▲─────┘              └──────────────────┘             └──────┬─────┘
//!             │  metrics                   basis hits                      │ rows
//!        ┌────┴────────────┐        ┌──────────────────────────┐           │
//!        │ Result          │ ◀──────│ SharedBasisStore         │ ◀─────────┘
//!        │ Aggregator      │        │ (one per scenario, shared│
//!        └─────────────────┘        │  by every session)       │
//!                                   └──────────────────────────┘
//! ```
//!
//! [`engine::Engine`] implements the cycle; [`session::OnlineSession`] and
//! [`offline::OfflineOptimizer`] are the two user-facing modes from the
//! paper's demonstration, now handed out by [`service::Prophet`]. Every
//! public API reports failures as the typed [`error::ProphetError`] — no
//! raw SQL-layer errors escape this crate.
//!
//! ## Migrating from the 0.1 session-per-struct API
//!
//! | 0.1 | 0.3 |
//! |-----|-----|
//! | `OnlineSession::new(scenario, registry, config)` | `Prophet::builder().scenario(name, scenario).registry(registry).config(config).build()?.online(name)?` |
//! | `OfflineOptimizer::new(scenario, registry, config)` | `…build()?.offline(name)?` |
//! | `Err(SqlError::Eval(msg))` | structured [`error::ProphetError`] variants |
//!
//! The 0.1 constructors shipped as deprecated shims for one release and
//! are now gone. Direct engine composition remains available via
//! [`Engine::new`] / [`Engine::with_basis_store`] plus
//! [`OnlineSession::open`] / [`OfflineOptimizer::open`].

pub mod engine;
pub mod error;
pub mod executor;
pub mod exploration;
pub mod metrics;
pub mod offline;
pub mod render;
pub mod scenario;
pub mod service;
pub mod session;

pub use engine::{Engine, EngineConfig, EvalOutcome};
pub use error::{ProphetError, ProphetResult};
pub use exploration::{CellState, ExplorationMap};
pub use metrics::EngineMetrics;
pub use offline::{OfflineOptimizer, OfflineReport, OptimizeAnswer};
pub use scenario::Scenario;
pub use service::{Prophet, ProphetBuilder};
pub use session::{AdjustReport, OnlineSession, ProgressiveEstimate};

/// Convenience re-exports for applications.
pub mod prelude {
    pub use crate::engine::{Engine, EngineConfig, EvalOutcome};
    pub use crate::error::{ProphetError, ProphetResult};
    pub use crate::exploration::{CellState, ExplorationMap};
    pub use crate::metrics::EngineMetrics;
    pub use crate::offline::{OfflineOptimizer, OfflineReport, OptimizeAnswer};
    pub use crate::scenario::Scenario;
    pub use crate::service::{Prophet, ProphetBuilder};
    pub use crate::session::{AdjustReport, OnlineSession, ProgressiveEstimate};
    pub use prophet_mc::guide::{Guide, GuideFactory};
    pub use prophet_mc::{ParamPoint, SharedBasisStore, StoreStatsSnapshot};
}
