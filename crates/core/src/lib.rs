//! # fuzzy-prophet
//!
//! A reproduction of **Fuzzy Prophet** (Kennedy, Lee, Loboz, Smyl, Nath —
//! SIGMOD 2011): a probabilistic-database tool for constructing, simulating
//! and analyzing business scenarios with uncertain data, whose key
//! innovation is *fingerprinting* — detecting correlations between
//! parameterizations of black-box stochastic models so that Monte Carlo
//! results computed for one parameter point can be re-mapped to others
//! instead of re-simulated.
//!
//! ## Quick start
//!
//! The front door is the [`service::Prophet`] facade: a long-lived service
//! that registers scenarios by name and hands out sessions which share one
//! basis store per scenario — what any session simulates, every other
//! session re-maps or serves from cache.
//!
//! ```
//! use fuzzy_prophet::prelude::*;
//!
//! let prophet = Prophet::builder()
//!     // The paper's Figure-2 scenario, verbatim.
//!     .scenario("figure2", Scenario::figure2().unwrap())
//!     .registry(prophet_models::demo_registry())
//!     .config(EngineConfig { worlds_per_point: 64, ..EngineConfig::default() })
//!     .build()
//!     .unwrap();
//!
//! // Online mode: interactive sliders + live graph.
//! let mut session = prophet.online("figure2").unwrap();
//! let first = session.refresh().unwrap();
//! assert_eq!(first.weeks_cached, 0); // cold start: nothing reusable yet
//!
//! // Adjust a slider: most of the graph is re-mapped or cached, not
//! // re-simulated.
//! let report = session.set_param("purchase2", 40).unwrap();
//! assert!(report.weeks_simulated < first.weeks_simulated);
//!
//! // A second session starts warm: its first render reuses everything the
//! // first session computed through the shared basis store.
//! let mut another = prophet.online("figure2").unwrap();
//! let warm = another.refresh().unwrap();
//! assert_eq!(warm.weeks_simulated, 0);
//!
//! // Typed errors replace string matching.
//! match session.set_param("nope", 0) {
//!     Err(ProphetError::UnknownParam { available, .. }) => {
//!         assert_eq!(available, ["feature", "purchase1", "purchase2"]);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```
//!
//! ## Architecture (paper Figure 1, service edition)
//!
//! ```text
//!                        ┌───────────────────────────────────────────┐
//!                        │              Prophet service              │
//!   online("figure2") ──▶│  scenarios by name · registry · config    │◀── offline("figure2")
//!                        └────────┬─────────────────────────┬────────┘
//!                                 ▼                         ▼
//!                        ┌────────────────┐        ┌────────────────┐
//!                        │ OnlineSession  │  ····  │ OfflineOptimizer│
//!                        │ (Guide plug-in)│        │ (grid sweep)   │
//!                        └───────┬────────┘        └───────┬────────┘
//!                                ▼     per-session Engine  ▼
//!        ┌──────────┐  instances   ┌──────────────────┐  pure TSQL  ┌────────────┐
//!        │  Guide    │ ───────────▶ │  Query Generator │ ──────────▶ │ SQL engine │
//!        └────▲─────┘              └──────────────────┘             └──────┬─────┘
//!             │  metrics                   basis hits                      │ rows
//!        ┌────┴────────────┐        ┌──────────────────────────┐           │
//!        │ Result          │ ◀──────│ SharedBasisStore         │ ◀─────────┘
//!        │ Aggregator      │        │ (one per scenario, shared│
//!        └─────────────────┘        │  by every session)       │
//!                                   └──────────────────────────┘
//! ```
//!
//! [`engine::Engine`] implements the cycle; [`session::OnlineSession`] and
//! [`offline::OfflineOptimizer`] are the two user-facing modes from the
//! paper's demonstration, now handed out by [`service::Prophet`]. Every
//! public API reports failures as the typed [`error::ProphetError`] — no
//! raw SQL-layer errors escape this crate.
//!
//! ## Asynchronous jobs (0.3)
//!
//! The evaluation surface is job-shaped: [`Prophet::submit`] takes a
//! [`job::JobSpec`] (an OPTIMIZE sweep, a graph refresh, or a raw point
//! batch, with a [`job::Priority`]) and returns a [`job::JobHandle`]
//! immediately. The service owns one long-lived worker pool (the
//! [`scheduler::Scheduler`]); jobs execute as chunk-sized slices ordered
//! by priority, so an interactive refresh overtakes a running sweep
//! mid-flight instead of queueing behind it. Handles expose
//! [`progress`](job::JobHandle::progress) (points done/total plus the
//! job's per-phase engine metrics, live at chunk granularity), a
//! [`recv`](job::JobHandle::recv) / [`events`](job::JobHandle::events)
//! stream of incremental [`job::JobEvent`]s (chunk results as each batch
//! of the job finalizes — a sweep streams group by group — then the
//! final answer), chunk-granular [`cancel`](job::JobHandle::cancel), and
//! a blocking [`wait`](job::JobHandle::wait). Dropping a handle detaches
//! the job; it still completes.
//!
//! ```
//! use fuzzy_prophet::prelude::*;
//!
//! let prophet = Prophet::builder()
//!     .scenario("figure2", Scenario::figure2().unwrap())
//!     .scenario_sql("toy", "\
//! DECLARE PARAMETER @x AS RANGE 0 TO 6 STEP BY 2;
//! DECLARE PARAMETER @w AS SET (0, 1);
//! SELECT @x + 0 AS load INTO results;
//! OPTIMIZE SELECT @x FROM results
//! WHERE MAX(EXPECT load) <= 4.5 GROUP BY x FOR MAX @x").unwrap()
//!     .registry(prophet_models::demo_registry())
//!     .config(EngineConfig { worlds_per_point: 8, threads: 2, ..EngineConfig::default() })
//!     .build()
//!     .unwrap();
//!
//! // A sweep runs in the background…
//! let sweep = prophet.submit(JobSpec::sweep("toy").with_priority(Priority::Low)).unwrap();
//! // …while interactive work overtakes it on the same pool.
//! let mut session = prophet.online("figure2").unwrap();
//! session.refresh().unwrap(); // = submit(refresh).wait(), at Priority::High
//! let report = sweep.wait().unwrap().into_sweep().unwrap();
//! assert_eq!(report.best.unwrap().point.get("x"), Some(4));
//! ```
//!
//! The blocking calls remain and are now thin clients:
//! [`OfflineOptimizer::run`] and [`OnlineSession::refresh`] on
//! service-handed objects are exactly `submit(...).wait()`, and the
//! differential suite in `tests/jobs.rs` proves a job's final answer is
//! bit-identical to the blocking executor at every chunk size, priority
//! mix, and worker count (the [`scheduler`] module docs carry the
//! argument).
//!
//! ## Migrating from 0.2 (blocking calls → jobs)
//!
//! | 0.2 (blocking) | 0.3 (job-shaped equivalent) |
//! |-----|-----|
//! | `prophet.offline(name)?.run()?` | `prophet.submit(JobSpec::sweep(name))?.wait()?.into_sweep()?` (the blocking form still works and is now implemented exactly this way) |
//! | `session.refresh()?` | `prophet.submit(JobSpec::refresh(name, sliders))?.wait()?.into_points()?` (ditto; the session form also updates its series) |
//! | `engine.evaluate_batch(&points)?` | `prophet.submit(JobSpec::points(name, points))?.wait()?.into_points()?` |
//! | no equivalent | `handle.progress()` / `handle.events()` / `handle.cancel()` — progress, partial results, cancellation |
//! | `scenario_names()` + `basis_stats(name)` loop | [`Prophet::basis_stats_all`] |
//!
//! ## Migrating from the 0.1 session-per-struct API
//!
//! | 0.1 | 0.3 |
//! |-----|-----|
//! | `OnlineSession::new(scenario, registry, config)` | `Prophet::builder().scenario(name, scenario).registry(registry).config(config).build()?.online(name)?` |
//! | `OfflineOptimizer::new(scenario, registry, config)` | `…build()?.offline(name)?` |
//! | `Err(SqlError::Eval(msg))` | structured [`error::ProphetError`] variants |
//!
//! The 0.1 constructors shipped as deprecated shims for one release and
//! are now gone. Direct engine composition remains available via
//! [`Engine::new`] / [`Engine::with_basis_store`] plus
//! [`OnlineSession::open`] / [`OfflineOptimizer::open`] — these run their
//! work on the caller's thread (the blocking reference tier the scheduled
//! pipeline is differentially tested against).
//!
//! ## Observability (0.8)
//!
//! The scheduler carries a zero-dependency flight recorder ([`trace`]):
//! job lifecycle and chunk queue events, driver phase spans, store
//! claim/wait/publish/evict markers, and log-bucketed latency histograms
//! (chunk service time, queue wait by priority, match scans, in-flight
//! waits). Read a job's events via [`JobHandle::trace`](job::JobHandle::trace),
//! snapshot service-wide percentiles and gauges via
//! [`Prophet::telemetry`](service::Prophet::telemetry), and export a
//! `chrome://tracing`-loadable file via [`obs::chrome_trace_json`].
//! Tracing observes, never decides: determinism contracts are untouched,
//! and [`trace::TraceConfig::Off`] makes every recording call a no-op.
//! `docs/OBSERVABILITY.md` carries the event taxonomy and clock model.
//!
//! [`Prophet::submit`]: service::Prophet::submit
//! [`Prophet::basis_stats_all`]: service::Prophet::basis_stats_all
//! [`OfflineOptimizer::run`]: offline::OfflineOptimizer::run
//! [`OnlineSession::refresh`]: session::OnlineSession::refresh

pub mod engine;
pub mod error;
pub mod executor;
pub mod exploration;
pub mod job;
pub mod metrics;
pub mod obs;
pub mod offline;
pub mod render;
pub mod scenario;
pub mod scheduler;
pub mod service;
pub mod session;
pub mod sync;
pub mod trace;

pub use engine::{Engine, EngineConfig, EvalOutcome, ExecTier};
pub use error::{ProphetError, ProphetResult};
pub use exploration::{CellState, ExplorationMap};
pub use job::{
    ChunkUpdate, JobEvent, JobHandle, JobKind, JobOutput, JobProgress, JobSpec, Priority,
};
pub use metrics::EngineMetrics;
pub use obs::{chrome_trace_json, TelemetrySnapshot};
pub use offline::{OfflineOptimizer, OfflineReport, OptimizeAnswer};
pub use scenario::Scenario;
pub use scheduler::{Scheduler, SchedulerConfig};
pub use service::{Prophet, ProphetBuilder};
pub use session::{AdjustReport, OnlineSession, ProgressiveEstimate};
pub use trace::{
    LatencyHistogram, TraceConfig, TraceEvent, TraceEventKind, TraceTelemetry, Tracer,
};

/// Convenience re-exports for applications.
pub mod prelude {
    pub use crate::engine::{Engine, EngineConfig, EvalOutcome, ExecTier};
    pub use crate::error::{ProphetError, ProphetResult};
    pub use crate::exploration::{CellState, ExplorationMap};
    pub use crate::job::{
        ChunkUpdate, JobEvent, JobHandle, JobKind, JobOutput, JobProgress, JobSpec, Priority,
    };
    pub use crate::metrics::EngineMetrics;
    pub use crate::obs::{chrome_trace_json, TelemetrySnapshot};
    pub use crate::offline::{OfflineOptimizer, OfflineReport, OptimizeAnswer};
    pub use crate::scenario::Scenario;
    pub use crate::scheduler::{Scheduler, SchedulerConfig};
    pub use crate::service::{Prophet, ProphetBuilder};
    pub use crate::session::{AdjustReport, OnlineSession, ProgressiveEstimate};
    pub use crate::trace::{
        LatencyHistogram, TraceConfig, TraceEvent, TraceEventKind, TraceTelemetry, Tracer,
    };
    pub use prophet_mc::guide::{Guide, GuideFactory};
    pub use prophet_mc::{ParamPoint, SharedBasisStore, SnapshotError, StoreStatsSnapshot};
}
