//! ASCII rendering of the online graph (the Figure-3 view, terminal
//! edition) and CSV export of its series.

use std::fmt::Write as _;

use prophet_mc::Series;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', 'o', 'x', '^', '@', '%'];

/// Render one or more series as an ASCII line chart.
///
/// Series whose style words include `y2` are scaled against a secondary
/// axis (the paper's Figure 3 plots overload probability on y1 and
/// capacity/demand magnitudes on y2). Each axis is normalized to its own
/// min/max across its series.
pub fn ascii_chart(series: &[&Series], width: usize, height: usize) -> String {
    let width = width.clamp(10, 400);
    let height = height.clamp(4, 100);
    let mut out = String::new();
    if series.is_empty() || series.iter().all(|s| s.points.is_empty()) {
        out.push_str("(no data)\n");
        return out;
    }

    // Split series across the two axes.
    let on_y2: Vec<bool> = series
        .iter()
        .map(|s| s.style.iter().any(|w| w.eq_ignore_ascii_case("y2")))
        .collect();
    let axis_range = |want_y2: bool| -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (s, &is_y2) in series.iter().zip(&on_y2) {
            if is_y2 == want_y2 {
                if let Some((a, b)) = s.y_range() {
                    lo = lo.min(a);
                    hi = hi.max(b);
                }
            }
        }
        (lo.is_finite() && hi.is_finite()).then_some(if (hi - lo).abs() < 1e-12 {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        })
    };
    let y1 = axis_range(false);
    let y2 = axis_range(true);

    let x_min = series
        .iter()
        .filter_map(|s| s.points.first())
        .map(|p| p.x)
        .min()
        .unwrap_or(0);
    let x_max = series
        .iter()
        .filter_map(|s| s.points.last())
        .map(|p| p.x)
        .max()
        .unwrap_or(1);
    let x_span = (x_max - x_min).max(1) as f64;

    let mut grid = vec![vec![' '; width]; height];
    for (si, (s, &is_y2)) in series.iter().zip(&on_y2).enumerate() {
        let Some((lo, hi)) = (if is_y2 { y2 } else { y1 }) else {
            continue;
        };
        let glyph = GLYPHS[si % GLYPHS.len()];
        for p in &s.points {
            if !p.y.is_finite() {
                continue;
            }
            let col = (((p.x - x_min) as f64 / x_span) * (width - 1) as f64).round() as usize;
            let frac = ((p.y - lo) / (hi - lo)).clamp(0.0, 1.0);
            let row = height - 1 - (frac * (height - 1) as f64).round() as usize;
            grid[row][col.min(width - 1)] = glyph;
        }
    }

    // Header: legend with axis assignment.
    for (si, (s, &is_y2)) in series.iter().zip(&on_y2).enumerate() {
        let _ = writeln!(
            out,
            "  {} {} {} [{}]{}",
            GLYPHS[si % GLYPHS.len()],
            s.metric,
            s.column,
            if is_y2 { "y2" } else { "y1" },
            if s.style.is_empty() {
                String::new()
            } else {
                format!(" ({})", s.style.join(" "))
            },
        );
    }
    // Axis captions.
    if let Some((lo, hi)) = y1 {
        let _ = writeln!(out, "  y1: {lo:.3} .. {hi:.3}");
    }
    if let Some((lo, hi)) = y2 {
        let _ = writeln!(out, "  y2: {lo:.1} .. {hi:.1}");
    }
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(out, "   x: {x_min} .. {x_max}");
    out
}

/// Export every series as one CSV document: `x,<col1 metric1>,<col2 …>,…`
/// with one row per x value present in any series.
pub fn series_csv(series: &[&Series]) -> String {
    let mut xs: Vec<i64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_unstable();
    xs.dedup();
    let mut out = String::from("x");
    for s in series {
        let _ = write!(out, ",{} {}", s.metric, s.column);
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for s in series {
            match s.at(x) {
                Some(p) => {
                    let _ = write!(out, ",{}", p.y);
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_mc::instance::ParamPoint;
    use prophet_mc::SampleSet;
    use prophet_sql::ast::{AggMetric, SeriesSpec};
    use std::collections::HashMap;

    fn series_with(column: &str, style: &[&str], points: &[(i64, f64)]) -> Series {
        let spec = SeriesSpec {
            metric: AggMetric::Expect,
            column: column.into(),
            style: style.iter().map(|s| s.to_string()).collect(),
        };
        let mut s = Series::new(&spec);
        for &(x, y) in points {
            let mut samples = HashMap::new();
            samples.insert(column.to_string(), vec![y]);
            let ss = SampleSet::from_samples(ParamPoint::new(), vec![column.to_string()], samples);
            s.update_from(x, &ss);
        }
        s
    }

    #[test]
    fn chart_contains_legend_axes_and_glyphs() {
        let overload = series_with(
            "overload",
            &["bold", "red"],
            &[(0, 0.0), (26, 0.5), (52, 1.0)],
        );
        let capacity = series_with(
            "capacity",
            &["blue", "y2"],
            &[(0, 10_000.0), (52, 14_000.0)],
        );
        let chart = ascii_chart(&[&overload, &capacity], 60, 12);
        assert!(chart.contains("* EXPECT overload [y1] (bold red)"));
        assert!(chart.contains("o EXPECT capacity [y2] (blue y2)"));
        assert!(chart.contains("y1: 0.000 .. 1.000"));
        assert!(chart.contains("y2: 10000.0 .. 14000.0"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("x: 0 .. 52"));
    }

    #[test]
    fn empty_series_renders_placeholder() {
        let empty = series_with("overload", &[], &[]);
        assert_eq!(ascii_chart(&[&empty], 40, 10), "(no data)\n");
        assert_eq!(ascii_chart(&[], 40, 10), "(no data)\n");
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let flat = series_with("v", &[], &[(0, 5.0), (10, 5.0)]);
        let chart = ascii_chart(&[&flat], 30, 8);
        assert!(chart.contains('*'), "{chart}");
    }

    #[test]
    fn csv_export_merges_x_values() {
        let a = series_with("a", &[], &[(0, 1.0), (2, 3.0)]);
        let b = series_with("b", &[], &[(0, 9.0), (1, 8.0)]);
        let csv = series_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,EXPECT a,EXPECT b");
        assert_eq!(lines[1], "0,1,9");
        assert_eq!(lines[2], "1,,8");
        assert_eq!(lines[3], "2,3,");
    }
}
