//! Offline mode: automated constrained parameter optimization.
//!
//! §3.3: "the simulation goal is to determine the parameter values that
//! minimize the total cost of ownership while keeping the risk of overload
//! under a threshold … results are computed for the entire parameter space,
//! and the query returns the latest purchase dates that keep the expected
//! chance of overload below" the threshold.
//!
//! [`OfflineOptimizer`] executes the scenario's `OPTIMIZE` directive: it
//! sweeps the cartesian product of the *selected* parameters (the GROUP BY
//! keys), evaluates every value of the remaining axis parameters per group
//! (in Figure 2, the 53 weeks of `@current`), applies the outer aggregate
//! (`MAX(EXPECT overload)`), filters feasible groups, and ranks them by the
//! lexicographic `FOR MAX/MIN` objectives. Deferring purchases *is* the
//! cost-of-ownership objective: later purchase weeks mean fewer
//! hardware-weeks paid for.
//!
//! The sweep's *plan* — grouping, per-group axis expansion, constraint
//! aggregation, feasibility, ranking — lives in one crate-internal
//! `SweepPlan`, shared by two executions of identical semantics:
//!
//! * the blocking reference loop ([`OfflineOptimizer::run_with_observer`]),
//!   which evaluates group batches on the caller's thread, and
//! * the scheduled sweep job ([`crate::scheduler`]), which
//!   [`OfflineOptimizer::run`] submits when the optimizer was opened
//!   through a [`Prophet`](crate::service::Prophet) — the blocking call
//!   then simply becomes `submit(sweep).wait()`, and concurrent jobs
//!   interleave with the sweep chunk-by-chunk.

use std::cmp::Ordering;
use std::sync::Arc;
use std::time::Duration;

use prophet_mc::guide::{GridGuide, Guide};
use prophet_mc::{ParamPoint, SampleSet};
use prophet_sql::ast::{AggMetric, ObjectiveDirection, OptimizeSpec, OuterAgg, ParameterDecl};
use prophet_sql::Script;

use crate::engine::{Engine, EvalOutcome};
use crate::error::{ProphetError, ProphetResult};
use crate::job::Priority;
use crate::metrics::{EngineMetrics, Stopwatch};
use crate::scheduler::Scheduler;

/// One feasible (or candidate) answer of the OPTIMIZE query.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeAnswer {
    /// The group's parameter values (the selected parameters only).
    pub point: ParamPoint,
    /// Outer-aggregated metric per constraint, in constraint order.
    pub constraint_values: Vec<f64>,
    /// Whether every constraint held.
    pub feasible: bool,
}

/// Result of an offline run.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineReport {
    /// Best feasible answer under the lexicographic objectives, if any.
    pub best: Option<OptimizeAnswer>,
    /// Every evaluated group, feasible first, each sorted best-first.
    pub answers: Vec<OptimizeAnswer>,
    /// Number of groups examined (product of selected-parameter domains).
    pub groups_total: usize,
    /// Engine work counters for this run only.
    pub metrics: EngineMetrics,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
}

impl OfflineReport {
    /// Feasible answers only, best first.
    pub fn feasible(&self) -> impl Iterator<Item = &OptimizeAnswer> {
        self.answers.iter().filter(|a| a.feasible)
    }
}

/// The declarative shape of one OPTIMIZE sweep: which parameters form the
/// GROUP BY grid, which sweep per group as the axis, how constraint
/// metrics aggregate, and how answers rank. Pure data + pure functions —
/// the blocking loop and the scheduled sweep driver both execute exactly
/// this plan, which is what makes their answers bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct SweepPlan {
    spec: OptimizeSpec,
    group_decls: Vec<ParameterDecl>,
    axis_decls: Vec<ParameterDecl>,
}

impl SweepPlan {
    /// Extract the plan from a script; the script must carry an OPTIMIZE
    /// directive.
    pub(crate) fn from_script(script: &Script) -> ProphetResult<Self> {
        let spec = script
            .optimize
            .clone()
            .ok_or(ProphetError::MissingOptimizeDirective)?;
        let group_decls: Vec<ParameterDecl> = script
            .params
            .iter()
            .filter(|p| spec.select_params.contains(&p.name))
            .cloned()
            .collect();
        let axis_decls: Vec<ParameterDecl> = script
            .params
            .iter()
            .filter(|p| !spec.select_params.contains(&p.name))
            .cloned()
            .collect();
        Ok(SweepPlan {
            spec,
            group_decls,
            axis_decls,
        })
    }

    pub(crate) fn spec(&self) -> &OptimizeSpec {
        &self.spec
    }

    /// Number of groups the sweep examines.
    pub(crate) fn groups_total(&self) -> usize {
        self.group_decls
            .iter()
            .map(|d| d.domain.cardinality())
            .product()
    }

    /// Axis points evaluated per group.
    pub(crate) fn axis_total(&self) -> usize {
        self.axis_decls
            .iter()
            .map(|d| d.domain.cardinality())
            .product()
    }

    /// Every group point, in the canonical row-major sweep order.
    pub(crate) fn groups(&self) -> Vec<ParamPoint> {
        let mut guide = GridGuide::new(&self.group_decls);
        std::iter::from_fn(|| guide.next_point()).collect()
    }

    /// One group's full evaluation batch: the axis grid bound onto the
    /// group's values, in the canonical axis order.
    pub(crate) fn group_points(&self, group: &ParamPoint) -> Vec<ParamPoint> {
        let mut axis = GridGuide::new(&self.axis_decls);
        std::iter::from_fn(|| axis.next_point())
            .map(|axis_point| {
                let mut full = group.clone();
                for (name, value) in axis_point.iter() {
                    full.set(name.to_owned(), value);
                }
                full
            })
            .collect()
    }

    /// Fold one group's batch results into its answer: accumulate the
    /// outer aggregate per constraint and test feasibility.
    pub(crate) fn answer_for(
        &self,
        group: &ParamPoint,
        results: &[(SampleSet, EvalOutcome)],
        output_columns: Vec<String>,
    ) -> ProphetResult<OptimizeAnswer> {
        let mut aggs: Vec<OuterAccumulator> = self
            .spec
            .constraints
            .iter()
            .map(|c| OuterAccumulator::new(c.outer))
            .collect();
        for (samples, _) in results {
            for (constraint, acc) in self.spec.constraints.iter().zip(&mut aggs) {
                let metric = match constraint.metric {
                    AggMetric::Expect => samples.expect(&constraint.column),
                    AggMetric::ExpectStdDev => samples.expect_std_dev(&constraint.column),
                }
                .ok_or_else(|| {
                    ProphetError::unknown_column(constraint.column.clone(), output_columns.clone())
                })?;
                acc.push(metric);
            }
        }
        let constraint_values: Vec<f64> = aggs.iter().map(OuterAccumulator::value).collect();
        let feasible = self
            .spec
            .constraints
            .iter()
            .zip(&constraint_values)
            .all(|(c, &v)| v.is_finite() && c.op.test(v.partial_cmp(&c.threshold)));
        Ok(OptimizeAnswer {
            point: group.clone(),
            constraint_values,
            feasible,
        })
    }

    /// Rank answers (feasible before infeasible, then lexicographic
    /// objectives) and pick the best feasible one.
    pub(crate) fn rank(
        &self,
        mut answers: Vec<OptimizeAnswer>,
    ) -> (Option<OptimizeAnswer>, Vec<OptimizeAnswer>) {
        answers.sort_by(|a, b| match (a.feasible, b.feasible) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.compare_objectives(&a.point, &b.point),
        });
        let best = answers.first().filter(|a| a.feasible).cloned();
        (best, answers)
    }

    /// Lexicographic objective comparison: earlier objectives dominate.
    fn compare_objectives(&self, a: &ParamPoint, b: &ParamPoint) -> Ordering {
        for obj in &self.spec.objectives {
            let va = a.get(&obj.param).unwrap_or(i64::MIN);
            let vb = b.get(&obj.param).unwrap_or(i64::MIN);
            let ord = match obj.direction {
                ObjectiveDirection::Max => vb.cmp(&va), // larger first
                ObjectiveDirection::Min => va.cmp(&vb), // smaller first
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        // Stable tiebreak so reports are deterministic.
        a.cmp(b)
    }
}

/// Executes the scenario's OPTIMIZE directive over the whole grid.
pub struct OfflineOptimizer {
    engine: Arc<Engine>,
    plan: SweepPlan,
    /// Present when opened through a [`Prophet`](crate::service::Prophet):
    /// [`OfflineOptimizer::run`] then executes as a submitted job on the
    /// service's shared scheduler instead of seizing the caller's thread
    /// pool.
    scheduler: Option<Arc<Scheduler>>,
}

impl std::fmt::Debug for OfflineOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OfflineOptimizer")
            .field("spec", self.plan.spec())
            .field("scheduled", &self.scheduler.is_some())
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl OfflineOptimizer {
    /// Open an optimizer over an already-built engine; the scenario must
    /// carry an OPTIMIZE directive. Optimizers opened this way run their
    /// sweeps on the caller's thread (the blocking reference path);
    /// optimizers handed out by [`Prophet::offline`] run them as scheduled
    /// jobs instead.
    ///
    /// [`Prophet::offline`]: crate::service::Prophet::offline
    pub fn open(engine: Engine) -> ProphetResult<Self> {
        let plan = SweepPlan::from_script(engine.script())?;
        Ok(OfflineOptimizer {
            engine: Arc::new(engine),
            plan,
            scheduler: None,
        })
    }

    /// Open over a shared engine, executing sweeps through the service's
    /// scheduler ([`Prophet::offline`]'s constructor).
    ///
    /// [`Prophet::offline`]: crate::service::Prophet::offline
    pub(crate) fn open_scheduled(
        engine: Arc<Engine>,
        scheduler: Arc<Scheduler>,
    ) -> ProphetResult<Self> {
        let plan = SweepPlan::from_script(engine.script())?;
        Ok(OfflineOptimizer {
            engine,
            plan,
            scheduler: Some(scheduler),
        })
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The OPTIMIZE specification being executed.
    pub fn spec(&self) -> &OptimizeSpec {
        self.plan.spec()
    }

    /// Number of groups the sweep will examine.
    pub fn groups_total(&self) -> usize {
        self.plan.groups_total()
    }

    /// Run the full sweep to completion.
    ///
    /// Through a [`Prophet`](crate::service::Prophet)-opened optimizer
    /// this is `submit(JobSpec::sweep(…)).wait()`: the sweep executes as
    /// priority-interleaved chunks on the service's shared scheduler
    /// (other jobs can overtake it), with an answer bit-identical to the
    /// blocking reference loop. For incremental consumption — progress,
    /// partial results, cancellation — submit the job yourself and keep
    /// the [`JobHandle`](crate::job::JobHandle).
    pub fn run(&self) -> ProphetResult<OfflineReport> {
        match &self.scheduler {
            Some(scheduler) => scheduler
                .submit_sweep(
                    Arc::clone(&self.engine),
                    self.plan.clone(),
                    Priority::Normal,
                )
                .wait()?
                .into_sweep(),
            None => self.run_with_observer(|_, _, _| {}),
        }
    }

    /// Run the full sweep on the caller's thread, reporting every point
    /// evaluation to `observer` as `(group point, full point, outcome)` —
    /// the hook the Figure-4 exploration map and the demo's "live-updated
    /// view" use. This is the blocking *reference* execution of the sweep
    /// plan (the scheduled job path is differentially tested against it);
    /// the observer runs inline, in canonical sweep order.
    pub fn run_with_observer(
        &self,
        mut observer: impl FnMut(&ParamPoint, &ParamPoint, &EvalOutcome),
    ) -> ProphetResult<OfflineReport> {
        let start = Stopwatch::start();
        let before = self.engine.metrics();
        let mut answers = Vec::with_capacity(self.plan.groups_total());

        for group in self.plan.groups() {
            let full_points = self.plan.group_points(&group);
            let results = self.engine.evaluate_batch(&full_points)?;
            for (full, (_, outcome)) in full_points.iter().zip(&results) {
                observer(&group, full, outcome);
            }
            answers.push(
                self.plan
                    .answer_for(&group, &results, self.engine.output_columns())?,
            );
        }

        let (best, answers) = self.plan.rank(answers);
        Ok(OfflineReport {
            best,
            groups_total: self.plan.groups_total(),
            answers,
            metrics: self.engine.metrics().since(&before),
            wall: start.elapsed(),
        })
    }
}

/// Streaming outer aggregate (MAX/MIN/AVG across the axis sweep).
#[derive(Debug, Clone, Copy)]
struct OuterAccumulator {
    agg: OuterAgg,
    acc: f64,
    count: u64,
}

impl OuterAccumulator {
    fn new(agg: OuterAgg) -> Self {
        let acc = match agg {
            OuterAgg::Max => f64::NEG_INFINITY,
            OuterAgg::Min => f64::INFINITY,
            OuterAgg::Avg => 0.0,
        };
        OuterAccumulator { agg, acc, count: 0 }
    }

    fn push(&mut self, x: f64) {
        self.count += 1;
        // NaN poisons the aggregate permanently (f64::max/min would silently
        // drop it), so a NaN metric can never satisfy a constraint.
        if self.acc.is_nan() {
            return;
        }
        if x.is_nan() {
            self.acc = f64::NAN;
            return;
        }
        match self.agg {
            OuterAgg::Max => self.acc = self.acc.max(x),
            OuterAgg::Min => self.acc = self.acc.min(x),
            OuterAgg::Avg => self.acc += x,
        }
    }

    fn value(&self) -> f64 {
        match self.agg {
            OuterAgg::Avg if self.count > 0 => self.acc / self.count as f64,
            OuterAgg::Avg => f64::NAN,
            _ => self.acc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::scenario::Scenario;
    use prophet_models::demo_registry;

    /// A small scenario whose answer is analytically known: pick the
    /// largest @x with E[x + noise] ≤ 6.05, i.e. x = 6.
    const TOY: &str = "\
DECLARE PARAMETER @x AS RANGE 0 TO 10 STEP BY 2;
DECLARE PARAMETER @w AS SET (0, 1);
SELECT @x + 0 AS load INTO results;
OPTIMIZE SELECT @x FROM results
WHERE MAX(EXPECT load) <= 6.05
GROUP BY x
FOR MAX @x";

    fn optimizer_for(source: &str, worlds: usize) -> OfflineOptimizer {
        let engine = Engine::new(
            &Scenario::parse(source).unwrap(),
            demo_registry(),
            EngineConfig {
                worlds_per_point: worlds,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        OfflineOptimizer::open(engine).unwrap()
    }

    fn toy_optimizer() -> OfflineOptimizer {
        optimizer_for(TOY, 8)
    }

    #[test]
    fn requires_optimize_directive() {
        let s =
            Scenario::parse("DECLARE PARAMETER @p AS SET (1);\nSELECT @p AS x INTO r;").unwrap();
        let engine = Engine::new(&s, demo_registry(), EngineConfig::default()).unwrap();
        let err = OfflineOptimizer::open(engine);
        assert!(
            matches!(err, Err(ProphetError::MissingOptimizeDirective)),
            "{err:?}"
        );
    }

    #[test]
    fn toy_answer_is_exact() {
        let opt = toy_optimizer();
        assert_eq!(opt.groups_total(), 6);
        let report = opt.run().unwrap();
        let best = report.best.clone().expect("x=6 is feasible");
        assert_eq!(best.point.get("x"), Some(6));
        assert!(best.feasible);
        assert!((best.constraint_values[0] - 6.0).abs() < 1e-9);
        // groups 0,2,4,6 feasible; 8,10 not
        assert_eq!(report.feasible().count(), 4);
        assert_eq!(report.answers.len(), 6);
        // feasible answers sorted best (largest x) first
        let xs: Vec<i64> = report
            .feasible()
            .map(|a| a.point.get("x").unwrap())
            .collect();
        assert_eq!(xs, vec![6, 4, 2, 0]);
    }

    #[test]
    fn infeasible_thresholds_yield_no_best() {
        let src = TOY.replace("<= 6.05", "<= -1.0");
        let opt = optimizer_for(&src, 4);
        let report = opt.run().unwrap();
        assert!(report.best.is_none());
        assert_eq!(report.feasible().count(), 0);
        assert_eq!(
            report.answers.len(),
            6,
            "infeasible groups are still reported"
        );
    }

    #[test]
    fn observer_sees_every_point() {
        let opt = toy_optimizer();
        let mut calls = 0usize;
        let mut simulated = 0usize;
        opt.run_with_observer(|group, full, outcome| {
            calls += 1;
            assert!(group.get("x").is_some());
            assert!(full.get("w").is_some(), "axis param bound in full point");
            if matches!(outcome, EvalOutcome::Simulated) {
                simulated += 1;
            }
        })
        .unwrap();
        // 6 groups × 2 axis values
        assert_eq!(calls, 12);
        assert!(simulated <= calls);
    }

    #[test]
    fn metrics_cover_only_this_run() {
        let opt = toy_optimizer();
        let r1 = opt.run().unwrap();
        assert_eq!(r1.metrics.points_total(), 12);
        // A second run is fully cached — and its metrics say so.
        let r2 = opt.run().unwrap();
        assert_eq!(r2.metrics.points_total(), 12);
        assert_eq!(r2.metrics.points_cached, 12);
        assert_eq!(r2.metrics.worlds_simulated, 0);
    }

    #[test]
    fn min_objective_direction() {
        let src = TOY.replace("FOR MAX @x", "FOR MIN @x");
        let opt = optimizer_for(&src, 4);
        let report = opt.run().unwrap();
        assert_eq!(report.best.unwrap().point.get("x"), Some(0));
    }

    #[test]
    fn plan_counts_groups_and_axis_points() {
        let opt = toy_optimizer();
        assert_eq!(opt.plan.groups_total(), 6);
        assert_eq!(opt.plan.axis_total(), 2);
        assert_eq!(opt.plan.groups().len(), 6);
        let group = &opt.plan.groups()[0];
        let points = opt.plan.group_points(group);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.get("x") == group.get("x")));
    }

    #[test]
    fn outer_accumulator_behaviour() {
        let mut max = OuterAccumulator::new(OuterAgg::Max);
        max.push(1.0);
        max.push(3.0);
        max.push(2.0);
        assert_eq!(max.value(), 3.0);

        let mut min = OuterAccumulator::new(OuterAgg::Min);
        min.push(1.0);
        min.push(-3.0);
        assert_eq!(min.value(), -3.0);

        let mut avg = OuterAccumulator::new(OuterAgg::Avg);
        avg.push(1.0);
        avg.push(3.0);
        assert_eq!(avg.value(), 2.0);

        let mut poisoned = OuterAccumulator::new(OuterAgg::Max);
        poisoned.push(1.0);
        poisoned.push(f64::NAN);
        poisoned.push(9.0);
        assert!(
            poisoned.value().is_nan(),
            "NaN must not be masked by later maxima"
        );
    }
}
