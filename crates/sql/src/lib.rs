//! # prophet-sql
//!
//! A from-scratch TSQL-subset engine with Fuzzy Prophet's probabilistic-
//! database extensions. This crate is the reproduction's substitute for the
//! Microsoft SQL Server instance the paper runs on: the Query Generator
//! compiles scenario instances against this executor instead of emitting
//! TSQL text to an external server.
//!
//! The dialect is exactly the paper's Figure 2 language:
//!
//! ```sql
//! -- DEFINITION --
//! DECLARE PARAMETER @current   AS RANGE 0 TO 52 STEP BY 1;
//! DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
//! DECLARE PARAMETER @feature   AS SET (12, 36, 44);
//!
//! SELECT DemandModel(@current, @feature)                 AS demand,
//!        CapacityModel(@current, @purchase1, @purchase2) AS capacity,
//!        CASE WHEN capacity < demand THEN 1 ELSE 0 END   AS overload
//! INTO results;
//!
//! -- ONLINE MODE --
//! GRAPH OVER @current
//!     EXPECT overload WITH bold red,
//!     EXPECT capacity WITH blue y2,
//!     EXPECT_STDDEV demand WITH orange y2;
//!
//! -- OFFLINE MODE --
//! OPTIMIZE SELECT @feature, @purchase1, @purchase2
//! FROM results
//! WHERE MAX(EXPECT overload) < 0.01
//! GROUP BY feature, purchase1, purchase2
//! FOR MAX @purchase1, MAX @purchase2
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → evaluation (VG table
//! functions resolve through a [`prophet_vg::VgRegistry`]). Aggregation
//! across worlds (`EXPECT`, `EXPECT_STDDEV`, the outer `MAX(...)` of
//! OPTIMIZE constraints) happens a layer up, in `prophet-mc` — the
//! evaluator treats those as metadata, exactly as the paper's SQL Server
//! saw only "pure TSQL".
//!
//! ## Three execution tiers
//!
//! Evaluation of the scenario SELECT comes in three semantically identical
//! tiers (full story in `docs/VECTORIZATION.md`):
//!
//! * [`executor`] — the **scalar** tier: one AST walk per possible world.
//!   This is the reference implementation of the dialect's semantics
//!   (left-to-right alias scoping, SQL three-valued logic, per-call VG
//!   substreams) and the tier of choice for evaluating a single instance.
//! * [`vector`] — the **boxed vector** tier: one AST walk per
//!   *world-block*, carrying a column of values per expression node and
//!   batching VG invocations through
//!   [`prophet_vg::VgRegistry::invoke_batch`]. A length-`L` fingerprint
//!   probe costs one walk instead of `L`.
//! * [`columnar`] — the **typed columnar** tier: the same block walk, but
//!   each node lowers to a straight-line kernel ([`mod@column`]) over
//!   `f64`/`i64`/`bool` buffers with a null bitmask, falling back to boxed
//!   values only for mixed/string data. VG models with a raw `f64` batch
//!   lane fill columns without boxing a single value. Fingerprint probes
//!   and Monte Carlo estimation default to this tier.
//!
//! The block tiers are *defined* by bit-identity with the scalar tier —
//! per world, same outputs, same VG seed derivation, same error classes —
//! and the engine's differential test suite holds them to that contract.

#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod ast;
pub mod column;
pub mod columnar;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod parser;
#[cfg(feature = "simd")]
pub mod simd;
#[cfg(test)]
pub(crate) mod test_vg;
pub mod token;
pub mod vector;

pub use ast::{
    AggMetric, CmpOp, Constraint, Expr, GraphDirective, Objective, ObjectiveDirection,
    OptimizeSpec, OuterAgg, ParameterDecl, ParameterDomain, Script, SelectInto, SelectItem,
    SeriesSpec,
};
pub use column::NullMask;
pub use columnar::{evaluate_select_columns, to_f64_samples, Column, ColumnarStats};
pub use error::{SqlError, SqlResult};
pub use executor::{evaluate_select, EvalContext};
pub use parser::parse_script;
pub use vector::{column_to_f64, evaluate_select_block};
