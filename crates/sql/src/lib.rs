//! # prophet-sql
//!
//! A from-scratch TSQL-subset engine with Fuzzy Prophet's probabilistic-
//! database extensions. This crate is the reproduction's substitute for the
//! Microsoft SQL Server instance the paper runs on: the Query Generator
//! compiles scenario instances against this executor instead of emitting
//! TSQL text to an external server.
//!
//! The dialect is exactly the paper's Figure 2 language:
//!
//! ```sql
//! -- DEFINITION --
//! DECLARE PARAMETER @current   AS RANGE 0 TO 52 STEP BY 1;
//! DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
//! DECLARE PARAMETER @feature   AS SET (12, 36, 44);
//!
//! SELECT DemandModel(@current, @feature)                 AS demand,
//!        CapacityModel(@current, @purchase1, @purchase2) AS capacity,
//!        CASE WHEN capacity < demand THEN 1 ELSE 0 END   AS overload
//! INTO results;
//!
//! -- ONLINE MODE --
//! GRAPH OVER @current
//!     EXPECT overload WITH bold red,
//!     EXPECT capacity WITH blue y2,
//!     EXPECT_STDDEV demand WITH orange y2;
//!
//! -- OFFLINE MODE --
//! OPTIMIZE SELECT @feature, @purchase1, @purchase2
//! FROM results
//! WHERE MAX(EXPECT overload) < 0.01
//! GROUP BY feature, purchase1, purchase2
//! FOR MAX @purchase1, MAX @purchase2
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → per-world evaluation in
//! [`executor`] (VG table functions resolve through a
//! [`prophet_vg::VgRegistry`]). Aggregation across worlds (`EXPECT`,
//! `EXPECT_STDDEV`, the outer `MAX(...)` of OPTIMIZE constraints) happens a
//! layer up, in `prophet-mc` — the per-world executor treats those as
//! metadata, exactly as the paper's SQL Server saw only "pure TSQL".

pub mod ast;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    AggMetric, CmpOp, Constraint, Expr, GraphDirective, Objective, ObjectiveDirection,
    OptimizeSpec, OuterAgg, ParameterDecl, ParameterDomain, Script, SelectInto, SelectItem,
    SeriesSpec,
};
pub use error::{SqlError, SqlResult};
pub use executor::{evaluate_select, EvalContext};
pub use parser::parse_script;
