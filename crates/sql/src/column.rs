//! Typed columnar kernels: straight-line loops over `f64` / `i64` / `bool`
//! slices plus the [`NullMask`] they share.
//!
//! This module is the innermost layer of the typed columnar tier
//! ([`crate::columnar`]): every function here takes plain slices and
//! returns plain buffers, with **no boxed-value enum in sight** — the
//! workspace lint (`typed-kernel` rule in `crates/analysis`) enforces
//! that nothing in this file matches on or constructs boxed value
//! columns, so the loops stay branch-free on data representation and the
//! stable compiler auto-vectorizes them. SQL NULL never appears in the
//! data lanes; it lives exclusively in the [`NullMask`] that rides next
//! to every buffer (see `crate::columnar::to_f64_samples` for the single
//! point where the mask is folded into the sample encoding).
//!
//! The `simd` feature swaps the three dense f64 arithmetic kernels for
//! explicit `std::simd` implementations (the `simd` module, nightly-only);
//! IEEE-754 `+`/`-`/`*` are exact operations, so the explicit lanes are
//! bit-identical to these scalar loops.

use crate::ast::CmpOp;

/// Validity companion of a typed column: bit `i` set means lane `i` is
/// SQL NULL and its data value is meaningless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullMask {
    bits: Vec<u64>,
    len: usize,
}

impl NullMask {
    /// All-valid mask for `len` lanes.
    pub fn none(len: usize) -> Self {
        NullMask {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of lanes covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero lanes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is lane `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Mark lane `i` NULL.
    pub fn set_null(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Any NULL lane at all?
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Number of NULL lanes.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Lane-wise OR: NULL if either input lane is NULL.
    pub fn union(&self, other: &NullMask) -> NullMask {
        debug_assert_eq!(self.len, other.len);
        NullMask {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Select lanes `idx` into a new mask (`out[k] = self[idx[k]]`).
    pub fn gather(&self, idx: &[usize]) -> NullMask {
        let mut out = NullMask::none(idx.len());
        for (k, &i) in idx.iter().enumerate() {
            if self.is_null(i) {
                out.set_null(k);
            }
        }
        out
    }
}

#[cfg(feature = "simd")]
pub use crate::simd::{add_f64, mul_f64, sub_f64};

/// Lane-wise `a + b`.
#[cfg(not(feature = "simd"))]
pub fn add_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Lane-wise `a - b`.
#[cfg(not(feature = "simd"))]
pub fn sub_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Lane-wise `a * b`.
#[cfg(not(feature = "simd"))]
pub fn mul_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Lane-wise `a / b`; a zero divisor marks the lane NULL (SQL division by
/// zero), matching the scalar tier's promotion-free float path.
pub fn div_f64(a: &[f64], b: &[f64], nulls: &mut NullMask) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    let out = a.iter().zip(b).map(|(x, y)| x / y).collect();
    for (i, &y) in b.iter().enumerate() {
        if y == 0.0 {
            nulls.set_null(i);
        }
    }
    out
}

/// Lane-wise `a % b`; a zero divisor marks the lane NULL.
pub fn rem_f64(a: &[f64], b: &[f64], nulls: &mut NullMask) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    let out = a.iter().zip(b).map(|(x, y)| x % y).collect();
    for (i, &y) in b.iter().enumerate() {
        if y == 0.0 {
            nulls.set_null(i);
        }
    }
    out
}

/// Lane-wise `-a`.
pub fn neg_f64(a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| -x).collect()
}

/// Checked lane-wise `a + b` over non-NULL lanes. `None` reports an
/// overflow on some valid lane: the caller must re-run the whole node
/// through per-value promotion, because the scalar tier promotes exactly
/// the overflowing lane to float and the column is no longer uniformly
/// typed.
pub fn add_i64(a: &[i64], b: &[i64], nulls: &NullMask) -> Option<Vec<i64>> {
    checked_i64(a, b, nulls, i64::checked_add)
}

/// Checked lane-wise `a - b` over non-NULL lanes (see [`add_i64`]).
pub fn sub_i64(a: &[i64], b: &[i64], nulls: &NullMask) -> Option<Vec<i64>> {
    checked_i64(a, b, nulls, i64::checked_sub)
}

/// Checked lane-wise `a * b` over non-NULL lanes (see [`add_i64`]).
pub fn mul_i64(a: &[i64], b: &[i64], nulls: &NullMask) -> Option<Vec<i64>> {
    checked_i64(a, b, nulls, i64::checked_mul)
}

fn checked_i64(
    a: &[i64],
    b: &[i64],
    nulls: &NullMask,
    op: impl Fn(i64, i64) -> Option<i64>,
) -> Option<Vec<i64>> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = vec![0i64; a.len()];
    for (i, lane) in out.iter_mut().enumerate() {
        if !nulls.is_null(i) {
            *lane = op(a[i], b[i])?;
        }
    }
    Some(out)
}

/// Lane-wise integer `a / b`; a zero divisor marks the lane NULL. NULL
/// lanes are skipped entirely (their data is never read), mirroring the
/// scalar tier where NULL absorbs before the division happens.
pub fn div_i64(a: &[i64], b: &[i64], nulls: &mut NullMask) -> Vec<i64> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = vec![0i64; a.len()];
    for (i, lane) in out.iter_mut().enumerate() {
        if nulls.is_null(i) {
            continue;
        }
        if b[i] == 0 {
            nulls.set_null(i);
        } else {
            *lane = a[i] / b[i];
        }
    }
    out
}

/// Lane-wise integer `a % b`; a zero divisor marks the lane NULL.
pub fn rem_i64(a: &[i64], b: &[i64], nulls: &mut NullMask) -> Vec<i64> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = vec![0i64; a.len()];
    for (i, lane) in out.iter_mut().enumerate() {
        if nulls.is_null(i) {
            continue;
        }
        if b[i] == 0 {
            nulls.set_null(i);
        } else {
            *lane = a[i] % b[i];
        }
    }
    out
}

/// Lane-wise `-a` over non-NULL lanes (NULL lanes yield 0, masked).
pub fn neg_i64(a: &[i64], nulls: &NullMask) -> Vec<i64> {
    let mut out = vec![0i64; a.len()];
    for (i, lane) in out.iter_mut().enumerate() {
        if !nulls.is_null(i) {
            *lane = -a[i];
        }
    }
    out
}

/// Widen an integer column to the float lanes the scalar tier's numeric
/// promotion (`as f64`) produces — including its precision loss above
/// 2^53, which comparisons must reproduce bit-exactly.
pub fn widen_i64(a: &[i64]) -> Vec<f64> {
    a.iter().map(|&x| x as f64).collect()
}

/// Widen a boolean column to `1.0` / `0.0` (the scalar tier's numeric
/// coercion of booleans).
pub fn widen_bool(a: &[bool]) -> Vec<f64> {
    a.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
}

/// Lane-wise comparison via `partial_cmp`, so a NaN data lane compares
/// false under every operator exactly as the scalar tier's `sql_cmp`.
pub fn cmp_f64(op: CmpOp, a: &[f64], b: &[f64]) -> Vec<bool> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| op.test(x.partial_cmp(y)))
        .collect()
}

/// Lane-wise boolean comparison (`false < true`, as in the scalar tier).
pub fn cmp_bool(op: CmpOp, a: &[bool], b: &[bool]) -> Vec<bool> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| op.test(Some(x.cmp(y))))
        .collect()
}

/// SQL truth lanes of a float column (`x <> 0.0`; NaN is truthy).
pub fn truth_f64(a: &[f64]) -> Vec<bool> {
    a.iter().map(|&x| x != 0.0).collect()
}

/// SQL truth lanes of an integer column (`x <> 0`).
pub fn truth_i64(a: &[i64]) -> Vec<bool> {
    a.iter().map(|&x| x != 0).collect()
}

/// Lane-wise logical NOT.
pub fn not_bool(a: &[bool]) -> Vec<bool> {
    a.iter().map(|&b| !b).collect()
}

/// Fold the null mask into the sample encoding: NULL lanes become NaN.
/// Only `crate::columnar::to_f64_samples` may call this — it is the one
/// place the mask and the data lanes merge.
pub fn mask_to_nan(data: &mut [f64], nulls: &NullMask) {
    if !nulls.any() {
        return;
    }
    for (i, lane) in data.iter_mut().enumerate() {
        if nulls.is_null(i) {
            *lane = f64::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_bits_round_trip_across_word_boundaries() {
        let mut m = NullMask::none(130);
        assert_eq!(m.len(), 130);
        assert!(!m.any());
        assert_eq!(m.count(), 0);
        for i in [0, 63, 64, 65, 129] {
            m.set_null(i);
        }
        for i in 0..130 {
            assert_eq!(m.is_null(i), [0, 63, 64, 65, 129].contains(&i), "lane {i}");
        }
        assert!(m.any());
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn mask_union_and_gather() {
        let mut a = NullMask::none(5);
        a.set_null(1);
        let mut b = NullMask::none(5);
        b.set_null(3);
        let u = a.union(&b);
        assert!(u.is_null(1) && u.is_null(3) && !u.is_null(0));
        let g = u.gather(&[3, 0, 1]);
        assert!(g.is_null(0) && !g.is_null(1) && g.is_null(2));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn f64_arithmetic_kernels() {
        let a = [1.5, -2.0, 0.25];
        let b = [0.5, 4.0, -1.0];
        assert_eq!(add_f64(&a, &b), vec![2.0, 2.0, -0.75]);
        assert_eq!(sub_f64(&a, &b), vec![1.0, -6.0, 1.25]);
        assert_eq!(mul_f64(&a, &b), vec![0.75, -8.0, -0.25]);
        assert_eq!(neg_f64(&a), vec![-1.5, 2.0, -0.25]);
    }

    #[test]
    fn division_by_zero_marks_null() {
        let mut nulls = NullMask::none(3);
        let out = div_f64(&[1.0, 2.0, 3.0], &[2.0, 0.0, -1.0], &mut nulls);
        assert_eq!(out[0], 0.5);
        assert_eq!(out[2], -3.0);
        assert!(nulls.is_null(1) && !nulls.is_null(0) && !nulls.is_null(2));

        let mut nulls = NullMask::none(2);
        let out = rem_f64(&[7.0, 7.0], &[4.0, 0.0], &mut nulls);
        assert_eq!(out[0], 3.0);
        assert!(nulls.is_null(1));

        let mut nulls = NullMask::none(3);
        nulls.set_null(2); // data in NULL lanes must never be divided
        let out = div_i64(&[9, 9, i64::MIN], &[4, 0, -1], &mut nulls);
        assert_eq!(out[0], 2);
        assert!(nulls.is_null(1) && nulls.is_null(2));

        let mut nulls = NullMask::none(2);
        assert_eq!(rem_i64(&[9, 9], &[4, 0], &mut nulls), vec![1, 0]);
        assert!(nulls.is_null(1));
    }

    #[test]
    fn i64_kernels_report_overflow_and_skip_null_lanes() {
        let nulls = NullMask::none(2);
        assert_eq!(add_i64(&[1, 2], &[3, 4], &nulls), Some(vec![4, 6]));
        assert_eq!(add_i64(&[i64::MAX, 0], &[1, 0], &nulls), None);
        assert_eq!(sub_i64(&[i64::MIN, 0], &[1, 0], &nulls), None);
        assert_eq!(mul_i64(&[i64::MAX, 0], &[2, 0], &nulls), None);

        // The same overflow in a NULL lane is invisible: the lane's data
        // is meaningless and the scalar tier would have absorbed NULL
        // before the arithmetic.
        let mut masked = NullMask::none(2);
        masked.set_null(0);
        assert_eq!(add_i64(&[i64::MAX, 2], &[1, 2], &masked), Some(vec![0, 4]));
        assert_eq!(neg_i64(&[i64::MIN, 5], &masked), vec![0, -5]);
    }

    #[test]
    fn widening_matches_scalar_promotion() {
        // 2^53 + 1 is not representable: `as f64` rounds, and comparisons
        // must see the rounded value like the scalar tier does.
        let big = (1i64 << 53) + 1;
        assert_eq!(widen_i64(&[3, big]), vec![3.0, big as f64]);
        assert_eq!(widen_bool(&[true, false]), vec![1.0, 0.0]);
    }

    #[test]
    fn comparison_kernels_and_nan() {
        let a = [1.0, 2.0, f64::NAN];
        let b = [2.0, 2.0, 1.0];
        assert_eq!(cmp_f64(CmpOp::Lt, &a, &b), vec![true, false, false]);
        assert_eq!(cmp_f64(CmpOp::Eq, &a, &b), vec![false, true, false]);
        // NaN compares false under every operator, including `<>`.
        assert_eq!(cmp_f64(CmpOp::Neq, &a, &b), vec![true, false, false]);
        assert_eq!(
            cmp_bool(CmpOp::Lt, &[false, true], &[true, true]),
            vec![true, false]
        );
        assert_eq!(
            cmp_bool(CmpOp::Eq, &[false, true], &[true, true]),
            vec![false, true]
        );
    }

    #[test]
    fn truth_lanes_and_not() {
        assert_eq!(
            truth_f64(&[0.0, 1.0, -0.5, f64::NAN]),
            vec![false, true, true, true]
        );
        assert_eq!(truth_i64(&[0, 7, -1]), vec![false, true, true]);
        assert_eq!(not_bool(&[true, false]), vec![false, true]);
    }

    #[test]
    fn mask_to_nan_respects_only_the_mask() {
        let mut data = vec![1.0, 2.0, f64::NAN];
        let mut nulls = NullMask::none(3);
        nulls.set_null(1);
        mask_to_nan(&mut data, &nulls);
        assert_eq!(data[0], 1.0);
        assert!(data[1].is_nan(), "NULL lane folded to NaN");
        assert!(data[2].is_nan(), "genuine NaN data lane untouched");
        assert!(!nulls.is_null(2), "a data NaN is not NULL");
    }
}
