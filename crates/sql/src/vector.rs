//! Vectorized (block) evaluation of the scenario SELECT: one AST walk per
//! *world-block* instead of one walk per world.
//!
//! The scalar tier in [`crate::executor`] evaluates the SELECT once per
//! possible world — fine for a single instance, but fingerprint probing and
//! Monte Carlo estimation always evaluate the *same* query, under the
//! *same* parameter valuation, for a whole block of worlds (the canonical
//! fingerprint seeds, or a point's estimation worlds). This module walks
//! the AST once for the entire block and carries a *column* of values per
//! expression node: a length-`L` fingerprint probe costs one walk instead
//! of `L`.
//!
//! ## Semantics are the scalar executor's, exactly
//!
//! The block evaluator is defined by one property, enforced by the
//! differential tests in `tests/vector_equivalence.rs`: for every world
//! `w` of the block, column entry `w` of every select item is **bit
//! identical** to what [`evaluate_select_with`] would have produced for
//! `w` alone under [`WorldRng::PerCall`]. Three details make that hold:
//!
//! * **Per-world call counters.** The scalar tier derives each VG call's
//!   substream from `(world, function, call index)`, where the call index
//!   counts the VG calls *that world actually executed*. The block
//!   evaluator keeps one counter per world slot and bumps only the worlds
//!   reaching a call site, so conditional evaluation never desynchronizes
//!   the seed derivation.
//! * **Lazy masks.** `CASE` arms, `AND`/`OR` right-hand sides and the
//!   scalar tier's short-circuit rules are reproduced with *selection
//!   vectors*: a sub-expression is evaluated only for the worlds whose
//!   control flow reaches it, exactly as the per-world walk would.
//! * **Left-to-right alias scoping.** Select items still evaluate in
//!   declaration order and later items see earlier aliases — as whole
//!   columns rather than scalars.
//!
//! VG functions are reached through [`VgRegistry::invoke_batch`]: one
//! *physical* call per (call site, block), `calls.len()` *logical*
//! invocations for the catalog's accounting, and a default per-world loop
//! so every existing [`prophet_vg::VgFunction`] is batch-capable unchanged.
//!
//! [`evaluate_select_with`]: crate::executor::evaluate_select_with
//! [`WorldRng::PerCall`]: crate::executor::WorldRng

use std::collections::HashMap;

use prophet_data::Value;
use prophet_vg::{SeedManager, VgCall, VgRegistry};

use crate::ast::{BinOp, Expr, SelectInto};
use crate::error::{SqlError, SqlResult};
use crate::executor::scalar_builtin;

/// Evaluate the scenario SELECT for a block of worlds in one AST walk,
/// returning one `(alias, column)` pair per select item in declaration
/// order. `worlds[i]` is the world id of block slot `i`; every returned
/// column has `worlds.len()` entries, slot-aligned.
///
/// Randomness follows the scalar executor's per-call discipline: the VG
/// call with per-world call index `k` in slot `i` draws from the substream
/// derived from `(worlds[i], function, k)`. Outputs are therefore bit
/// identical to `worlds.len()` scalar walks under
/// [`WorldRng::per_call`](crate::executor::WorldRng::per_call).
pub fn evaluate_select_block(
    select: &SelectInto,
    registry: &VgRegistry,
    params: &HashMap<String, Value>,
    seeds: SeedManager,
    worlds: &[u64],
) -> SqlResult<Vec<(String, Vec<Value>)>> {
    let mut ctx = BlockContext {
        registry,
        params,
        seeds,
        worlds,
        counters: vec![0; worlds.len()],
        aliases: HashMap::new(),
    };
    let everything: Vec<usize> = (0..worlds.len()).collect();
    let mut out = Vec::with_capacity(select.items.len());
    for item in &select.items {
        let column = eval_block(&item.expr, &mut ctx, &everything)?;
        ctx.aliases.insert(item.alias.clone(), column.clone());
        out.push((item.alias.clone(), column));
    }
    Ok(out)
}

/// Convert one output column to the `f64` sample representation the
/// estimation layers use: `NULL` becomes `NaN`, everything else goes
/// through [`Value::as_f64`]. Shared by fingerprint probing and Monte
/// Carlo materialization so both tiers agree on the conversion.
pub fn column_to_f64(column: &[Value]) -> SqlResult<Vec<f64>> {
    column
        .iter()
        .map(|v| match v {
            Value::Null => Ok(f64::NAN),
            v => v.as_f64().map_err(SqlError::from),
        })
        .collect()
}

/// Evaluation state for one block walk.
struct BlockContext<'a> {
    registry: &'a VgRegistry,
    params: &'a HashMap<String, Value>,
    seeds: SeedManager,
    worlds: &'a [u64],
    /// Per-slot running VG call index (the scalar tier's
    /// `WorldRng::PerCall` counter, one per world).
    counters: Vec<u64>,
    /// Columns of select items already evaluated, full block length.
    aliases: HashMap<String, Vec<Value>>,
}

/// Evaluate `expr` for the world slots in `sel`, returning one value per
/// selected slot (`result[i]` belongs to slot `sel[i]`).
fn eval_block(expr: &Expr, ctx: &mut BlockContext<'_>, sel: &[usize]) -> SqlResult<Vec<Value>> {
    match expr {
        Expr::Literal(v) => Ok(vec![v.clone(); sel.len()]),
        Expr::Param(name) => {
            let v = ctx
                .params
                .get(name)
                .ok_or_else(|| SqlError::Eval(format!("unbound parameter @{name}")))?;
            Ok(vec![v.clone(); sel.len()])
        }
        Expr::Column(name) => {
            let column = ctx
                .aliases
                .get(name)
                .ok_or_else(|| SqlError::Eval(format!("unknown column or alias `{name}`")))?;
            Ok(sel.iter().map(|&slot| column[slot].clone()).collect())
        }
        Expr::Neg(e) => {
            let xs = eval_block(e, ctx, sel)?;
            xs.iter().map(|v| Ok(v.neg()?)).collect()
        }
        Expr::Not(e) => {
            let xs = eval_block(e, ctx, sel)?;
            xs.iter()
                .map(|v| {
                    if v.is_null() {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Bool(!v.as_bool().map_err(SqlError::from)?))
                    }
                })
                .collect()
        }
        Expr::Binary { op, lhs, rhs } => eval_binary_block(*op, lhs, rhs, ctx, sel),
        Expr::Case { whens, otherwise } => {
            let mut out: Vec<Option<Value>> = vec![None; sel.len()];
            // Positions into `sel` of worlds no arm has matched yet.
            let mut active: Vec<usize> = (0..sel.len()).collect();
            for (cond, result) in whens {
                if active.is_empty() {
                    break;
                }
                let cond_sel: Vec<usize> = active.iter().map(|&pos| sel[pos]).collect();
                let cs = eval_block(cond, ctx, &cond_sel)?;
                let mut matched: Vec<usize> = Vec::new();
                let mut remaining: Vec<usize> = Vec::new();
                for (k, &pos) in active.iter().enumerate() {
                    // SQL: NULL condition is not satisfied.
                    if !cs[k].is_null() && cs[k].as_bool().map_err(SqlError::from)? {
                        matched.push(pos);
                    } else {
                        remaining.push(pos);
                    }
                }
                if !matched.is_empty() {
                    let result_sel: Vec<usize> = matched.iter().map(|&pos| sel[pos]).collect();
                    let rs = eval_block(result, ctx, &result_sel)?;
                    for (k, &pos) in matched.iter().enumerate() {
                        out[pos] = Some(rs[k].clone());
                    }
                }
                active = remaining;
            }
            if !active.is_empty() {
                match otherwise {
                    Some(e) => {
                        let else_sel: Vec<usize> = active.iter().map(|&pos| sel[pos]).collect();
                        let es = eval_block(e, ctx, &else_sel)?;
                        for (k, &pos) in active.iter().enumerate() {
                            out[pos] = Some(es[k].clone());
                        }
                    }
                    None => {
                        for &pos in &active {
                            out[pos] = Some(Value::Null);
                        }
                    }
                }
            }
            Ok(out
                .into_iter()
                .map(|v| v.expect("every world resolved by an arm, ELSE, or NULL"))
                .collect())
        }
        Expr::Call { name, args } => {
            let mut arg_columns = Vec::with_capacity(args.len());
            for a in args {
                arg_columns.push(eval_block(a, ctx, sel)?);
            }
            call_function_block(name, &arg_columns, ctx, sel)
        }
    }
}

fn eval_binary_block(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    ctx: &mut BlockContext<'_>,
    sel: &[usize],
) -> SqlResult<Vec<Value>> {
    // AND/OR get SQL three-valued logic; the right-hand side is evaluated
    // only for the worlds the scalar tier would not have short-circuited.
    match op {
        BinOp::And | BinOp::Or => {
            let ls = eval_block(lhs, ctx, sel)?;
            // The value an operand short-circuits to, if it does.
            let shorted = |v: &Value| -> SqlResult<Option<bool>> {
                if v.is_null() {
                    return Ok(None);
                }
                let b = v.as_bool().map_err(SqlError::from)?;
                match op {
                    BinOp::And if !b => Ok(Some(false)),
                    BinOp::Or if b => Ok(Some(true)),
                    _ => Ok(None),
                }
            };
            let mut out: Vec<Option<Value>> = vec![None; sel.len()];
            let mut rhs_pos: Vec<usize> = Vec::new();
            for (pos, l) in ls.iter().enumerate() {
                match shorted(l)? {
                    Some(b) => out[pos] = Some(Value::Bool(b)),
                    None => rhs_pos.push(pos),
                }
            }
            if !rhs_pos.is_empty() {
                let rhs_sel: Vec<usize> = rhs_pos.iter().map(|&pos| sel[pos]).collect();
                let rs = eval_block(rhs, ctx, &rhs_sel)?;
                for (k, &pos) in rhs_pos.iter().enumerate() {
                    let l = &ls[pos];
                    let r = &rs[k];
                    let v = match shorted(r)? {
                        Some(b) => Value::Bool(b),
                        None if l.is_null() || r.is_null() => Value::Null,
                        // Neither operand short-circuited nor is NULL: AND
                        // is true, OR is false.
                        None => Value::Bool(matches!(op, BinOp::And)),
                    };
                    out[pos] = Some(v);
                }
            }
            Ok(out
                .into_iter()
                .map(|v| v.expect("every world resolved by short-circuit or rhs"))
                .collect())
        }
        _ => {
            let ls = eval_block(lhs, ctx, sel)?;
            let rs = eval_block(rhs, ctx, sel)?;
            ls.iter()
                .zip(&rs)
                .map(|(l, r)| apply_binop(op, l, r))
                .collect()
        }
    }
}

/// Apply one non-logical binary operator to a single operand pair with the
/// scalar tier's exact semantics (NULL absorption, int→float promotion,
/// NULL-propagating comparisons). Shared by this boxed tier and the typed
/// columnar tier's per-value fallback path, so every tier reports identical
/// values and identical error messages.
pub(crate) fn apply_binop(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    Ok(match op {
        BinOp::Add => l.add(r)?,
        BinOp::Sub => l.sub(r)?,
        BinOp::Mul => l.mul(r)?,
        BinOp::Div => l.div(r)?,
        BinOp::Rem => l.rem(r)?,
        BinOp::Cmp(c) => {
            if l.is_null() || r.is_null() {
                Value::Null
            } else {
                Value::Bool(c.test(l.sql_cmp(r)?))
            }
        }
        BinOp::And | BinOp::Or => unreachable!("logical operators use the three-valued path"),
    })
}

/// Dispatch one call site for a block: VG table functions first (catalog
/// wins over builtins, as in the scalar tier), then scalar builtins applied
/// per world.
fn call_function_block(
    name: &str,
    arg_columns: &[Vec<Value>],
    ctx: &mut BlockContext<'_>,
    sel: &[usize],
) -> SqlResult<Vec<Value>> {
    if ctx.registry.get(name).is_err() {
        // Scalar builtin, world by world (arguments may vary per world).
        return (0..sel.len())
            .map(|k| {
                let args: Vec<Value> = arg_columns.iter().map(|c| c[k].clone()).collect();
                scalar_builtin(name, &args)
            })
            .collect();
    }

    // One derived substream per selected world; the per-slot counter bumps
    // only for worlds reaching this call site.
    let mut rngs = Vec::with_capacity(sel.len());
    for &slot in sel {
        let counter = ctx.counters[slot];
        ctx.counters[slot] += 1;
        rngs.push(ctx.seeds.rng_for(ctx.worlds[slot], name, counter));
    }
    let param_rows: Vec<Vec<Value>> = (0..sel.len())
        .map(|k| arg_columns.iter().map(|c| c[k].clone()).collect())
        .collect();
    let mut calls: Vec<VgCall<'_>> = param_rows
        .iter()
        .zip(rngs.iter_mut())
        .map(|(params, rng)| VgCall { params, rng })
        .collect();
    // In scalar position, a table-generating function must produce a
    // single cell per world — the catalog's scalar batch path extracts
    // (and validates) it, and single-cell models skip the relation
    // entirely.
    Ok(ctx.registry.invoke_batch_scalar(name, &mut calls)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{evaluate_select_with, WorldRng};
    use crate::parser::parse_script;
    use crate::test_vg::test_registry as registry;

    /// Block outputs must equal per-world scalar walks bit for bit.
    fn assert_block_matches_scalar(src: &str, params: &[(&str, Value)], worlds: &[u64]) {
        let script = parse_script(src).unwrap();
        let registry = registry();
        let params: HashMap<String, Value> = params
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect();
        let seeds = SeedManager::new(11);

        let block =
            evaluate_select_block(&script.select, &registry, &params, seeds, worlds).unwrap();
        for (slot, &world) in worlds.iter().enumerate() {
            let row = evaluate_select_with(
                &script.select,
                &registry,
                &params,
                WorldRng::per_call(seeds, world),
            )
            .unwrap();
            for (item, (alias, column)) in row.iter().zip(&block) {
                assert_eq!(&item.0, alias);
                assert_eq!(
                    item.1, column[slot],
                    "world {world} column `{alias}` diverged"
                );
            }
        }
    }

    #[test]
    fn block_matches_scalar_on_vg_and_derived_columns() {
        assert_block_matches_scalar(
            "DECLARE PARAMETER @base AS SET (100);\n\
             SELECT Jitter(@base) AS demand,\n\
                    Jitter(@base + 10) AS capacity,\n\
                    CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload\n\
             INTO results;",
            &[("base", Value::Int(100))],
            &[0, 1, 5, 9, 1_000_003],
        );
    }

    #[test]
    fn conditional_vg_calls_keep_per_world_counters_aligned() {
        // The second Jitter call only runs for worlds whose first draw is
        // below the threshold; the third call must still see call index 1
        // for skipped worlds and 2 for evaluated ones — exactly the scalar
        // behaviour.
        assert_block_matches_scalar(
            "SELECT Jitter(0) AS first,\n\
             CASE WHEN first < 0.5 THEN Jitter(100) ELSE -1 END AS maybe,\n\
             Jitter(200) AS last\n\
             INTO r;",
            &[],
            &(0..32u64).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn short_circuit_rhs_only_runs_for_unresolved_worlds() {
        assert_block_matches_scalar(
            "SELECT Jitter(0) AS first,\n\
             CASE WHEN first < 0.5 AND Jitter(0) < 0.5 THEN 1 ELSE 0 END AS both,\n\
             CASE WHEN first < 0.5 OR Jitter(0) < 0.5 THEN 1 ELSE 0 END AS either,\n\
             Jitter(9) AS last\n\
             INTO r;",
            &[],
            &(0..48u64).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn three_valued_logic_and_builtins_match_scalar() {
        assert_block_matches_scalar(
            "DECLARE PARAMETER @x AS SET (0);\n\
             SELECT NULL AND Jitter(0) > 0 AS null_and,\n\
                    NULL OR Jitter(1) > 0 AS null_or,\n\
                    COALESCE(NULL, @x) AS co,\n\
                    GREATEST(SQRT(ABS(@x - 4)), 1) AS g,\n\
                    1 / 0 AS div0,\n\
                    CASE WHEN 1/0 > 1 THEN 1 ELSE 0 END AS guarded\n\
             INTO r;",
            &[("x", Value::Int(7))],
            &[3, 4, 5],
        );
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let script = parse_script("SELECT Jitter(0) AS v INTO r;").unwrap();
        let registry = registry();
        let out = evaluate_select_block(
            &script.select,
            &registry,
            &HashMap::new(),
            SeedManager::new(0),
            &[],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].1.is_empty());
        assert_eq!(registry.stats("Jitter").unwrap().invocations, 0);
    }

    #[test]
    fn block_counts_logical_invocations() {
        let script = parse_script("SELECT Jitter(0) AS a, Jitter(1) AS b INTO r;").unwrap();
        let registry = registry();
        let worlds: Vec<u64> = (0..16).collect();
        evaluate_select_block(
            &script.select,
            &registry,
            &HashMap::new(),
            SeedManager::new(0),
            &worlds,
        )
        .unwrap();
        let stats = registry.stats("Jitter").unwrap();
        assert_eq!(stats.invocations, 32, "two call sites × 16 worlds");
        assert_eq!(stats.batched_calls, 2, "one physical call per site");
    }

    #[test]
    fn errors_match_the_scalar_tier() {
        let registry = registry();
        let seeds = SeedManager::new(0);
        let run = |src: &str| {
            let script = parse_script(src).unwrap();
            evaluate_select_block(&script.select, &registry, &HashMap::new(), seeds, &[0, 1])
                .unwrap_err()
                .to_string()
        };
        assert!(
            run("DECLARE PARAMETER @missing AS SET (0);\nSELECT @missing AS v INTO r;")
                .contains("unbound parameter @missing")
        );
        assert!(run("SELECT nope + 1 AS v INTO r;").contains("unknown column or alias `nope`"));
        assert!(run("SELECT NoSuchFn(1) AS v INTO r;").contains("function `NoSuchFn`"));
        assert!(
            run("SELECT TwoRows() AS v INTO r;").contains("exactly one cell"),
            "scalar-position misuse must be reported per the scalar tier's contract"
        );
    }

    #[test]
    fn column_to_f64_maps_null_to_nan() {
        let xs = column_to_f64(&[Value::Int(2), Value::Null, Value::Float(0.5)]).unwrap();
        assert_eq!(xs[0], 2.0);
        assert!(xs[1].is_nan());
        assert_eq!(xs[2], 0.5);
        assert!(column_to_f64(&[Value::Str("x".into())]).is_err());
    }
}
