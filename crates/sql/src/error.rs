//! Error reporting for the SQL front-end.

use std::fmt;

use prophet_data::DataError;

use crate::token::Span;

/// Result alias for this crate.
pub type SqlResult<T> = Result<T, SqlError>;

/// A positioned syntax or semantic error.
///
/// Scenario scripts are user input; everything in the front-end reports a
/// line number and a human-readable message rather than panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error (bad character, unterminated string, malformed number).
    Lex {
        /// What went wrong.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// Parse error (unexpected token).
    Parse {
        /// What went wrong, including what was expected.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// Semantic error during evaluation (unknown alias, type error…).
    Eval(String),
    /// An error bubbled up from the relational layer.
    Data(DataError),
}

impl SqlError {
    /// Construct a parse error at a span.
    pub fn parse_at(message: impl Into<String>, span: Span) -> Self {
        SqlError::Parse {
            message: message.into(),
            line: span.line,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, line } => write!(f, "lex error on line {line}: {message}"),
            SqlError::Parse { message, line } => {
                write!(f, "parse error on line {line}: {message}")
            }
            SqlError::Eval(message) => write!(f, "evaluation error: {message}"),
            SqlError::Data(err) => write!(f, "data error: {err}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for SqlError {
    fn from(err: DataError) -> Self {
        SqlError::Data(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = SqlError::Parse {
            message: "expected SELECT".into(),
            line: 7,
        };
        assert_eq!(e.to_string(), "parse error on line 7: expected SELECT");
    }

    #[test]
    fn data_errors_convert() {
        let e: SqlError = DataError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("unknown column `x`"));
    }
}
