//! Hand-rolled lexer for the Prophet TSQL dialect.
//!
//! Supports `--` line comments (the paper's Figure 2 uses them as section
//! separators), case-insensitive keywords, `@parameter` sigils, integer and
//! float literals, and single-quoted strings with `''` escaping.

use crate::error::{SqlError, SqlResult};
use crate::token::{Keyword, Span, Token, TokenKind};

/// Tokenize a complete source text.
pub fn tokenize(src: &str) -> SqlResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn run(mut self) -> SqlResult<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let line = self.line;
            let Some(b) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::point(self.pos, self.line),
                });
                return Ok(tokens);
            };
            let kind = match b {
                b'(' => {
                    self.bump();
                    TokenKind::LParen
                }
                b')' => {
                    self.bump();
                    TokenKind::RParen
                }
                b',' => {
                    self.bump();
                    TokenKind::Comma
                }
                b';' => {
                    self.bump();
                    TokenKind::Semicolon
                }
                b'+' => {
                    self.bump();
                    TokenKind::Plus
                }
                b'-' => {
                    self.bump();
                    TokenKind::Minus
                }
                b'*' => {
                    self.bump();
                    TokenKind::Star
                }
                b'/' => {
                    self.bump();
                    TokenKind::Slash
                }
                b'%' => {
                    self.bump();
                    TokenKind::Percent
                }
                b'=' => {
                    self.bump();
                    TokenKind::Eq
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Neq
                    } else {
                        return Err(SqlError::Lex {
                            message: "expected `=` after `!`".into(),
                            line,
                        });
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            TokenKind::Le
                        }
                        Some(b'>') => {
                            self.bump();
                            TokenKind::Neq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                b'@' => {
                    self.bump();
                    let name = self.take_ident_body();
                    if name.is_empty() {
                        return Err(SqlError::Lex {
                            message: "`@` must be followed by a parameter name".into(),
                            line,
                        });
                    }
                    TokenKind::Param(name)
                }
                b'\'' => self.lex_string(line)?,
                b'0'..=b'9' => self.lex_number(line)?,
                b'.' if matches!(self.peek2(), Some(b'0'..=b'9')) => self.lex_number(line)?,
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let word = self.take_ident_body();
                    let upper = word.to_ascii_uppercase();
                    match Keyword::from_upper(&upper) {
                        Some(kw) => TokenKind::Keyword(kw),
                        None => TokenKind::Ident(word),
                    }
                }
                other => {
                    return Err(SqlError::Lex {
                        message: format!("unexpected character `{}`", other as char),
                        line,
                    })
                }
            };
            tokens.push(Token {
                kind,
                span: Span {
                    start,
                    end: self.pos,
                    line,
                },
            });
        }
    }

    /// Skip whitespace and `--` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn take_ident_body(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_owned()
    }

    fn lex_number(&mut self, line: usize) -> SqlResult<TokenKind> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| SqlError::Lex {
                    message: format!("bad float literal `{text}`"),
                    line,
                })
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| SqlError::Lex {
                    message: format!("bad integer literal `{text}`"),
                    line,
                })
        }
    }

    fn lex_string(&mut self, line: usize) -> SqlResult<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // `''` is an escaped quote, as in TSQL.
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(TokenKind::Str(out));
                    }
                }
                Some(b) => out.push(b as char),
                None => {
                    return Err(SqlError::Lex {
                        message: "unterminated string literal".into(),
                        line,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declare_parameter() {
        let ks = kinds("DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Declare),
                TokenKind::Keyword(Keyword::Parameter),
                TokenKind::Param("current".into()),
                TokenKind::Keyword(Keyword::As),
                TokenKind::Keyword(Keyword::Range),
                TokenKind::Int(0),
                TokenKind::Keyword(Keyword::To),
                TokenKind::Int(52),
                TokenKind::Keyword(Keyword::Step),
                TokenKind::Keyword(Keyword::By),
                TokenKind::Int(1),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive_identifiers_preserved() {
        let ks = kinds("select Demand FROM results");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(ks[1], TokenKind::Ident("Demand".into()));
        assert_eq!(ks[2], TokenKind::Keyword(Keyword::From));
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = tokenize("-- DEFINITION --\nSELECT x\n-- more\n, y").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[0].span.line, 2);
        assert_eq!(toks[2].kind, TokenKind::Comma);
        assert_eq!(toks[2].span.line, 4);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Neq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(
            kinds("42 0.01 1e3 2.5E-2 .5"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(0.01),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Float(0.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'hello' 'it''s'"),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        match tokenize("SELECT\n  $") {
            Err(SqlError::Lex { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("@ x").is_err());
        assert!(tokenize("! x").is_err());
    }

    #[test]
    fn huge_integer_is_a_lex_error_not_a_panic() {
        assert!(tokenize("99999999999999999999999999").is_err());
    }

    #[test]
    fn empty_input_yields_only_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   -- only a comment"), vec![TokenKind::Eof]);
    }
}
