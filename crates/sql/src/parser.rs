//! Recursive-descent parser for Prophet scenario scripts.

use prophet_data::Value;

use crate::ast::{
    AggMetric, BinOp, CmpOp, Constraint, Expr, GraphDirective, Objective, ObjectiveDirection,
    OptimizeSpec, OuterAgg, ParameterDecl, ParameterDomain, Script, SelectInto, SelectItem,
    SeriesSpec,
};
use crate::error::{SqlError, SqlResult};
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a complete scenario script (the Figure-2 language).
pub fn parse_script(src: &str) -> SqlResult<Script> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.script()
}

/// Parse a standalone scalar expression (used by tests and the REPL-style
/// examples).
pub fn parse_expr(src: &str) -> SqlResult<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_kind(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek().kind, TokenKind::Keyword(k) if k == kw)
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            let t = self.peek();
            Err(SqlError::parse_at(
                format!("expected {kw:?}, found {}", t.kind),
                t.span,
            ))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> SqlResult<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            let t = self.peek();
            Err(SqlError::parse_at(
                format!("expected `{kind}`, found {}", t.kind),
                t.span,
            ))
        }
    }

    fn expect_param(&mut self) -> SqlResult<String> {
        let t = self.advance();
        match t.kind {
            TokenKind::Param(name) => Ok(name),
            other => Err(SqlError::parse_at(
                format!("expected @parameter, found {other}"),
                t.span,
            )),
        }
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        let t = self.advance();
        match t.kind {
            TokenKind::Ident(name) => Ok(name),
            other => Err(SqlError::parse_at(
                format!("expected identifier, found {other}"),
                t.span,
            )),
        }
    }

    fn expect_int(&mut self) -> SqlResult<i64> {
        // Accept a leading minus so RANGE/SET can contain negatives.
        let neg = self.eat_kind(&TokenKind::Minus);
        let t = self.advance();
        match t.kind {
            TokenKind::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(SqlError::parse_at(
                format!("expected integer, found {other}"),
                t.span,
            )),
        }
    }

    fn expect_number(&mut self) -> SqlResult<f64> {
        let neg = self.eat_kind(&TokenKind::Minus);
        let t = self.advance();
        let v = match t.kind {
            TokenKind::Int(v) => v as f64,
            TokenKind::Float(v) => v,
            other => {
                return Err(SqlError::parse_at(
                    format!("expected number, found {other}"),
                    t.span,
                ))
            }
        };
        Ok(if neg { -v } else { v })
    }

    // ---------------------------------------------------------- script

    fn script(&mut self) -> SqlResult<Script> {
        let mut params = Vec::new();
        while self.check_kw(Keyword::Declare) {
            params.push(self.parameter_decl()?);
        }
        let select = self.select_into()?;
        let mut graph = None;
        let mut optimize = None;
        loop {
            if self.check_kw(Keyword::Graph) {
                if graph.is_some() {
                    let t = self.peek();
                    return Err(SqlError::parse_at("duplicate GRAPH directive", t.span));
                }
                graph = Some(self.graph_directive()?);
            } else if self.check_kw(Keyword::Optimize) {
                if optimize.is_some() {
                    let t = self.peek();
                    return Err(SqlError::parse_at("duplicate OPTIMIZE directive", t.span));
                }
                optimize = Some(self.optimize_spec()?);
            } else {
                break;
            }
        }
        self.expect_kind(&TokenKind::Eof)?;

        // Semantic checks that need the whole script.
        let script = Script {
            params,
            select,
            graph,
            optimize,
        };
        self.validate(&script)?;
        Ok(script)
    }

    fn validate(&self, script: &Script) -> SqlResult<()> {
        let declared: Vec<&str> = script.params.iter().map(|p| p.name.as_str()).collect();
        for (i, p) in script.params.iter().enumerate() {
            if script.params[..i].iter().any(|q| q.name == p.name) {
                return Err(SqlError::Eval(format!(
                    "parameter @{} declared twice",
                    p.name
                )));
            }
            if p.domain.cardinality() == 0 {
                return Err(SqlError::Eval(format!(
                    "parameter @{} has an empty domain",
                    p.name
                )));
            }
        }
        for item in &script.select.items {
            for used in item.expr.referenced_params() {
                if !declared.contains(&used.as_str()) {
                    return Err(SqlError::Eval(format!("undeclared parameter @{used}")));
                }
            }
        }
        let columns = script.output_columns();
        if let Some(g) = &script.graph {
            if !declared.contains(&g.x_param.as_str()) {
                return Err(SqlError::Eval(format!(
                    "GRAPH OVER undeclared parameter @{}",
                    g.x_param
                )));
            }
            for s in &g.series {
                if !columns.contains(&s.column.as_str()) {
                    return Err(SqlError::Eval(format!(
                        "GRAPH series references unknown column `{}`",
                        s.column
                    )));
                }
            }
        }
        if let Some(o) = &script.optimize {
            if o.from != script.select.target {
                return Err(SqlError::Eval(format!(
                    "OPTIMIZE reads from `{}` but the scenario writes into `{}`",
                    o.from, script.select.target
                )));
            }
            for p in &o.select_params {
                if !declared.contains(&p.as_str()) {
                    return Err(SqlError::Eval(format!(
                        "OPTIMIZE selects undeclared parameter @{p}"
                    )));
                }
            }
            for c in &o.constraints {
                if !columns.contains(&c.column.as_str()) {
                    return Err(SqlError::Eval(format!(
                        "OPTIMIZE constraint references unknown column `{}`",
                        c.column
                    )));
                }
            }
            for obj in &o.objectives {
                if !declared.contains(&obj.param.as_str()) {
                    return Err(SqlError::Eval(format!(
                        "OPTIMIZE objective references undeclared parameter @{}",
                        obj.param
                    )));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------ statements

    fn parameter_decl(&mut self) -> SqlResult<ParameterDecl> {
        self.expect_kw(Keyword::Declare)?;
        self.expect_kw(Keyword::Parameter)?;
        let name = self.expect_param()?;
        self.expect_kw(Keyword::As)?;
        let domain = if self.eat_kw(Keyword::Range) {
            let lo = self.expect_int()?;
            self.expect_kw(Keyword::To)?;
            let hi = self.expect_int()?;
            self.expect_kw(Keyword::Step)?;
            self.expect_kw(Keyword::By)?;
            let span = self.peek().span;
            let step = self.expect_int()?;
            if step <= 0 {
                return Err(SqlError::parse_at("STEP BY must be positive", span));
            }
            ParameterDomain::Range { lo, hi, step }
        } else if self.eat_kw(Keyword::Set) {
            self.expect_kind(&TokenKind::LParen)?;
            let mut values = vec![self.expect_int()?];
            while self.eat_kind(&TokenKind::Comma) {
                values.push(self.expect_int()?);
            }
            self.expect_kind(&TokenKind::RParen)?;
            ParameterDomain::Set(values)
        } else {
            let t = self.peek();
            return Err(SqlError::parse_at(
                format!("expected RANGE or SET, found {}", t.kind),
                t.span,
            ));
        };
        self.expect_kind(&TokenKind::Semicolon)?;
        Ok(ParameterDecl { name, domain })
    }

    fn select_into(&mut self) -> SqlResult<SelectInto> {
        self.expect_kw(Keyword::Select)?;
        let mut items = vec![self.select_item()?];
        while self.eat_kind(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw(Keyword::Into)?;
        let target = self.expect_ident()?;
        self.expect_kind(&TokenKind::Semicolon)?;
        // Aliases must be unique: later items reference earlier ones by name.
        for (i, it) in items.iter().enumerate() {
            if items[..i].iter().any(|o| o.alias == it.alias) {
                return Err(SqlError::Eval(format!(
                    "duplicate select alias `{}`",
                    it.alias
                )));
            }
        }
        Ok(SelectInto { items, target })
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        let expr = self.expr()?;
        self.expect_kw(Keyword::As)?;
        let alias = self.expect_ident()?;
        Ok(SelectItem { expr, alias })
    }

    fn graph_directive(&mut self) -> SqlResult<GraphDirective> {
        self.expect_kw(Keyword::Graph)?;
        self.expect_kw(Keyword::Over)?;
        let x_param = self.expect_param()?;
        let mut series = vec![self.series_spec()?];
        while self.eat_kind(&TokenKind::Comma) {
            series.push(self.series_spec()?);
        }
        self.expect_kind(&TokenKind::Semicolon)?;
        Ok(GraphDirective { x_param, series })
    }

    fn series_spec(&mut self) -> SqlResult<SeriesSpec> {
        let metric = self.agg_metric()?;
        let column = self.expect_ident()?;
        let mut style = Vec::new();
        if self.eat_kw(Keyword::With) {
            // Style words run until the next comma/semicolon.
            while let TokenKind::Ident(_) = &self.peek().kind {
                style.push(self.expect_ident()?);
            }
            if style.is_empty() {
                let t = self.peek();
                return Err(SqlError::parse_at(
                    "WITH requires at least one style word",
                    t.span,
                ));
            }
        }
        Ok(SeriesSpec {
            metric,
            column,
            style,
        })
    }

    fn agg_metric(&mut self) -> SqlResult<AggMetric> {
        if self.eat_kw(Keyword::Expect) {
            Ok(AggMetric::Expect)
        } else if self.eat_kw(Keyword::ExpectStddev) {
            Ok(AggMetric::ExpectStdDev)
        } else {
            let t = self.peek();
            Err(SqlError::parse_at(
                format!("expected EXPECT or EXPECT_STDDEV, found {}", t.kind),
                t.span,
            ))
        }
    }

    fn optimize_spec(&mut self) -> SqlResult<OptimizeSpec> {
        self.expect_kw(Keyword::Optimize)?;
        self.expect_kw(Keyword::Select)?;
        let mut select_params = vec![self.expect_param()?];
        while self.eat_kind(&TokenKind::Comma) {
            select_params.push(self.expect_param()?);
        }
        self.expect_kw(Keyword::From)?;
        let from = self.expect_ident()?;
        self.expect_kw(Keyword::Where)?;
        let mut constraints = vec![self.constraint()?];
        while self.eat_kw(Keyword::And) {
            constraints.push(self.constraint()?);
        }
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expect_ident()?);
            while self.eat_kind(&TokenKind::Comma) {
                group_by.push(self.expect_ident()?);
            }
        }
        self.expect_kw(Keyword::For)?;
        let mut objectives = vec![self.objective()?];
        while self.eat_kind(&TokenKind::Comma) {
            objectives.push(self.objective()?);
        }
        // Trailing semicolon is optional (the paper's Figure 2 omits it).
        self.eat_kind(&TokenKind::Semicolon);
        Ok(OptimizeSpec {
            select_params,
            from,
            constraints,
            group_by,
            objectives,
        })
    }

    fn constraint(&mut self) -> SqlResult<Constraint> {
        let outer = if self.eat_kw(Keyword::Max) {
            OuterAgg::Max
        } else if self.eat_kw(Keyword::Min) {
            OuterAgg::Min
        } else if self.eat_kw(Keyword::Avg) {
            OuterAgg::Avg
        } else {
            let t = self.peek();
            return Err(SqlError::parse_at(
                format!("expected MAX, MIN or AVG, found {}", t.kind),
                t.span,
            ));
        };
        self.expect_kind(&TokenKind::LParen)?;
        let metric = self.agg_metric()?;
        let column = self.expect_ident()?;
        self.expect_kind(&TokenKind::RParen)?;
        let op = self.cmp_op()?;
        let threshold = self.expect_number()?;
        Ok(Constraint {
            outer,
            metric,
            column,
            op,
            threshold,
        })
    }

    fn cmp_op(&mut self) -> SqlResult<CmpOp> {
        let t = self.advance();
        Ok(match t.kind {
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            other => {
                return Err(SqlError::parse_at(
                    format!("expected comparison operator, found {other}"),
                    t.span,
                ))
            }
        })
    }

    fn objective(&mut self) -> SqlResult<Objective> {
        let direction = if self.eat_kw(Keyword::Max) {
            ObjectiveDirection::Max
        } else if self.eat_kw(Keyword::Min) {
            ObjectiveDirection::Min
        } else {
            let t = self.peek();
            return Err(SqlError::parse_at(
                format!("expected MAX or MIN, found {}", t.kind),
                t.span,
            ));
        };
        let param = self.expect_param()?;
        Ok(Objective { direction, param })
    }

    // ----------------------------------------------------- expressions

    pub(crate) fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> SqlResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op: BinOp::Cmp(op),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        let t = self.advance();
        match t.kind {
            TokenKind::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            TokenKind::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::Literal(Value::Bool(true))),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::Literal(Value::Bool(false))),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Literal(Value::Null)),
            TokenKind::Param(name) => Ok(Expr::Param(name)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Keyword(Keyword::Case) => self.case_tail(),
            TokenKind::Ident(name) => {
                if self.eat_kind(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_kind(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        while self.eat_kind(&TokenKind::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect_kind(&TokenKind::RParen)?;
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Column(name))
                }
            }
            other => Err(SqlError::parse_at(
                format!("expected expression, found {other}"),
                t.span,
            )),
        }
    }

    /// Parse after the CASE keyword: `WHEN c THEN v … [ELSE e] END`.
    fn case_tail(&mut self) -> SqlResult<Expr> {
        let mut whens = Vec::new();
        self.expect_kw(Keyword::When)?;
        loop {
            let cond = self.expr()?;
            self.expect_kw(Keyword::Then)?;
            let result = self.expr()?;
            whens.push((cond, result));
            if !self.eat_kw(Keyword::When) {
                break;
            }
        }
        let otherwise = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case { whens, otherwise })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    /// The paper's Figure 2, verbatim apart from whitespace.
    pub const FIGURE2: &str = r#"
-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature)
         AS demand,
       CapacityModel(@current, @purchase1, @purchase2)
         AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
         AS overload
INTO results;

-- ONLINE MODE --
GRAPH OVER @current
    EXPECT overload WITH bold red,
    EXPECT capacity WITH blue y2,
    EXPECT_STDDEV demand WITH orange y2;

-- OFFLINE MODE --
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
"#;

    #[test]
    fn parses_the_papers_figure_2() {
        let s = parse_script(FIGURE2).expect("Figure 2 must parse");
        assert_eq!(s.params.len(), 4);
        assert_eq!(s.params[0].name, "current");
        assert_eq!(s.params[0].domain.cardinality(), 53);
        assert_eq!(s.params[1].domain.cardinality(), 14);
        assert_eq!(s.params[3].domain, ParameterDomain::Set(vec![12, 36, 44]));

        assert_eq!(s.select.target, "results");
        assert_eq!(s.output_columns(), vec!["demand", "capacity", "overload"]);

        let g = s.graph.as_ref().expect("graph directive");
        assert_eq!(g.x_param, "current");
        assert_eq!(g.series.len(), 3);
        assert_eq!(g.series[0].metric, AggMetric::Expect);
        assert_eq!(g.series[0].column, "overload");
        assert_eq!(g.series[0].style, vec!["bold", "red"]);
        assert_eq!(g.series[2].metric, AggMetric::ExpectStdDev);

        let o = s.optimize.as_ref().expect("optimize directive");
        assert_eq!(o.select_params, vec!["feature", "purchase1", "purchase2"]);
        assert_eq!(o.from, "results");
        assert_eq!(o.constraints.len(), 1);
        let c = &o.constraints[0];
        assert_eq!(c.outer, OuterAgg::Max);
        assert_eq!(c.metric, AggMetric::Expect);
        assert_eq!(c.column, "overload");
        assert_eq!(c.op, CmpOp::Lt);
        assert!((c.threshold - 0.01).abs() < 1e-12);
        assert_eq!(o.group_by, vec!["feature", "purchase1", "purchase2"]);
        assert_eq!(o.objectives.len(), 2);
        assert_eq!(o.objectives[0].direction, ObjectiveDirection::Max);
        assert_eq!(o.objectives[0].param, "purchase1");
    }

    #[test]
    fn case_expression_structure() {
        let e = parse_expr("CASE WHEN capacity < demand THEN 1 ELSE 0 END").unwrap();
        match e {
            Expr::Case { whens, otherwise } => {
                assert_eq!(whens.len(), 1);
                assert!(otherwise.is_some());
                match &whens[0].0 {
                    Expr::Binary {
                        op: BinOp::Cmp(CmpOp::Lt),
                        ..
                    } => {}
                    other => panic!("unexpected condition {other:?}"),
                }
            }
            other => panic!("expected CASE, got {other:?}"),
        }
    }

    #[test]
    fn multi_when_case_without_else() {
        let e = parse_expr("CASE WHEN a > 1 THEN 1 WHEN a > 0 THEN 2 END").unwrap();
        match e {
            Expr::Case { whens, otherwise } => {
                assert_eq!(whens.len(), 2);
                assert!(otherwise.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add_over_cmp_over_and() {
        let e = parse_expr("1 + 2 * 3 < 10 AND x = 1").unwrap();
        // top must be AND
        match e {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                ..
            } => match *lhs {
                Expr::Binary {
                    op: BinOp::Cmp(CmpOp::Lt),
                    lhs,
                    ..
                } => match *lhs {
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => match *rhs {
                        Expr::Binary { op: BinOp::Mul, .. } => {}
                        other => panic!("expected Mul under Add, got {other:?}"),
                    },
                    other => panic!("expected Add under Lt, got {other:?}"),
                },
                other => panic!("expected Lt under And, got {other:?}"),
            },
            other => panic!("expected And at top, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_parens() {
        let e = parse_expr("-(1 + @x) * 2").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => match *lhs {
                Expr::Neg(_) => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_arg_calls_and_nested_calls() {
        let e = parse_expr("F() + G(H(1), 2)").unwrap();
        let calls = e.referenced_calls();
        let names: Vec<&str> = calls.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["F", "G", "H"]);
    }

    #[test]
    fn undeclared_parameter_is_rejected() {
        let src = "SELECT DemandModel(@nope) AS d INTO r;";
        let err = parse_script(src).unwrap_err();
        assert!(
            err.to_string().contains("undeclared parameter @nope"),
            "{err}"
        );
    }

    #[test]
    fn empty_domain_is_rejected() {
        let src = "DECLARE PARAMETER @p AS RANGE 5 TO 4 STEP BY 1;\nSELECT 1 AS x INTO r;";
        let err = parse_script(src).unwrap_err();
        assert!(err.to_string().contains("empty domain"), "{err}");
    }

    #[test]
    fn non_positive_step_is_rejected() {
        let src = "DECLARE PARAMETER @p AS RANGE 0 TO 4 STEP BY 0;\nSELECT 1 AS x INTO r;";
        assert!(parse_script(src).is_err());
    }

    #[test]
    fn duplicate_alias_is_rejected() {
        let src = "SELECT 1 AS x, 2 AS x INTO r;";
        let err = parse_script(src).unwrap_err();
        assert!(err.to_string().contains("duplicate select alias"), "{err}");
    }

    #[test]
    fn duplicate_parameter_is_rejected() {
        let src = "DECLARE PARAMETER @p AS SET (1);\nDECLARE PARAMETER @p AS SET (2);\nSELECT 1 AS x INTO r;";
        let err = parse_script(src).unwrap_err();
        assert!(err.to_string().contains("declared twice"), "{err}");
    }

    #[test]
    fn graph_validation() {
        let src =
            "DECLARE PARAMETER @p AS SET (1);\nSELECT 1 AS x INTO r;\nGRAPH OVER @q EXPECT x;";
        assert!(parse_script(src)
            .unwrap_err()
            .to_string()
            .contains("undeclared parameter @q"));

        let src =
            "DECLARE PARAMETER @p AS SET (1);\nSELECT 1 AS x INTO r;\nGRAPH OVER @p EXPECT y;";
        assert!(parse_script(src)
            .unwrap_err()
            .to_string()
            .contains("unknown column `y`"));
    }

    #[test]
    fn optimize_validation() {
        let base = "DECLARE PARAMETER @p AS SET (1);\nSELECT 1 AS x INTO r;\n";
        let bad_from =
            format!("{base}OPTIMIZE SELECT @p FROM other WHERE MAX(EXPECT x) < 1 FOR MAX @p");
        assert!(parse_script(&bad_from)
            .unwrap_err()
            .to_string()
            .contains("reads from `other`"));

        let bad_col =
            format!("{base}OPTIMIZE SELECT @p FROM r WHERE MAX(EXPECT nope) < 1 FOR MAX @p");
        assert!(parse_script(&bad_col)
            .unwrap_err()
            .to_string()
            .contains("unknown column `nope`"));

        let bad_obj =
            format!("{base}OPTIMIZE SELECT @p FROM r WHERE MAX(EXPECT x) < 1 FOR MAX @zz");
        assert!(parse_script(&bad_obj)
            .unwrap_err()
            .to_string()
            .contains("undeclared parameter @zz"));
    }

    #[test]
    fn multiple_constraints_with_and() {
        let src = "DECLARE PARAMETER @p AS SET (1);\nSELECT 1 AS x, 2 AS y INTO r;\nOPTIMIZE SELECT @p FROM r WHERE MAX(EXPECT x) < 1 AND AVG(EXPECT_STDDEV y) >= 0.5 FOR MIN @p";
        let s = parse_script(src).unwrap();
        let o = s.optimize.unwrap();
        assert_eq!(o.constraints.len(), 2);
        assert_eq!(o.constraints[1].outer, OuterAgg::Avg);
        assert_eq!(o.constraints[1].metric, AggMetric::ExpectStdDev);
        assert_eq!(o.constraints[1].op, CmpOp::Ge);
        assert_eq!(o.objectives[0].direction, ObjectiveDirection::Min);
    }

    #[test]
    fn negative_set_values_and_thresholds() {
        let src = "DECLARE PARAMETER @p AS SET (-4, -2, 0);\nSELECT @p AS x INTO r;\nOPTIMIZE SELECT @p FROM r WHERE MIN(EXPECT x) > -3.5 FOR MAX @p";
        let s = parse_script(src).unwrap();
        assert_eq!(s.params[0].domain, ParameterDomain::Set(vec![-4, -2, 0]));
        let o = s.optimize.unwrap();
        assert!((o.constraints[0].threshold + 3.5).abs() < 1e-12);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let src = "DECLARE PARAMETER @p AS SET (1);\nSELECT 1 AS\nINTO r;";
        match parse_script(src) {
            Err(SqlError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_hang() {
        assert!(parse_script("SELECT 1 AS x").is_err());
        assert!(parse_script("DECLARE PARAMETER @p AS RANGE 0 TO").is_err());
        assert!(parse_script("SELECT CASE WHEN 1 THEN").is_err());
        assert!(parse_script("").is_err());
    }

    #[test]
    fn graph_series_without_style() {
        let src =
            "DECLARE PARAMETER @p AS SET (1,2);\nSELECT @p AS x INTO r;\nGRAPH OVER @p EXPECT x;";
        let s = parse_script(src).unwrap();
        assert!(s.graph.unwrap().series[0].style.is_empty());
    }

    #[test]
    fn directives_in_either_order() {
        let src = "DECLARE PARAMETER @p AS SET (1,2);\nSELECT @p AS x INTO r;\nOPTIMIZE SELECT @p FROM r WHERE MAX(EXPECT x) < 10 FOR MAX @p;\nGRAPH OVER @p EXPECT x;";
        let s = parse_script(src).unwrap();
        assert!(s.graph.is_some());
        assert!(s.optimize.is_some());
    }
}
