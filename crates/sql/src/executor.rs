//! Per-world evaluation of the scenario SELECT.
//!
//! This is the "pure TSQL" tier of the paper's Figure-1 cycle: the Query
//! Generator (in `prophet-mc`) hands this executor one *instance* — a
//! concrete valuation of every `@parameter` plus a world-seeded PRNG — and
//! gets back one row of the results relation. Aggregation across worlds
//! happens upstream.
//!
//! Select items evaluate left to right and later items may reference earlier
//! aliases (`CASE WHEN capacity < demand …` in Figure 2), which is the one
//! deliberate departure from stock TSQL scoping the paper's syntax requires.

use std::collections::HashMap;

use prophet_data::{DataError, Value};
use prophet_vg::rng::Rng64;
use prophet_vg::{SeedManager, VgRegistry};

use crate::ast::{BinOp, Expr, SelectInto};
use crate::error::{SqlError, SqlResult};

/// Randomness strategy for one world's evaluation.
///
/// * [`WorldRng::Shared`] — every VG call draws sequentially from one
///   stream. Simple, but a model whose *consumption* varies (e.g. Poisson
///   counts) desynchronizes every later call across parameter points.
/// * [`WorldRng::PerCall`] — each VG call site gets its own substream
///   derived from `(world, function, call index)`. This is the engine's
///   default: under common random numbers, call *k* sees identical
///   randomness for every parameter point, which is the property the
///   fingerprint machinery exploits.
pub enum WorldRng<'a> {
    /// One shared stream for the whole world.
    Shared(&'a mut dyn Rng64),
    /// Derived substream per VG call.
    PerCall {
        /// Seed derivation root.
        seeds: SeedManager,
        /// World id.
        world: u64,
        /// Running call index within this world (starts at 0).
        counter: u64,
    },
}

impl<'a> WorldRng<'a> {
    /// Per-call strategy for a given world.
    pub fn per_call(seeds: SeedManager, world: u64) -> Self {
        WorldRng::PerCall {
            seeds,
            world,
            counter: 0,
        }
    }
}

/// Evaluation context for one possible world.
pub struct EvalContext<'a, 'r> {
    /// VG function catalog.
    pub registry: &'a VgRegistry,
    /// Concrete `@parameter` values for this instance.
    pub params: &'a HashMap<String, Value>,
    /// Randomness strategy.
    rng: WorldRng<'r>,
    /// Aliases of select items already evaluated in this world.
    aliases: HashMap<String, Value>,
}

impl<'a, 'r> EvalContext<'a, 'r> {
    /// Fresh context with a shared stream (legacy/test convenience).
    pub fn new(
        registry: &'a VgRegistry,
        params: &'a HashMap<String, Value>,
        rng: &'r mut dyn Rng64,
    ) -> Self {
        EvalContext {
            registry,
            params,
            rng: WorldRng::Shared(rng),
            aliases: HashMap::new(),
        }
    }

    /// Fresh context with an explicit randomness strategy.
    pub fn with_rng(
        registry: &'a VgRegistry,
        params: &'a HashMap<String, Value>,
        rng: WorldRng<'r>,
    ) -> Self {
        EvalContext {
            registry,
            params,
            rng,
            aliases: HashMap::new(),
        }
    }

    /// Record an alias so later select items can reference it.
    pub fn bind_alias(&mut self, name: &str, value: Value) {
        self.aliases.insert(name.to_owned(), value);
    }

    /// Look up an alias.
    pub fn alias(&self, name: &str) -> Option<&Value> {
        self.aliases.get(name)
    }

    /// Invoke a VG function under the context's randomness strategy.
    fn invoke_vg(&mut self, name: &str, args: &[Value]) -> SqlResult<prophet_data::Table> {
        match &mut self.rng {
            WorldRng::Shared(rng) => Ok(self.registry.invoke(name, args, *rng)?),
            WorldRng::PerCall {
                seeds,
                world,
                counter,
            } => {
                let mut rng = seeds.rng_for(*world, name, *counter);
                *counter += 1;
                Ok(self.registry.invoke(name, args, &mut rng)?)
            }
        }
    }
}

/// Evaluate the scenario SELECT for one world with a shared stream,
/// returning `(alias, value)` pairs in declaration order.
pub fn evaluate_select(
    select: &SelectInto,
    registry: &VgRegistry,
    params: &HashMap<String, Value>,
    rng: &mut dyn Rng64,
) -> SqlResult<Vec<(String, Value)>> {
    evaluate_select_with(select, registry, params, WorldRng::Shared(rng))
}

/// Evaluate the scenario SELECT for one world under an explicit randomness
/// strategy.
pub fn evaluate_select_with(
    select: &SelectInto,
    registry: &VgRegistry,
    params: &HashMap<String, Value>,
    rng: WorldRng<'_>,
) -> SqlResult<Vec<(String, Value)>> {
    let mut ctx = EvalContext::with_rng(registry, params, rng);
    let mut out = Vec::with_capacity(select.items.len());
    for item in &select.items {
        let v = eval_expr(&item.expr, &mut ctx)?;
        ctx.bind_alias(&item.alias, v.clone());
        out.push((item.alias.clone(), v));
    }
    Ok(out)
}

/// Evaluate one scalar expression in a world context.
pub fn eval_expr(expr: &Expr, ctx: &mut EvalContext<'_, '_>) -> SqlResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(name) => ctx
            .params
            .get(name)
            .cloned()
            .ok_or_else(|| SqlError::Eval(format!("unbound parameter @{name}"))),
        Expr::Column(name) => ctx
            .alias(name)
            .cloned()
            .ok_or_else(|| SqlError::Eval(format!("unknown column or alias `{name}`"))),
        Expr::Neg(e) => {
            let v = eval_expr(e, ctx)?;
            Ok(v.neg()?)
        }
        Expr::Not(e) => {
            let v = eval_expr(e, ctx)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.as_bool().map_err(SqlError::from)?))
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, ctx),
        Expr::Case { whens, otherwise } => {
            for (cond, result) in whens {
                let c = eval_expr(cond, ctx)?;
                // SQL: NULL condition is not satisfied.
                if !c.is_null() && c.as_bool().map_err(SqlError::from)? {
                    return eval_expr(result, ctx);
                }
            }
            match otherwise {
                Some(e) => eval_expr(e, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Call { name, args } => {
            let mut arg_values = Vec::with_capacity(args.len());
            for a in args {
                arg_values.push(eval_expr(a, ctx)?);
            }
            call_function(name, &arg_values, ctx)
        }
    }
}

fn eval_binary(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    ctx: &mut EvalContext<'_, '_>,
) -> SqlResult<Value> {
    // AND/OR get SQL three-valued logic with short-circuiting.
    match op {
        BinOp::And => {
            let l = eval_expr(lhs, ctx)?;
            if !l.is_null() && !l.as_bool().map_err(SqlError::from)? {
                return Ok(Value::Bool(false));
            }
            let r = eval_expr(rhs, ctx)?;
            if !r.is_null() && !r.as_bool().map_err(SqlError::from)? {
                return Ok(Value::Bool(false));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(true))
        }
        BinOp::Or => {
            let l = eval_expr(lhs, ctx)?;
            if !l.is_null() && l.as_bool().map_err(SqlError::from)? {
                return Ok(Value::Bool(true));
            }
            let r = eval_expr(rhs, ctx)?;
            if !r.is_null() && r.as_bool().map_err(SqlError::from)? {
                return Ok(Value::Bool(true));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(false))
        }
        _ => {
            let l = eval_expr(lhs, ctx)?;
            let r = eval_expr(rhs, ctx)?;
            let v = match op {
                BinOp::Add => l.add(&r)?,
                BinOp::Sub => l.sub(&r)?,
                BinOp::Mul => l.mul(&r)?,
                BinOp::Div => l.div(&r)?,
                BinOp::Rem => l.rem(&r)?,
                BinOp::Cmp(c) => {
                    if l.is_null() || r.is_null() {
                        Value::Null
                    } else {
                        Value::Bool(c.test(l.sql_cmp(&r)?))
                    }
                }
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            };
            Ok(v)
        }
    }
}

/// Dispatch a call: VG table functions first (catalog wins over builtins, so
/// analysts can shadow a builtin with a model), then scalar builtins.
fn call_function(name: &str, args: &[Value], ctx: &mut EvalContext<'_, '_>) -> SqlResult<Value> {
    if ctx.registry.get(name).is_ok() {
        let table = ctx.invoke_vg(name, args)?;
        // In scalar position, a table-generating function must produce a
        // single cell — that cell is the world's sample. The extraction
        // (and its misuse diagnostic) is shared with the vectorized tier.
        return Ok(prophet_vg::function::extract_scalar_cell(name, &table)?);
    }
    scalar_builtin(name, args)
}

/// Scalar builtin functions (TSQL-ish). Shared with the vectorized
/// evaluator in [`crate::vector`], which applies the same builtin per world.
pub(crate) fn scalar_builtin(name: &str, args: &[Value]) -> SqlResult<Value> {
    let upper = name.to_ascii_uppercase();

    fn unary_f64(name: &str, args: &[Value], f: impl Fn(f64) -> f64) -> SqlResult<Value> {
        if args.len() != 1 {
            return Err(SqlError::Eval(format!(
                "{name} takes 1 argument, got {}",
                args.len()
            )));
        }
        if args[0].is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Float(f(args[0].as_f64().map_err(SqlError::from)?)))
    }

    match upper.as_str() {
        "ABS" => {
            if args.len() != 1 {
                return Err(SqlError::Eval(format!(
                    "ABS takes 1 argument, got {}",
                    args.len()
                )));
            }
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                v => Ok(Value::Float(v.as_f64().map_err(SqlError::from)?.abs())),
            }
        }
        "SQRT" => unary_f64("SQRT", args, f64::sqrt),
        "EXP" => unary_f64("EXP", args, f64::exp),
        "LN" => unary_f64("LN", args, f64::ln),
        "FLOOR" => unary_f64("FLOOR", args, f64::floor),
        "CEILING" | "CEIL" => unary_f64("CEILING", args, f64::ceil),
        "POWER" => {
            if args.len() != 2 {
                return Err(SqlError::Eval(format!(
                    "POWER takes 2 arguments, got {}",
                    args.len()
                )));
            }
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            let b = args[0].as_f64().map_err(SqlError::from)?;
            let e = args[1].as_f64().map_err(SqlError::from)?;
            Ok(Value::Float(b.powf(e)))
        }
        "LEAST" | "GREATEST" => {
            if args.is_empty() {
                return Err(SqlError::Eval(format!(
                    "{upper} needs at least one argument"
                )));
            }
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let mut best = args[0].clone();
            for v in &args[1..] {
                let ord = best.sql_cmp(v)?;
                let replace = matches!(
                    (upper.as_str(), ord),
                    ("LEAST", Some(std::cmp::Ordering::Greater))
                        | ("GREATEST", Some(std::cmp::Ordering::Less))
                );
                if replace {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "COALESCE" => {
            for v in args {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        _ => Err(SqlError::Data(DataError::UnknownColumn(format!(
            "function `{name}`"
        )))),
    }
}

/// Evaluate a constant expression (no params, columns, VG functions or
/// randomness). Used for threshold folding and by tests.
pub fn eval_const(expr: &Expr) -> SqlResult<Value> {
    struct NullRng;
    impl Rng64 for NullRng {
        fn next_u64(&mut self) -> u64 {
            unreachable!("constant expressions must not consume randomness")
        }
    }
    let registry = VgRegistry::new();
    let params = HashMap::new();
    let mut rng = NullRng;
    let mut ctx = EvalContext::new(&registry, &params, &mut rng);
    eval_expr(expr, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_script};
    use crate::test_vg::test_registry;
    use prophet_vg::rng::Xoshiro256StarStar;

    fn const_eval(src: &str) -> Value {
        eval_const(&parse_expr(src).unwrap()).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(const_eval("1 + 2 * 3"), Value::Int(7));
        assert_eq!(const_eval("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(const_eval("7 / 2"), Value::Int(3));
        assert_eq!(const_eval("7.0 / 2"), Value::Float(3.5));
        assert_eq!(const_eval("7 % 3"), Value::Int(1));
        assert_eq!(const_eval("-2 * 3"), Value::Int(-6));
    }

    #[test]
    fn comparisons() {
        assert_eq!(const_eval("1 < 2"), Value::Bool(true));
        assert_eq!(const_eval("2 <= 2"), Value::Bool(true));
        assert_eq!(const_eval("3 <> 3"), Value::Bool(false));
        assert_eq!(const_eval("2.5 >= 2"), Value::Bool(true));
        assert_eq!(const_eval("'a' = 'a'"), Value::Bool(true));
        assert_eq!(const_eval("'a' < 'b'"), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(const_eval("NULL AND TRUE"), Value::Null);
        assert_eq!(const_eval("NULL AND FALSE"), Value::Bool(false));
        assert_eq!(const_eval("NULL OR TRUE"), Value::Bool(true));
        assert_eq!(const_eval("NULL OR FALSE"), Value::Null);
        assert_eq!(const_eval("NOT NULL"), Value::Null);
        assert_eq!(const_eval("NULL = NULL"), Value::Null);
        assert_eq!(const_eval("NULL + 1"), Value::Null);
    }

    #[test]
    fn case_evaluation_order_and_null_condition() {
        assert_eq!(
            const_eval("CASE WHEN 1 < 2 THEN 10 WHEN 1 < 3 THEN 20 END"),
            Value::Int(10)
        );
        assert_eq!(const_eval("CASE WHEN 2 < 1 THEN 10 END"), Value::Null);
        assert_eq!(
            const_eval("CASE WHEN NULL THEN 10 ELSE 20 END"),
            Value::Int(20)
        );
    }

    #[test]
    fn builtins() {
        assert_eq!(const_eval("ABS(-3)"), Value::Int(3));
        assert_eq!(const_eval("ABS(-3.5)"), Value::Float(3.5));
        assert_eq!(const_eval("SQRT(9)"), Value::Float(3.0));
        assert_eq!(const_eval("FLOOR(2.7)"), Value::Float(2.0));
        assert_eq!(const_eval("CEILING(2.1)"), Value::Float(3.0));
        assert_eq!(const_eval("POWER(2, 10)"), Value::Float(1024.0));
        assert_eq!(const_eval("LEAST(3, 1, 2)"), Value::Int(1));
        assert_eq!(const_eval("GREATEST(3, 1, 2)"), Value::Int(3));
        assert_eq!(const_eval("COALESCE(NULL, NULL, 5)"), Value::Int(5));
        assert_eq!(const_eval("COALESCE(NULL, NULL)"), Value::Null);
        assert_eq!(const_eval("EXP(0)"), Value::Float(1.0));
        let ln_e = const_eval("LN(2.718281828459045)");
        match ln_e {
            Value::Float(f) => assert!((f - 1.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn builtin_null_propagation_and_arity_errors() {
        assert_eq!(const_eval("SQRT(NULL)"), Value::Null);
        assert_eq!(const_eval("POWER(NULL, 2)"), Value::Null);
        assert_eq!(const_eval("LEAST(1, NULL)"), Value::Null);
        assert!(eval_const(&parse_expr("SQRT(1, 2)").unwrap()).is_err());
        assert!(eval_const(&parse_expr("POWER(1)").unwrap()).is_err());
        assert!(eval_const(&parse_expr("NoSuchFn(1)").unwrap()).is_err());
    }

    #[test]
    fn full_select_with_vg_and_alias_references() {
        let script = parse_script(
            "DECLARE PARAMETER @base AS SET (100);\n\
             SELECT Jitter(@base) AS demand,\n\
                    Jitter(@base + 10) AS capacity,\n\
                    CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload\n\
             INTO results;",
        )
        .unwrap();
        let registry = test_registry();
        let mut params = HashMap::new();
        params.insert("base".to_string(), Value::Int(100));
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let row = evaluate_select(&script.select, &registry, &params, &mut rng).unwrap();
        assert_eq!(row.len(), 3);
        assert_eq!(row[0].0, "demand");
        let demand = row[0].1.as_f64().unwrap();
        let capacity = row[1].1.as_f64().unwrap();
        assert!((100.0..101.0).contains(&demand));
        assert!((110.0..111.0).contains(&capacity));
        // capacity > demand here, so no overload
        assert_eq!(row[2].1, Value::Int(0));
    }

    #[test]
    fn select_is_deterministic_per_seed() {
        let script =
            parse_script("DECLARE PARAMETER @b AS SET (0);\nSELECT Jitter(@b) AS v INTO r;")
                .unwrap();
        let registry = test_registry();
        let mut params = HashMap::new();
        params.insert("b".to_string(), Value::Int(0));
        let run = |seed| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            evaluate_select(&script.select, &registry, &params, &mut rng).unwrap()[0]
                .1
                .clone()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn vg_scalar_misuse_is_reported() {
        let script = parse_script("SELECT TwoRows() AS v INTO r;").unwrap();
        let registry = test_registry();
        let params = HashMap::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let err = evaluate_select(&script.select, &registry, &params, &mut rng).unwrap_err();
        assert!(err.to_string().contains("exactly one cell"), "{err}");
    }

    #[test]
    fn unbound_parameter_is_reported() {
        let script =
            parse_script("DECLARE PARAMETER @b AS SET (0);\nSELECT @b AS v INTO r;").unwrap();
        let registry = test_registry();
        let params = HashMap::new(); // not bound
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let err = evaluate_select(&script.select, &registry, &params, &mut rng).unwrap_err();
        assert!(err.to_string().contains("unbound parameter @b"), "{err}");
    }

    #[test]
    fn unknown_alias_is_reported() {
        let script = parse_script("SELECT missing + 1 AS v INTO r;").unwrap();
        let registry = test_registry();
        let params = HashMap::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let err = evaluate_select(&script.select, &registry, &params, &mut rng).unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown column or alias `missing`"),
            "{err}"
        );
    }

    #[test]
    fn division_by_zero_flows_as_null_not_error() {
        assert_eq!(const_eval("1 / 0"), Value::Null);
        assert_eq!(
            const_eval("CASE WHEN 1/0 > 1 THEN 1 ELSE 0 END"),
            Value::Int(0)
        );
    }

    #[test]
    fn per_call_streams_isolate_call_sites() {
        use prophet_vg::SeedManager;

        // Two Jitter calls in one select: under per-call streams they draw
        // from independent substreams, and the FIRST call's draw must be
        // identical across different parameter values (CRN alignment).
        let script = parse_script(
            "DECLARE PARAMETER @b AS SET (0, 100);\n\
             SELECT Jitter(@b) AS first, Jitter(@b) AS second INTO r;",
        )
        .unwrap();
        let registry = test_registry();
        let seeds = SeedManager::new(7);

        let eval = |b: i64| {
            let mut params = HashMap::new();
            params.insert("b".to_string(), Value::Int(b));
            evaluate_select_with(
                &script.select,
                &registry,
                &params,
                crate::executor::WorldRng::per_call(seeds, 3),
            )
            .unwrap()
        };
        let r0 = eval(0);
        let r100 = eval(100);
        let noise_first_0 = r0[0].1.as_f64().unwrap();
        let noise_first_100 = r100[0].1.as_f64().unwrap() - 100.0;
        assert!(
            (noise_first_0 - noise_first_100).abs() < 1e-12,
            "first-call noise must align across parameter values"
        );
        // and the two call sites see different noise
        let noise_second_0 = r0[1].1.as_f64().unwrap();
        assert_ne!(noise_first_0, noise_second_0);
        // same world twice → identical output
        assert_eq!(eval(0), eval(0));
    }
}
