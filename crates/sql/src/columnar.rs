//! Typed columnar evaluation of the scenario SELECT: the third execution
//! tier (see `docs/VECTORIZATION.md` for the full three-tier story).
//!
//! The boxed vector tier ([`crate::vector`]) already walks the AST once
//! per world-block, but it carries a `Vec<Value>` per node and branches on
//! the value enum for every world. This tier specializes the hot numeric
//! path to typed buffers — a [`Column`] is a `Vec<f64>` / `Vec<i64>` /
//! `Vec<bool>` plus a [`NullMask`] — and lowers each expression node to a
//! straight-line kernel from [`crate::column`] over those buffers. Mixed
//! or string data drops to the [`Column::Boxed`] representation and
//! per-value evaluation for that node ([`ColumnarStats::fallbacks`]
//! counts how often), then re-sniffs back to a typed buffer so one odd
//! node does not unbox the rest of the walk.
//!
//! ## Bit-identity contract
//!
//! Like the boxed tier, this tier is *defined* by bit-identity with the
//! scalar walker: per world, same outputs, same VG substream derivation
//! `(world, function, call index)`, same error classes and messages. The
//! selection-vector discipline (CASE arms, `AND`/`OR` right-hand sides),
//! per-slot call counters, and left-to-right alias scoping are carried
//! over from [`crate::vector`] unchanged. Two consequences shape the
//! kernels:
//!
//! * integer arithmetic must detect overflow, because the scalar tier
//!   promotes exactly the overflowing lane to float — the whole node then
//!   re-runs through per-value promotion ([`crate::vector`]'s shared
//!   `apply_binop`);
//! * `Int`-vs-`Int` comparisons widen through `f64` (with its precision
//!   loss above 2^53) because `Value::sql_cmp` does.
//!
//! ## NULL lives in the mask
//!
//! Inside this tier SQL NULL is *only* ever mask state; data lanes of
//! NULL slots are meaningless (zeroed or stale) and never read. A NaN in
//! a valid data lane is a genuine sample, distinct from NULL, until
//! [`to_f64_samples`] — the tier's single NULL↔NaN conversion point.
//!
//! VG calls go through [`VgRegistry::invoke_batch_columnar`]: models with
//! an `invoke_batch_f64` lane fill a `Vec<f64>` directly (no per-world
//! boxing at all); models without one fall back to boxed scalars, which
//! counts as a column fallback.

use std::borrow::Cow;
use std::collections::HashMap;

use prophet_data::Value;
use prophet_vg::{BatchSamples, SeedManager, VgCallF64, VgRegistry};

use crate::ast::{BinOp, Expr, SelectInto};
use crate::column::{
    add_f64, add_i64, cmp_bool, cmp_f64, div_f64, div_i64, mask_to_nan, mul_f64, mul_i64, neg_f64,
    neg_i64, not_bool, rem_f64, rem_i64, sub_f64, sub_i64, truth_f64, truth_i64, widen_bool,
    widen_i64, NullMask,
};
use crate::error::{SqlError, SqlResult};
use crate::executor::scalar_builtin;
use crate::vector::{apply_binop, column_to_f64};

/// One block-length column in the typed tier.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Float lanes + null mask.
    F64 {
        /// Data lanes (meaningless where masked).
        data: Vec<f64>,
        /// Validity mask.
        nulls: NullMask,
    },
    /// Integer lanes + null mask.
    I64 {
        /// Data lanes (zero where masked).
        data: Vec<i64>,
        /// Validity mask.
        nulls: NullMask,
    },
    /// Boolean lanes + null mask.
    Bool {
        /// Data lanes (false where masked).
        data: Vec<bool>,
        /// Validity mask.
        nulls: NullMask,
    },
    /// Every lane is SQL NULL (untyped; `CASE` with no ELSE, literal NULL).
    Null(usize),
    /// Mixed or string data: the boxed fallback representation.
    Boxed(Vec<Value>),
}

impl Column {
    /// Number of lanes.
    pub fn len(&self) -> usize {
        match self {
            Column::F64 { data, .. } => data.len(),
            Column::I64 { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
            Column::Null(len) => *len,
            Column::Boxed(values) => values.len(),
        }
    }

    /// True when the column has zero lanes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct lane `i` as a boxed value (NULL from the mask).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::F64 { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            Column::I64 { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            Column::Bool { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            Column::Null(_) => Value::Null,
            Column::Boxed(values) => values[i].clone(),
        }
    }

    /// Reconstruct the whole column as boxed values.
    pub fn to_values(&self) -> Vec<Value> {
        match self {
            Column::Boxed(values) => values.clone(),
            _ => (0..self.len()).map(|i| self.value_at(i)).collect(),
        }
    }

    /// Sniff a boxed column back into the tightest typed representation:
    /// uniformly `Int`-or-NULL lanes become [`Column::I64`], and so on;
    /// anything mixed or stringly stays boxed.
    pub fn from_values(values: Vec<Value>) -> Column {
        let (mut ints, mut floats, mut bools, mut all_null) = (true, true, true, true);
        for v in &values {
            match v {
                Value::Null => {}
                Value::Int(_) => (floats, bools, all_null) = (false, false, false),
                Value::Float(_) => (ints, bools, all_null) = (false, false, false),
                Value::Bool(_) => (ints, floats, all_null) = (false, false, false),
                _ => (ints, floats, bools, all_null) = (false, false, false, false),
            }
        }
        if all_null {
            return Column::Null(values.len());
        }
        let mut nulls = NullMask::none(values.len());
        if ints {
            let mut data = vec![0i64; values.len()];
            for (i, v) in values.iter().enumerate() {
                match v {
                    Value::Int(x) => data[i] = *x,
                    _ => nulls.set_null(i),
                }
            }
            Column::I64 { data, nulls }
        } else if floats {
            let mut data = vec![0.0f64; values.len()];
            for (i, v) in values.iter().enumerate() {
                match v {
                    Value::Float(x) => data[i] = *x,
                    _ => nulls.set_null(i),
                }
            }
            Column::F64 { data, nulls }
        } else if bools {
            let mut data = vec![false; values.len()];
            for (i, v) in values.iter().enumerate() {
                match v {
                    Value::Bool(x) => data[i] = *x,
                    _ => nulls.set_null(i),
                }
            }
            Column::Bool { data, nulls }
        } else {
            Column::Boxed(values)
        }
    }

    /// Select lanes `idx` into a new column (`out[k] = self[idx[k]]`).
    fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::F64 { data, nulls } => Column::F64 {
                data: idx.iter().map(|&i| data[i]).collect(),
                nulls: nulls.gather(idx),
            },
            Column::I64 { data, nulls } => Column::I64 {
                data: idx.iter().map(|&i| data[i]).collect(),
                nulls: nulls.gather(idx),
            },
            Column::Bool { data, nulls } => Column::Bool {
                data: idx.iter().map(|&i| data[i]).collect(),
                nulls: nulls.gather(idx),
            },
            Column::Null(_) => Column::Null(idx.len()),
            Column::Boxed(values) => {
                Column::Boxed(idx.iter().map(|&i| values[i].clone()).collect())
            }
        }
    }

    /// The single value every lane holds, if the column is constant over
    /// the block (floats compared by bit pattern, so a constant NaN still
    /// counts). VG argument columns are usually constant — one parameter
    /// valuation per block — letting the call site share one parameter
    /// row instead of materializing a row per world.
    fn const_value(&self) -> Option<Value> {
        if self.is_empty() {
            return None;
        }
        match self {
            Column::F64 { data, nulls } => {
                let first = data[0].to_bits();
                (!nulls.any() && data.iter().all(|x| x.to_bits() == first))
                    .then(|| Value::Float(data[0]))
            }
            Column::I64 { data, nulls } => {
                (!nulls.any() && data.iter().all(|&x| x == data[0])).then(|| Value::Int(data[0]))
            }
            Column::Bool { data, nulls } => {
                (!nulls.any() && data.iter().all(|&x| x == data[0])).then(|| Value::Bool(data[0]))
            }
            Column::Null(_) => Some(Value::Null),
            Column::Boxed(values) => {
                let bit_eq = |a: &Value, b: &Value| match (a, b) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    _ => a == b,
                };
                values
                    .iter()
                    .all(|v| bit_eq(v, &values[0]))
                    .then(|| values[0].clone())
            }
        }
    }
}

/// Kernel-vs-fallback accounting for one columnar walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Expression nodes computed by a typed kernel.
    pub kernels: u64,
    /// Expression nodes routed through per-value (boxed) evaluation.
    pub fallbacks: u64,
}

/// Evaluate the scenario SELECT for a block of worlds through the typed
/// columnar tier, returning one `(alias, column)` pair per select item in
/// declaration order plus the walk's kernel/fallback accounting.
///
/// The contract is [`crate::vector::evaluate_select_block`]'s, verbatim:
/// `worlds[i]` is the world id of slot `i`, every column has
/// `worlds.len()` lanes, and lane `i` is bit-identical to a scalar walk of
/// world `worlds[i]` under per-call substream derivation.
pub fn evaluate_select_columns(
    select: &SelectInto,
    registry: &VgRegistry,
    params: &HashMap<String, Value>,
    seeds: SeedManager,
    worlds: &[u64],
) -> SqlResult<(Vec<(String, Column)>, ColumnarStats)> {
    let mut ctx = ColumnContext {
        registry,
        params,
        seeds,
        worlds,
        counters: vec![0; worlds.len()],
        aliases: HashMap::new(),
        stats: ColumnarStats::default(),
    };
    let everything: Vec<usize> = (0..worlds.len()).collect();
    let mut out = Vec::with_capacity(select.items.len());
    for item in &select.items {
        let column = eval_col(&item.expr, &mut ctx, &everything)?;
        ctx.aliases.insert(item.alias.clone(), column.clone());
        out.push((item.alias.clone(), column));
    }
    Ok((out, ctx.stats))
}

/// Convert one typed column to the `f64` sample representation of the
/// estimation layers (fingerprint probes, Monte Carlo sample sets).
///
/// **This is the typed tier's single NULL↔NaN conversion point.** Inside
/// the tier, SQL NULL lives exclusively in the null mask: a NaN in the
/// data lanes of a *valid* slot is a genuine VG-produced sample and must
/// not be conflated with NULL — the two behave differently under
/// comparisons (`NULL = NULL` is NULL, `NaN = NaN` is false) and under
/// `CASE` masking. Only here, where the sample encoding represents both
/// as NaN (matching [`crate::vector::column_to_f64`] on the boxed tiers),
/// do they collapse.
pub fn to_f64_samples(column: &Column) -> SqlResult<Vec<f64>> {
    match column {
        Column::F64 { data, nulls } => {
            let mut out = data.clone();
            mask_to_nan(&mut out, nulls);
            Ok(out)
        }
        Column::I64 { data, nulls } => {
            let mut out = widen_i64(data);
            mask_to_nan(&mut out, nulls);
            Ok(out)
        }
        Column::Bool { data, nulls } => {
            let mut out = widen_bool(data);
            mask_to_nan(&mut out, nulls);
            Ok(out)
        }
        Column::Null(len) => Ok(vec![f64::NAN; *len]),
        Column::Boxed(values) => column_to_f64(values),
    }
}

/// Evaluation state for one columnar walk (the typed mirror of the boxed
/// tier's context: same per-slot counters, same alias scoping).
struct ColumnContext<'a> {
    registry: &'a VgRegistry,
    params: &'a HashMap<String, Value>,
    seeds: SeedManager,
    worlds: &'a [u64],
    counters: Vec<u64>,
    aliases: HashMap<String, Column>,
    stats: ColumnarStats,
}

/// Broadcast one scalar to a block-length column.
fn broadcast(v: &Value, len: usize) -> Column {
    match v {
        Value::Null => Column::Null(len),
        Value::Int(x) => Column::I64 {
            data: vec![*x; len],
            nulls: NullMask::none(len),
        },
        Value::Float(x) => Column::F64 {
            data: vec![*x; len],
            nulls: NullMask::none(len),
        },
        Value::Bool(x) => Column::Bool {
            data: vec![*x; len],
            nulls: NullMask::none(len),
        },
        other => Column::Boxed(vec![other.clone(); len]),
    }
}

/// Evaluate `expr` for the world slots in `sel`, returning a column with
/// one lane per selected slot (`lane k` belongs to slot `sel[k]`).
fn eval_col(expr: &Expr, ctx: &mut ColumnContext<'_>, sel: &[usize]) -> SqlResult<Column> {
    match expr {
        Expr::Literal(v) => Ok(broadcast(v, sel.len())),
        Expr::Param(name) => {
            let v = ctx
                .params
                .get(name)
                .ok_or_else(|| SqlError::Eval(format!("unbound parameter @{name}")))?;
            Ok(broadcast(v, sel.len()))
        }
        Expr::Column(name) => {
            let column = ctx
                .aliases
                .get(name)
                .ok_or_else(|| SqlError::Eval(format!("unknown column or alias `{name}`")))?;
            Ok(column.gather(sel))
        }
        Expr::Neg(e) => {
            let c = eval_col(e, ctx, sel)?;
            neg_col(c, ctx)
        }
        Expr::Not(e) => {
            let c = eval_col(e, ctx, sel)?;
            not_col(c, ctx)
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => eval_logical_col(*op, lhs, rhs, ctx, sel),
            _ => {
                let l = eval_col(lhs, ctx, sel)?;
                let r = eval_col(rhs, ctx, sel)?;
                apply_binop_col(*op, &l, &r, ctx)
            }
        },
        Expr::Case { whens, otherwise } => eval_case_col(whens, otherwise.as_deref(), ctx, sel),
        Expr::Call { name, args } => {
            let mut arg_columns = Vec::with_capacity(args.len());
            for a in args {
                arg_columns.push(eval_col(a, ctx, sel)?);
            }
            call_function_col(name, &arg_columns, ctx, sel)
        }
    }
}

/// Per-value evaluation of one unary node, re-sniffed to a typed column.
fn fallback_unary(
    c: &Column,
    ctx: &mut ColumnContext<'_>,
    f: impl Fn(&Value) -> SqlResult<Value>,
) -> SqlResult<Column> {
    ctx.stats.fallbacks += 1;
    let values: SqlResult<Vec<Value>> = c.to_values().iter().map(f).collect();
    Ok(Column::from_values(values?))
}

fn neg_col(c: Column, ctx: &mut ColumnContext<'_>) -> SqlResult<Column> {
    match c {
        Column::F64 { data, nulls } => {
            ctx.stats.kernels += 1;
            Ok(Column::F64 {
                data: neg_f64(&data),
                nulls,
            })
        }
        Column::I64 { data, nulls } => {
            ctx.stats.kernels += 1;
            Ok(Column::I64 {
                data: neg_i64(&data, &nulls),
                nulls,
            })
        }
        Column::Null(len) => {
            ctx.stats.kernels += 1;
            Ok(Column::Null(len))
        }
        other => fallback_unary(&other, ctx, |v| v.neg().map_err(SqlError::from)),
    }
}

fn not_col(c: Column, ctx: &mut ColumnContext<'_>) -> SqlResult<Column> {
    match c {
        Column::F64 { data, nulls } => {
            ctx.stats.kernels += 1;
            Ok(Column::Bool {
                data: not_bool(&truth_f64(&data)),
                nulls,
            })
        }
        Column::I64 { data, nulls } => {
            ctx.stats.kernels += 1;
            Ok(Column::Bool {
                data: not_bool(&truth_i64(&data)),
                nulls,
            })
        }
        Column::Bool { data, nulls } => {
            ctx.stats.kernels += 1;
            Ok(Column::Bool {
                data: not_bool(&data),
                nulls,
            })
        }
        Column::Null(len) => {
            ctx.stats.kernels += 1;
            Ok(Column::Null(len))
        }
        other => fallback_unary(&other, ctx, |v| {
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.as_bool().map_err(SqlError::from)?))
            }
        }),
    }
}

/// Float lanes of a numeric column, widening integers through `as f64`
/// exactly as the scalar tier's promotion does. `None` for anything
/// non-numeric (booleans, NULL wildcard, boxed).
fn as_f64_lanes(col: &Column) -> Option<(Cow<'_, [f64]>, &NullMask)> {
    match col {
        Column::F64 { data, nulls } => Some((Cow::Borrowed(data), nulls)),
        Column::I64 { data, nulls } => Some((Cow::Owned(widen_i64(data)), nulls)),
        _ => None,
    }
}

/// Per-value evaluation of one binary node, re-sniffed to a typed column.
fn fallback_binop(
    op: BinOp,
    l: &Column,
    r: &Column,
    ctx: &mut ColumnContext<'_>,
) -> SqlResult<Column> {
    ctx.stats.fallbacks += 1;
    let values: SqlResult<Vec<Value>> = (0..l.len())
        .map(|i| apply_binop(op, &l.value_at(i), &r.value_at(i)))
        .collect();
    Ok(Column::from_values(values?))
}

fn apply_binop_col(
    op: BinOp,
    l: &Column,
    r: &Column,
    ctx: &mut ColumnContext<'_>,
) -> SqlResult<Column> {
    // A NULL operand absorbs before any type checking (`Value` semantics):
    // the node is all-NULL for arithmetic and division, and NULL-propagating
    // for comparisons — in every case, all-NULL output.
    if let (Column::Null(n), _) | (_, Column::Null(n)) = (l, r) {
        ctx.stats.kernels += 1;
        return Ok(Column::Null(*n));
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            if let (Column::I64 { data: a, nulls: na }, Column::I64 { data: b, nulls: nb }) = (l, r)
            {
                let nulls = na.union(nb);
                let kernel = match op {
                    BinOp::Add => add_i64,
                    BinOp::Sub => sub_i64,
                    _ => mul_i64,
                };
                return match kernel(a, b, &nulls) {
                    Some(data) => {
                        ctx.stats.kernels += 1;
                        Ok(Column::I64 { data, nulls })
                    }
                    // Overflow on a valid lane: the scalar tier promotes
                    // exactly that lane to float, so the node's column is
                    // mixed — re-run per value.
                    None => fallback_binop(op, l, r, ctx),
                };
            }
            match (as_f64_lanes(l), as_f64_lanes(r)) {
                (Some((a, na)), Some((b, nb))) => {
                    ctx.stats.kernels += 1;
                    let kernel = match op {
                        BinOp::Add => add_f64,
                        BinOp::Sub => sub_f64,
                        _ => mul_f64,
                    };
                    Ok(Column::F64 {
                        data: kernel(&a, &b),
                        nulls: na.union(nb),
                    })
                }
                _ => fallback_binop(op, l, r, ctx),
            }
        }
        BinOp::Div | BinOp::Rem => {
            if let (Column::I64 { data: a, nulls: na }, Column::I64 { data: b, nulls: nb }) = (l, r)
            {
                ctx.stats.kernels += 1;
                let mut nulls = na.union(nb);
                let data = match op {
                    BinOp::Div => div_i64(a, b, &mut nulls),
                    _ => rem_i64(a, b, &mut nulls),
                };
                return Ok(Column::I64 { data, nulls });
            }
            match (as_f64_lanes(l), as_f64_lanes(r)) {
                (Some((a, na)), Some((b, nb))) => {
                    ctx.stats.kernels += 1;
                    let mut nulls = na.union(nb);
                    let data = match op {
                        BinOp::Div => div_f64(&a, &b, &mut nulls),
                        _ => rem_f64(&a, &b, &mut nulls),
                    };
                    Ok(Column::F64 { data, nulls })
                }
                // Booleans coerce through `as_f64` in division but error in
                // the other arithmetic ops; the per-value path reproduces
                // both, so anything non-numeric falls back.
                _ => fallback_binop(op, l, r, ctx),
            }
        }
        BinOp::Cmp(c) => {
            if let (Column::Bool { data: a, nulls: na }, Column::Bool { data: b, nulls: nb }) =
                (l, r)
            {
                ctx.stats.kernels += 1;
                return Ok(Column::Bool {
                    data: cmp_bool(c, a, b),
                    nulls: na.union(nb),
                });
            }
            match (as_f64_lanes(l), as_f64_lanes(r)) {
                (Some((a, na)), Some((b, nb))) => {
                    ctx.stats.kernels += 1;
                    Ok(Column::Bool {
                        data: cmp_f64(c, &a, &b),
                        nulls: na.union(nb),
                    })
                }
                _ => fallback_binop(op, l, r, ctx),
            }
        }
        BinOp::And | BinOp::Or => unreachable!("logical operators use the three-valued path"),
    }
}

/// SQL truth value per lane: `None` is NULL (mask state), `Some(b)` the
/// scalar tier's boolean coercion. Errors on strings exactly where
/// `Value::as_bool` would.
fn truth_lanes(col: &Column) -> SqlResult<Vec<Option<bool>>> {
    Ok(match col {
        Column::F64 { data, nulls } => truth_f64(data)
            .into_iter()
            .enumerate()
            .map(|(i, b)| (!nulls.is_null(i)).then_some(b))
            .collect(),
        Column::I64 { data, nulls } => truth_i64(data)
            .into_iter()
            .enumerate()
            .map(|(i, b)| (!nulls.is_null(i)).then_some(b))
            .collect(),
        Column::Bool { data, nulls } => data
            .iter()
            .enumerate()
            .map(|(i, &b)| (!nulls.is_null(i)).then_some(b))
            .collect(),
        Column::Null(len) => vec![None; *len],
        Column::Boxed(values) => values
            .iter()
            .map(|v| {
                if v.is_null() {
                    Ok(None)
                } else {
                    v.as_bool().map(Some).map_err(SqlError::from)
                }
            })
            .collect::<SqlResult<_>>()?,
    })
}

/// Three-valued `AND`/`OR` with the boxed tier's exact short-circuit
/// discipline: the right-hand side is evaluated only for the slots the
/// scalar tier would not have short-circuited, preserving per-slot VG
/// call counters.
fn eval_logical_col(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    ctx: &mut ColumnContext<'_>,
    sel: &[usize],
) -> SqlResult<Column> {
    let lcol = eval_col(lhs, ctx, sel)?;
    let mut boxed = matches!(lcol, Column::Boxed(_));
    let ltruth = truth_lanes(&lcol)?;
    // The truth value an operand short-circuits to, if it does.
    let shorted = |t: Option<bool>| -> Option<bool> {
        match (op, t) {
            (BinOp::And, Some(false)) => Some(false),
            (BinOp::Or, Some(true)) => Some(true),
            _ => None,
        }
    };
    // Outer None = unresolved (needs rhs); Some(None) = NULL result.
    let mut out: Vec<Option<Option<bool>>> = vec![None; sel.len()];
    let mut rhs_pos: Vec<usize> = Vec::new();
    for (pos, &t) in ltruth.iter().enumerate() {
        match shorted(t) {
            Some(b) => out[pos] = Some(Some(b)),
            None => rhs_pos.push(pos),
        }
    }
    if !rhs_pos.is_empty() {
        let rhs_sel: Vec<usize> = rhs_pos.iter().map(|&pos| sel[pos]).collect();
        let rcol = eval_col(rhs, ctx, &rhs_sel)?;
        boxed |= matches!(rcol, Column::Boxed(_));
        let rtruth = truth_lanes(&rcol)?;
        for (k, &pos) in rhs_pos.iter().enumerate() {
            let (lt, rt) = (ltruth[pos], rtruth[k]);
            out[pos] = Some(match shorted(rt) {
                Some(b) => Some(b),
                None if lt.is_none() || rt.is_none() => None,
                // Neither operand short-circuited nor is NULL: AND is
                // true, OR is false.
                None => Some(matches!(op, BinOp::And)),
            });
        }
    }
    if boxed {
        ctx.stats.fallbacks += 1;
    } else {
        ctx.stats.kernels += 1;
    }
    let mut data = vec![false; sel.len()];
    let mut nulls = NullMask::none(sel.len());
    for (i, v) in out.iter().enumerate() {
        match v.expect("every slot resolved by short-circuit or rhs") {
            Some(b) => data[i] = b,
            None => nulls.set_null(i),
        }
    }
    Ok(Column::Bool { data, nulls })
}

/// `CASE` with the boxed tier's active/matched/remaining selection
/// discipline; arm results are evaluated only for the slots their
/// condition matched and scatter-merged into the output column.
fn eval_case_col(
    whens: &[(Expr, Expr)],
    otherwise: Option<&Expr>,
    ctx: &mut ColumnContext<'_>,
    sel: &[usize],
) -> SqlResult<Column> {
    // (positions into `sel`, lanes for those positions) per resolved arm.
    let mut pieces: Vec<(Vec<usize>, Column)> = Vec::new();
    let mut active: Vec<usize> = (0..sel.len()).collect();
    let mut boxed_condition = false;
    for (cond, result) in whens {
        if active.is_empty() {
            break;
        }
        let cond_sel: Vec<usize> = active.iter().map(|&pos| sel[pos]).collect();
        let cc = eval_col(cond, ctx, &cond_sel)?;
        boxed_condition |= matches!(cc, Column::Boxed(_));
        let ct = truth_lanes(&cc)?;
        let mut matched: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = Vec::new();
        for (k, &pos) in active.iter().enumerate() {
            // SQL: a NULL condition is not satisfied.
            if ct[k] == Some(true) {
                matched.push(pos);
            } else {
                remaining.push(pos);
            }
        }
        if !matched.is_empty() {
            let result_sel: Vec<usize> = matched.iter().map(|&pos| sel[pos]).collect();
            let rc = eval_col(result, ctx, &result_sel)?;
            pieces.push((matched, rc));
        }
        active = remaining;
    }
    if !active.is_empty() {
        match otherwise {
            Some(e) => {
                let else_sel: Vec<usize> = active.iter().map(|&pos| sel[pos]).collect();
                let ec = eval_col(e, ctx, &else_sel)?;
                pieces.push((active, ec));
            }
            None => {
                let len = active.len();
                pieces.push((active, Column::Null(len)));
            }
        }
    }
    merge_pieces(pieces, sel.len(), boxed_condition, ctx)
}

/// Scatter-merge per-arm result pieces into one block-length column. When
/// every piece shares one typed kind (the NULL wildcard unifies with any),
/// the merge stays typed; a kind clash means the scalar tier would have
/// produced a mixed column, so the merge drops to boxed values.
fn merge_pieces(
    pieces: Vec<(Vec<usize>, Column)>,
    len: usize,
    boxed_condition: bool,
    ctx: &mut ColumnContext<'_>,
) -> SqlResult<Column> {
    #[derive(PartialEq, Clone, Copy)]
    enum Kind {
        F,
        I,
        B,
    }
    let mut kind: Option<Kind> = None;
    let mut unified = !boxed_condition;
    for (_, piece) in &pieces {
        let k = match piece {
            Column::F64 { .. } => Some(Kind::F),
            Column::I64 { .. } => Some(Kind::I),
            Column::Bool { .. } => Some(Kind::B),
            Column::Null(_) => None,
            Column::Boxed(_) => {
                unified = false;
                None
            }
        };
        match (kind, k) {
            (None, k) => kind = k,
            (Some(a), Some(b)) if a != b => unified = false,
            _ => {}
        }
    }
    if !unified {
        ctx.stats.fallbacks += 1;
        let mut out: Vec<Value> = vec![Value::Null; len];
        for (positions, piece) in &pieces {
            for (k, &pos) in positions.iter().enumerate() {
                out[pos] = piece.value_at(k);
            }
        }
        return Ok(Column::from_values(out));
    }
    ctx.stats.kernels += 1;
    let mut nulls = NullMask::none(len);
    let scatter_nulls = |nulls: &mut NullMask, positions: &[usize], piece: &NullMask| {
        for (k, &pos) in positions.iter().enumerate() {
            if piece.is_null(k) {
                nulls.set_null(pos);
            }
        }
    };
    match kind {
        None => Ok(Column::Null(len)),
        Some(Kind::F) => {
            let mut data = vec![0.0f64; len];
            for (positions, piece) in &pieces {
                match piece {
                    Column::F64 { data: d, nulls: n } => {
                        for (k, &pos) in positions.iter().enumerate() {
                            data[pos] = d[k];
                        }
                        scatter_nulls(&mut nulls, positions, n);
                    }
                    _ => {
                        for &pos in positions {
                            nulls.set_null(pos);
                        }
                    }
                }
            }
            Ok(Column::F64 { data, nulls })
        }
        Some(Kind::I) => {
            let mut data = vec![0i64; len];
            for (positions, piece) in &pieces {
                match piece {
                    Column::I64 { data: d, nulls: n } => {
                        for (k, &pos) in positions.iter().enumerate() {
                            data[pos] = d[k];
                        }
                        scatter_nulls(&mut nulls, positions, n);
                    }
                    _ => {
                        for &pos in positions {
                            nulls.set_null(pos);
                        }
                    }
                }
            }
            Ok(Column::I64 { data, nulls })
        }
        Some(Kind::B) => {
            let mut data = vec![false; len];
            for (positions, piece) in &pieces {
                match piece {
                    Column::Bool { data: d, nulls: n } => {
                        for (k, &pos) in positions.iter().enumerate() {
                            data[pos] = d[k];
                        }
                        scatter_nulls(&mut nulls, positions, n);
                    }
                    _ => {
                        for &pos in positions {
                            nulls.set_null(pos);
                        }
                    }
                }
            }
            Ok(Column::Bool { data, nulls })
        }
    }
}

/// Dispatch one call site for a block: VG catalog first (catalog wins over
/// builtins, as in both other tiers), then scalar builtins per world.
fn call_function_col(
    name: &str,
    args: &[Column],
    ctx: &mut ColumnContext<'_>,
    sel: &[usize],
) -> SqlResult<Column> {
    if ctx.registry.get(name).is_err() {
        // Scalar builtin, world by world (boxed by nature).
        ctx.stats.fallbacks += 1;
        let values: SqlResult<Vec<Value>> = (0..sel.len())
            .map(|k| {
                let row: Vec<Value> = args.iter().map(|c| c.value_at(k)).collect();
                scalar_builtin(name, &row)
            })
            .collect();
        return Ok(Column::from_values(values?));
    }

    // One derived substream per selected world; the per-slot counter bumps
    // only for worlds reaching this call site (scalar tier's discipline).
    let mut rngs = Vec::with_capacity(sel.len());
    for &slot in sel {
        let counter = ctx.counters[slot];
        ctx.counters[slot] += 1;
        rngs.push(ctx.seeds.rng_for(ctx.worlds[slot], name, counter));
    }
    // Argument columns are usually constant over the block (one parameter
    // valuation per point): share a single parameter row instead of
    // materializing one per world.
    let const_row: Option<Vec<Value>> = args.iter().map(|c| c.const_value()).collect();
    let rows: Vec<Vec<Value>> = if const_row.is_some() {
        Vec::new()
    } else {
        (0..sel.len())
            .map(|k| args.iter().map(|c| c.value_at(k)).collect())
            .collect()
    };
    let mut calls: Vec<VgCallF64<'_>> = match &const_row {
        Some(row) => rngs
            .iter_mut()
            .map(|rng| VgCallF64 { params: row, rng })
            .collect(),
        None => rows
            .iter()
            .zip(rngs.iter_mut())
            .map(|(params, rng)| VgCallF64 { params, rng })
            .collect(),
    };
    match ctx.registry.invoke_batch_columnar(name, &mut calls)? {
        BatchSamples::F64(data) => {
            ctx.stats.kernels += 1;
            Ok(Column::F64 {
                nulls: NullMask::none(data.len()),
                data,
            })
        }
        BatchSamples::Values(values) => {
            ctx.stats.fallbacks += 1;
            Ok(Column::from_values(values))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use crate::test_vg::test_registry as registry;
    use crate::vector::evaluate_select_block;

    /// Columnar outputs must equal the boxed block tier value for value
    /// (the boxed tier is already proven bit-identical to the scalar
    /// walker, so transitivity gives the scalar contract; the engine-level
    /// differential suite re-proves it directly).
    fn assert_columns_match_boxed(
        src: &str,
        params: &[(&str, Value)],
        worlds: &[u64],
    ) -> ColumnarStats {
        let script = parse_script(src).unwrap();
        let registry = registry();
        let params: HashMap<String, Value> = params
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect();
        let seeds = SeedManager::new(11);
        let (cols, stats) =
            evaluate_select_columns(&script.select, &registry, &params, seeds, worlds).unwrap();
        let boxed =
            evaluate_select_block(&script.select, &registry, &params, seeds, worlds).unwrap();
        assert_eq!(cols.len(), boxed.len());
        for ((alias, column), (balias, bvalues)) in cols.iter().zip(&boxed) {
            assert_eq!(alias, balias);
            assert_eq!(
                &column.to_values(),
                bvalues,
                "column `{alias}` diverged from the boxed tier"
            );
        }
        stats
    }

    #[test]
    fn typed_path_covers_numeric_scenarios_without_fallbacks() {
        let stats = assert_columns_match_boxed(
            "DECLARE PARAMETER @base AS SET (100);\n\
             SELECT Jitter(@base) AS demand,\n\
                    Jitter(@base + 10) AS capacity,\n\
                    CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload\n\
             INTO results;",
            &[("base", Value::Int(100))],
            &[0, 1, 5, 9, 1_000_003],
        );
        assert!(stats.kernels > 0);
        assert_eq!(
            stats.fallbacks, 0,
            "an all-numeric scenario must never unbox"
        );
    }

    #[test]
    fn conditional_vg_calls_keep_per_world_counters_aligned() {
        assert_columns_match_boxed(
            "SELECT Jitter(0) AS first,\n\
             CASE WHEN first < 0.5 THEN Jitter(100) ELSE -1 END AS maybe,\n\
             Jitter(200) AS last\n\
             INTO r;",
            &[],
            &(0..32u64).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn short_circuit_rhs_only_runs_for_unresolved_worlds() {
        assert_columns_match_boxed(
            "SELECT Jitter(0) AS first,\n\
             CASE WHEN first < 0.5 AND Jitter(0) < 0.5 THEN 1 ELSE 0 END AS both,\n\
             CASE WHEN first < 0.5 OR Jitter(0) < 0.5 THEN 1 ELSE 0 END AS either,\n\
             Jitter(9) AS last\n\
             INTO r;",
            &[],
            &(0..48u64).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn three_valued_logic_nulls_and_builtins_match() {
        let stats = assert_columns_match_boxed(
            "DECLARE PARAMETER @x AS SET (0);\n\
             SELECT NULL AND Jitter(0) > 0 AS null_and,\n\
                    NULL OR Jitter(1) > 0 AS null_or,\n\
                    COALESCE(NULL, @x) AS co,\n\
                    GREATEST(SQRT(ABS(@x - 4)), 1) AS g,\n\
                    1 / 0 AS div0,\n\
                    CASE WHEN 1/0 > 1 THEN 1 ELSE 0 END AS guarded,\n\
                    -Jitter(2) AS n,\n\
                    NOT (Jitter(3) > 0.5) AS inv,\n\
                    Jitter(4) % 0.25 AS wrapped\n\
             INTO r;",
            &[("x", Value::Int(7))],
            &(0..24u64).collect::<Vec<_>>(),
        );
        assert!(stats.fallbacks > 0, "builtins route through the fallback");
    }

    #[test]
    fn mixed_case_arms_fall_back_to_boxed_merge() {
        let stats = assert_columns_match_boxed(
            "SELECT Jitter(0) AS u,\n\
             CASE WHEN u < 0.5 THEN 1 ELSE 2.5 END AS mixed\n\
             INTO r;",
            &[],
            &(0..16u64).collect::<Vec<_>>(),
        );
        assert!(
            stats.fallbacks > 0,
            "an Int/Float arm mix cannot stay typed"
        );
    }

    #[test]
    fn integer_overflow_falls_back_to_lane_promotion() {
        let big = i64::MAX;
        let stats = assert_columns_match_boxed(
            &format!("SELECT {big} + 1 AS bumped, {big} * 2 AS dbl INTO r;"),
            &[],
            &[0, 1, 2],
        );
        assert!(stats.fallbacks >= 2);
    }

    #[test]
    fn errors_match_the_boxed_tier() {
        let registry = registry();
        let seeds = SeedManager::new(0);
        let run = |src: &str| {
            let script = parse_script(src).unwrap();
            evaluate_select_columns(&script.select, &registry, &HashMap::new(), seeds, &[0, 1])
                .unwrap_err()
                .to_string()
        };
        assert!(
            run("DECLARE PARAMETER @missing AS SET (0);\nSELECT @missing AS v INTO r;")
                .contains("unbound parameter @missing")
        );
        assert!(run("SELECT nope + 1 AS v INTO r;").contains("unknown column or alias `nope`"));
        assert!(run("SELECT NoSuchFn(1) AS v INTO r;").contains("function `NoSuchFn`"));
        assert!(run("SELECT TwoRows() AS v INTO r;").contains("exactly one cell"));
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let script = parse_script("SELECT Jitter(0) AS v INTO r;").unwrap();
        let registry = registry();
        let (out, _) = evaluate_select_columns(
            &script.select,
            &registry,
            &HashMap::new(),
            SeedManager::new(0),
            &[],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].1.is_empty());
        assert_eq!(registry.stats("Jitter").unwrap().invocations, 0);
    }

    #[test]
    fn sniffing_round_trips_every_uniform_kind() {
        let cases: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Null, Value::Int(-3)],
            vec![Value::Float(0.5), Value::Float(f64::NAN)],
            vec![Value::Bool(true), Value::Null],
            vec![Value::Null, Value::Null],
            vec![Value::Int(1), Value::Float(2.0)],
            vec![Value::Str("x".into()), Value::Int(1)],
        ];
        for values in cases {
            let col = Column::from_values(values.clone());
            assert_eq!(col.len(), values.len());
            // NaN lanes break Vec<Value> equality; compare per lane.
            for (i, v) in values.iter().enumerate() {
                match (&col.value_at(i), v) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits())
                    }
                    (got, want) => assert_eq!(got, want),
                }
            }
        }
        assert!(matches!(
            Column::from_values(vec![Value::Int(1), Value::Null]),
            Column::I64 { .. }
        ));
        assert!(matches!(
            Column::from_values(vec![Value::Int(1), Value::Float(1.0)]),
            Column::Boxed(_)
        ));
        assert!(matches!(
            Column::from_values(vec![Value::Null]),
            Column::Null(1)
        ));
    }

    #[test]
    fn to_f64_samples_matches_column_to_f64() {
        let values = vec![
            Value::Int(2),
            Value::Null,
            Value::Float(0.5),
            Value::Float(f64::NAN),
            Value::Bool(true),
        ];
        // Boxed reference conversion...
        let want: Vec<u64> = column_to_f64(&values)
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        // ...must agree with the typed-boundary conversion for every
        // representation the sniffer can pick.
        for col in [
            Column::Boxed(values.clone()),
            Column::from_values(vec![Value::Int(2), Value::Null]),
            Column::from_values(vec![Value::Float(0.5), Value::Float(f64::NAN), Value::Null]),
            Column::from_values(vec![Value::Bool(true), Value::Null, Value::Bool(false)]),
        ] {
            let got: Vec<u64> = to_f64_samples(&col)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let reference: Vec<u64> = column_to_f64(&col.to_values())
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(got, reference);
        }
        assert_eq!(
            to_f64_samples(&Column::Boxed(values)).unwrap().len(),
            want.len()
        );
        assert!(to_f64_samples(&Column::Boxed(vec![Value::Str("x".into())])).is_err());
    }

    #[test]
    fn const_detection_sees_uniform_columns_only() {
        let c = broadcast(&Value::Int(7), 4);
        assert_eq!(c.const_value(), Some(Value::Int(7)));
        let mixed = Column::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(mixed.const_value(), None);
        let nan = broadcast(&Value::Float(f64::NAN), 3);
        assert!(matches!(nan.const_value(), Some(Value::Float(x)) if x.is_nan()));
        assert_eq!(Column::Null(2).const_value(), Some(Value::Null));
        assert_eq!(Column::Null(0).const_value(), None);
    }
}
