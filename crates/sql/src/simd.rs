//! Explicit `std::simd` kernels for the dense f64 arithmetic loops.
//!
//! Compiled only with `--features simd` on a nightly toolchain (the crate
//! root enables `portable_simd` under that feature); the default build
//! relies on auto-vectorization of the scalar loops in [`crate::column`].
//! IEEE-754 `+`/`-`/`*` are exact, so these kernels are bit-identical to
//! the scalar loops they replace — the differential test below and the
//! nightly CI lane hold them to it. This is the only file in the crate
//! allowed to name `std::simd` (the `typed-kernel` lint rule).

use std::simd::f64x8;

const LANES: usize = 8;

fn lanewise(
    a: &[f64],
    b: &[f64],
    vec_op: impl Fn(f64x8, f64x8) -> f64x8,
    tail_op: impl Fn(f64, f64) -> f64,
) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        let v = vec_op(
            f64x8::from_slice(&a[i..i + LANES]),
            f64x8::from_slice(&b[i..i + LANES]),
        );
        out.extend_from_slice(v.as_array());
    }
    for i in chunks * LANES..a.len() {
        out.push(tail_op(a[i], b[i]));
    }
    out
}

/// Lane-wise `a + b` (`std::simd` variant of [`crate::column::add_f64`]).
pub fn add_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    lanewise(a, b, |x, y| x + y, |x, y| x + y)
}

/// Lane-wise `a - b` (`std::simd` variant of [`crate::column::sub_f64`]).
pub fn sub_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    lanewise(a, b, |x, y| x - y, |x, y| x - y)
}

/// Lane-wise `a * b` (`std::simd` variant of [`crate::column::mul_f64`]).
pub fn mul_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    lanewise(a, b, |x, y| x * y, |x, y| x * y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_kernels_match_scalar_loops_bit_for_bit() {
        // Non-multiple-of-lane length exercises the tail loop.
        let a: Vec<f64> = (0..37).map(|i| (i as f64).sin() * 1e3).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64).cos() + 0.5).collect();
        let scalar_add: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let scalar_sub: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        let scalar_mul: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&add_f64(&a, &b)), bits(&scalar_add));
        assert_eq!(bits(&sub_f64(&a, &b)), bits(&scalar_sub));
        assert_eq!(bits(&mul_f64(&a, &b)), bits(&scalar_mul));
    }
}
