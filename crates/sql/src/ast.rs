//! Abstract syntax for Prophet scenario scripts.
//!
//! A [`Script`] is the parsed form of a complete Figure-2 style scenario:
//! parameter declarations, one `SELECT … INTO` scenario query, and the
//! optional online (`GRAPH OVER`) and offline (`OPTIMIZE`) directives.

use std::fmt;

use prophet_data::Value;

/// Binary operators in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// Comparison.
    Cmp(CmpOp),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on an `Ordering`-like sign. `None` (unknown,
    /// from NULL operands) compares false under SQL semantics.
    pub fn test(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        match (self, ord) {
            (_, None) => false,
            (CmpOp::Eq, Some(Equal)) => true,
            (CmpOp::Neq, Some(Less)) | (CmpOp::Neq, Some(Greater)) => true,
            (CmpOp::Lt, Some(Less)) => true,
            (CmpOp::Le, Some(Less)) | (CmpOp::Le, Some(Equal)) => true,
            (CmpOp::Gt, Some(Greater)) => true,
            (CmpOp::Ge, Some(Greater)) | (CmpOp::Ge, Some(Equal)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// `@parameter` reference.
    Param(String),
    /// Bare identifier: a reference to an earlier select-item alias (the
    /// Figure-2 query references `capacity` and `demand` this way).
    Column(String),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `CASE WHEN c THEN v [WHEN …] [ELSE e] END`.
    Case {
        /// `(condition, result)` pairs, tested in order.
        whens: Vec<(Expr, Expr)>,
        /// Fallback (`NULL` if absent, as in SQL).
        otherwise: Option<Box<Expr>>,
    },
    /// Function call: either a scalar builtin (`ABS`, `SQRT`, …) or a
    /// VG table-generating function from the catalog (`DemandModel(…)`).
    Call {
        /// Function name as written.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// All `@parameters` referenced anywhere in the expression.
    pub fn referenced_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn walk_params(&self, out: &mut Vec<String>) {
        match self {
            Expr::Param(p) => out.push(p.clone()),
            Expr::Neg(e) | Expr::Not(e) => e.walk_params(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk_params(out);
                rhs.walk_params(out);
            }
            Expr::Case { whens, otherwise } => {
                for (c, v) in whens {
                    c.walk_params(out);
                    v.walk_params(out);
                }
                if let Some(e) = otherwise {
                    e.walk_params(out);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk_params(out);
                }
            }
            Expr::Literal(_) | Expr::Column(_) => {}
        }
    }

    /// All VG/scalar function calls in the expression (name, argument
    /// expressions), in evaluation order. Used by the fingerprint engine to
    /// find the stochastic sub-models of a scenario.
    pub fn referenced_calls(&self) -> Vec<(&str, &[Expr])> {
        let mut out = Vec::new();
        self.walk_calls(&mut out);
        out
    }

    fn walk_calls<'e>(&'e self, out: &mut Vec<(&'e str, &'e [Expr])>) {
        match self {
            Expr::Call { name, args } => {
                out.push((name.as_str(), args.as_slice()));
                for a in args {
                    a.walk_calls(out);
                }
            }
            Expr::Neg(e) | Expr::Not(e) => e.walk_calls(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk_calls(out);
                rhs.walk_calls(out);
            }
            Expr::Case { whens, otherwise } => {
                for (c, v) in whens {
                    c.walk_calls(out);
                    v.walk_calls(out);
                }
                if let Some(e) = otherwise {
                    e.walk_calls(out);
                }
            }
            Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => {}
        }
    }
}

/// The domain of a declared parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParameterDomain {
    /// `RANGE lo TO hi STEP BY step` — inclusive arithmetic progression.
    Range {
        /// First value.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Positive stride.
        step: i64,
    },
    /// `SET (v1, v2, …)` — explicit values.
    Set(Vec<i64>),
}

impl ParameterDomain {
    /// Materialize the domain as a value list (in declaration order).
    pub fn values(&self) -> Vec<i64> {
        match self {
            ParameterDomain::Range { lo, hi, step } => {
                let mut out = Vec::new();
                let mut v = *lo;
                while v <= *hi {
                    out.push(v);
                    v += step;
                }
                out
            }
            ParameterDomain::Set(vs) => vs.clone(),
        }
    }

    /// Number of values in the domain.
    pub fn cardinality(&self) -> usize {
        match self {
            ParameterDomain::Range { lo, hi, step } => {
                if hi < lo {
                    0
                } else {
                    ((hi - lo) / step + 1) as usize
                }
            }
            ParameterDomain::Set(vs) => vs.len(),
        }
    }

    /// Whether `v` belongs to the domain.
    pub fn contains(&self, v: i64) -> bool {
        match self {
            ParameterDomain::Range { lo, hi, step } => v >= *lo && v <= *hi && (v - lo) % step == 0,
            ParameterDomain::Set(vs) => vs.contains(&v),
        }
    }
}

/// `DECLARE PARAMETER @name AS <domain>;`
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterDecl {
    /// Parameter name (without `@`).
    pub name: String,
    /// Its domain.
    pub domain: ParameterDomain,
}

/// One `expr AS alias` item of the scenario SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The computed expression.
    pub expr: Expr,
    /// Column name in the result relation; later items may reference it.
    pub alias: String,
}

/// `SELECT … INTO target;`
#[derive(Debug, Clone, PartialEq)]
pub struct SelectInto {
    /// Select items, evaluated left to right.
    pub items: Vec<SelectItem>,
    /// Name of the results relation.
    pub target: String,
}

/// Aggregate metrics over the possible-worlds dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggMetric {
    /// `EXPECT col` — Monte Carlo expectation.
    Expect,
    /// `EXPECT_STDDEV col` — Monte Carlo standard deviation.
    ExpectStdDev,
}

impl fmt::Display for AggMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggMetric::Expect => f.write_str("EXPECT"),
            AggMetric::ExpectStdDev => f.write_str("EXPECT_STDDEV"),
        }
    }
}

/// One series of the online graph: `EXPECT overload WITH bold red`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSpec {
    /// Which aggregate to plot.
    pub metric: AggMetric,
    /// Which result column.
    pub column: String,
    /// Style words, passed through to the renderer (`bold`, `red`, `y2`…).
    pub style: Vec<String>,
}

/// `GRAPH OVER @x EXPECT …, …;`
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDirective {
    /// The parameter swept along the X axis.
    pub x_param: String,
    /// The plotted series.
    pub series: Vec<SeriesSpec>,
}

/// Outer aggregate applied across the graph axis in OPTIMIZE constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterAgg {
    /// `MAX(…)` over the swept parameter.
    Max,
    /// `MIN(…)`.
    Min,
    /// `AVG(…)`.
    Avg,
}

/// One constraint: `MAX(EXPECT overload) < 0.01`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Aggregate across the swept axis.
    pub outer: OuterAgg,
    /// Aggregate across worlds.
    pub metric: AggMetric,
    /// Result column the metric applies to.
    pub column: String,
    /// Comparison against the threshold.
    pub op: CmpOp,
    /// Threshold constant.
    pub threshold: f64,
}

/// Objective direction in `FOR MAX @p` / `FOR MIN @p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveDirection {
    /// Prefer larger parameter values.
    Max,
    /// Prefer smaller parameter values.
    Min,
}

/// One lexicographic objective: `MAX @purchase1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Direction.
    pub direction: ObjectiveDirection,
    /// Parameter being optimized.
    pub param: String,
}

/// `OPTIMIZE SELECT … FROM … WHERE … GROUP BY … FOR …`
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeSpec {
    /// Parameters reported in the answer.
    pub select_params: Vec<String>,
    /// Results relation name (must match the SELECT INTO target).
    pub from: String,
    /// Feasibility constraints (conjunctive).
    pub constraints: Vec<Constraint>,
    /// GROUP BY columns (parameter names, `@`-less as in the paper).
    pub group_by: Vec<String>,
    /// Lexicographic objectives, most significant first.
    pub objectives: Vec<Objective>,
}

/// A complete parsed scenario script.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Declared parameters, in order.
    pub params: Vec<ParameterDecl>,
    /// The scenario query.
    pub select: SelectInto,
    /// Online-mode directive, if present.
    pub graph: Option<GraphDirective>,
    /// Offline-mode directive, if present.
    pub optimize: Option<OptimizeSpec>,
}

impl Script {
    /// Look up a parameter declaration by name.
    pub fn param(&self, name: &str) -> Option<&ParameterDecl> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Names of all result columns, in SELECT order.
    pub fn output_columns(&self) -> Vec<&str> {
        self.select.items.iter().map(|i| i.alias.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_truth_table() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Some(Equal)));
        assert!(!CmpOp::Eq.test(Some(Less)));
        assert!(CmpOp::Neq.test(Some(Greater)));
        assert!(!CmpOp::Neq.test(Some(Equal)));
        assert!(CmpOp::Lt.test(Some(Less)));
        assert!(CmpOp::Le.test(Some(Equal)));
        assert!(CmpOp::Gt.test(Some(Greater)));
        assert!(CmpOp::Ge.test(Some(Equal)));
        // NULL comparisons are false for every operator
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert!(!op.test(None));
        }
    }

    #[test]
    fn range_domain_materialization() {
        let d = ParameterDomain::Range {
            lo: 0,
            hi: 12,
            step: 4,
        };
        assert_eq!(d.values(), vec![0, 4, 8, 12]);
        assert_eq!(d.cardinality(), 4);
        assert!(d.contains(8));
        assert!(!d.contains(9));
        assert!(!d.contains(16));
    }

    #[test]
    fn range_domain_non_divisible_end() {
        let d = ParameterDomain::Range {
            lo: 0,
            hi: 10,
            step: 4,
        };
        assert_eq!(d.values(), vec![0, 4, 8]);
        assert_eq!(d.cardinality(), 3);
    }

    #[test]
    fn empty_range() {
        let d = ParameterDomain::Range {
            lo: 5,
            hi: 4,
            step: 1,
        };
        assert_eq!(d.values(), Vec::<i64>::new());
        assert_eq!(d.cardinality(), 0);
    }

    #[test]
    fn set_domain() {
        let d = ParameterDomain::Set(vec![12, 36, 44]);
        assert_eq!(d.values(), vec![12, 36, 44]);
        assert_eq!(d.cardinality(), 3);
        assert!(d.contains(36));
        assert!(!d.contains(13));
    }

    #[test]
    fn referenced_params_deduplicates() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Param("current".into())),
            rhs: Box::new(Expr::Call {
                name: "DemandModel".into(),
                args: vec![Expr::Param("current".into()), Expr::Param("feature".into())],
            }),
        };
        assert_eq!(
            e.referenced_params(),
            vec!["current".to_string(), "feature".to_string()]
        );
    }

    #[test]
    fn referenced_calls_nested() {
        let e = Expr::Case {
            whens: vec![(
                Expr::Binary {
                    op: BinOp::Cmp(CmpOp::Lt),
                    lhs: Box::new(Expr::Call {
                        name: "A".into(),
                        args: vec![],
                    }),
                    rhs: Box::new(Expr::Call {
                        name: "B".into(),
                        args: vec![Expr::Call {
                            name: "C".into(),
                            args: vec![],
                        }],
                    }),
                },
                Expr::Literal(Value::Int(1)),
            )],
            otherwise: None,
        };
        let names: Vec<&str> = e.referenced_calls().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }
}
