//! Token definitions for the Prophet TSQL dialect.

use std::fmt;

/// Byte-offset span of a token in the source text, used for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Inclusive start byte.
    pub start: usize,
    /// Exclusive end byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
}

impl Span {
    /// A span covering a single point (used for EOF).
    pub fn point(offset: usize, line: usize) -> Self {
        Span {
            start: offset,
            end: offset,
            line,
        }
    }
}

/// Keywords of the dialect. Matching is case-insensitive in the lexer;
/// tokens are normalized to these variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the keywords themselves
pub enum Keyword {
    And,
    As,
    Avg,
    By,
    Case,
    Declare,
    Else,
    End,
    Expect,
    ExpectStddev,
    False,
    For,
    From,
    Graph,
    Group,
    Into,
    Max,
    Min,
    Not,
    Null,
    Optimize,
    Or,
    Over,
    Parameter,
    Range,
    Select,
    Set,
    Step,
    Then,
    To,
    True,
    When,
    Where,
    With,
}

impl Keyword {
    /// Parse a raw (already upper-cased) identifier as a keyword.
    pub fn from_upper(word: &str) -> Option<Keyword> {
        Some(match word {
            "AND" => Keyword::And,
            "AS" => Keyword::As,
            "AVG" => Keyword::Avg,
            "BY" => Keyword::By,
            "CASE" => Keyword::Case,
            "DECLARE" => Keyword::Declare,
            "ELSE" => Keyword::Else,
            "END" => Keyword::End,
            "EXPECT" => Keyword::Expect,
            "EXPECT_STDDEV" => Keyword::ExpectStddev,
            "FALSE" => Keyword::False,
            "FOR" => Keyword::For,
            "FROM" => Keyword::From,
            "GRAPH" => Keyword::Graph,
            "GROUP" => Keyword::Group,
            "INTO" => Keyword::Into,
            "MAX" => Keyword::Max,
            "MIN" => Keyword::Min,
            "NOT" => Keyword::Not,
            "NULL" => Keyword::Null,
            "OPTIMIZE" => Keyword::Optimize,
            "OR" => Keyword::Or,
            "OVER" => Keyword::Over,
            "PARAMETER" => Keyword::Parameter,
            "RANGE" => Keyword::Range,
            "SELECT" => Keyword::Select,
            "SET" => Keyword::Set,
            "STEP" => Keyword::Step,
            "THEN" => Keyword::Then,
            "TO" => Keyword::To,
            "TRUE" => Keyword::True,
            "WHEN" => Keyword::When,
            "WHERE" => Keyword::Where,
            "WITH" => Keyword::With,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (normalized).
    Keyword(Keyword),
    /// A bare identifier: column name, function name, style word.
    Ident(String),
    /// A `@parameter` reference (stored without the `@`).
    Param(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Param(s) => write!(f, "@{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Neq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_normalized() {
        assert_eq!(Keyword::from_upper("SELECT"), Some(Keyword::Select));
        assert_eq!(
            Keyword::from_upper("EXPECT_STDDEV"),
            Some(Keyword::ExpectStddev)
        );
        assert_eq!(
            Keyword::from_upper("select"),
            None,
            "caller must upper-case"
        );
        assert_eq!(Keyword::from_upper("DEMAND"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(TokenKind::Param("current".into()).to_string(), "@current");
        assert_eq!(TokenKind::Neq.to_string(), "<>");
        assert_eq!(
            TokenKind::Ident("demand".into()).to_string(),
            "identifier `demand`"
        );
    }
}
