//! Shared test VG functions for the executor test suites.
//!
//! The scalar ([`crate::executor`]) and vectorized ([`crate::vector`])
//! tiers are differential-tested against each other, so both suites must
//! exercise the *same* stochastic functions — one definition here keeps a
//! change to the draw discipline from silently diverging the two suites.

use std::sync::Arc;

use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder, Value};
use prophet_vg::rng::Rng64;
use prophet_vg::{VgCallF64, VgFunction, VgRegistry};

/// A deterministic VG function: returns `base + U[0,1)` as a 1x1 table.
#[derive(Debug)]
pub struct Jitter;

impl VgFunction for Jitter {
    fn name(&self) -> &str {
        "Jitter"
    }
    fn arity(&self) -> usize {
        1
    }
    fn output_schema(&self) -> Schema {
        Schema::of(&[("v", DataType::Float)])
    }
    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let base = params[0].as_f64()?;
        let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
        b.push_row(vec![Value::Float(base + rng.next_f64())])?;
        Ok(b.finish())
    }
    fn invoke_batch_f64(&self, calls: &mut [VgCallF64<'_>]) -> DataResult<Option<Vec<f64>>> {
        calls
            .iter_mut()
            .map(|c| Ok(c.params[0].as_f64()? + c.rng.next_f64()))
            .collect::<DataResult<Vec<f64>>>()
            .map(Some)
    }
}

/// A malformed VG function that returns two rows (for error-path tests).
#[derive(Debug)]
pub struct TwoRows;

impl VgFunction for TwoRows {
    fn name(&self) -> &str {
        "TwoRows"
    }
    fn arity(&self) -> usize {
        0
    }
    fn output_schema(&self) -> Schema {
        Schema::of(&[("v", DataType::Float)])
    }
    fn invoke(&self, _: &[Value], _: &mut dyn Rng64) -> DataResult<Table> {
        let mut b = TableBuilder::new(self.output_schema());
        b.push_row(vec![Value::Float(1.0)])?;
        b.push_row(vec![Value::Float(2.0)])?;
        Ok(b.finish())
    }
}

/// A registry with both test functions installed.
pub fn test_registry() -> VgRegistry {
    let mut r = VgRegistry::new();
    r.register(Arc::new(Jitter));
    r.register(Arc::new(TwoRows));
    r
}
