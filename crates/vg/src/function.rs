//! The VG-Function framework.
//!
//! MCDB and PIP — and Fuzzy Prophet after them — let analysts plug arbitrary
//! *variable-generation functions* into queries: black-box stochastic
//! procedures that take parameters and a PRNG and return a relation. The
//! engine never looks inside a VG-Function; everything it learns about one
//! comes from invoking it (this opacity is exactly why fingerprinting, rather
//! than static analysis, is the paper's route to detecting correlation).
//!
//! The paper stores table-generating functions *in the database*:
//!
//! > "If an analyst develops a better model, she can update all Fuzzy Prophet
//! > instances using the model by simply modifying the function definitions."
//!
//! [`VgRegistry`] is that catalog: names → implementations, hot-swappable,
//! with per-function invocation counters that the experiments use to measure
//! how much work fingerprinting avoids.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prophet_data::{DataError, DataResult, Schema, Table, Value};

use crate::rng::Rng64;

/// A black-box table-generating stochastic function.
///
/// Implementations must be **deterministic given `(params, rng stream)`**:
/// two invocations with equal parameters and identically seeded generators
/// must return identical tables. The fingerprint machinery and the whole
/// possible-worlds semantics rest on this contract, and
/// `tests/determinism.rs` enforces it for every bundled model.
pub trait VgFunction: Send + Sync {
    /// Catalog name, as referenced from scenario SQL (e.g. `DemandModel`).
    fn name(&self) -> &str;

    /// Number of parameters the function expects.
    fn arity(&self) -> usize;

    /// Schema of the generated relation.
    fn output_schema(&self) -> Schema;

    /// Generate one sample relation for one possible world.
    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table>;
}

/// Snapshot of invocation accounting for one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvocationStats {
    /// Total number of `invoke` calls.
    pub invocations: u64,
}

struct Entry {
    function: Arc<dyn VgFunction>,
    invocations: AtomicU64,
}

/// The function catalog ("stored in the database" in the paper).
///
/// Thread-safe for reads after setup: registration happens during scenario
/// preparation; simulation threads only `invoke`.
#[derive(Default)]
pub struct VgRegistry {
    entries: HashMap<String, Entry>,
}

impl VgRegistry {
    /// Empty catalog.
    pub fn new() -> Self {
        VgRegistry::default()
    }

    /// Register (or hot-swap) a function under its own name.
    pub fn register(&mut self, function: Arc<dyn VgFunction>) {
        self.entries.insert(
            function.name().to_owned(),
            Entry {
                function,
                invocations: AtomicU64::new(0),
            },
        );
    }

    /// Look up a function by name.
    pub fn get(&self, name: &str) -> DataResult<&Arc<dyn VgFunction>> {
        self.entries
            .get(name)
            .map(|e| &e.function)
            .ok_or_else(|| DataError::UnknownColumn(format!("VG function `{name}`")))
    }

    /// Invoke by name, validating arity and counting the call.
    pub fn invoke(&self, name: &str, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| DataError::UnknownColumn(format!("VG function `{name}`")))?;
        if params.len() != entry.function.arity() {
            return Err(DataError::SchemaMismatch(format!(
                "VG function `{name}` expects {} parameters, got {}",
                entry.function.arity(),
                params.len()
            )));
        }
        entry.invocations.fetch_add(1, Ordering::Relaxed);
        entry.function.invoke(params, rng)
    }

    /// Invocation statistics for one function.
    pub fn stats(&self, name: &str) -> Option<InvocationStats> {
        self.entries.get(name).map(|e| InvocationStats {
            invocations: e.invocations.load(Ordering::Relaxed),
        })
    }

    /// Total invocations across the whole catalog.
    pub fn total_invocations(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.invocations.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset all counters (benchmarks call this between configurations).
    pub fn reset_stats(&self) {
        for e in self.entries.values() {
            e.invocations.store(0, Ordering::Relaxed);
        }
    }

    /// Names of all registered functions, sorted (deterministic listings).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for VgRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VgRegistry")
            .field("functions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_data::{DataType, TableBuilder};

    /// Minimal test function: emits `n` rows of `U[0,1)` draws.
    #[derive(Debug)]
    struct UniformRows;

    impl VgFunction for UniformRows {
        fn name(&self) -> &str {
            "UniformRows"
        }

        fn arity(&self) -> usize {
            1
        }

        fn output_schema(&self) -> Schema {
            Schema::of(&[("u", DataType::Float)])
        }

        fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
            let n = params[0].as_i64()? as usize;
            let mut b = TableBuilder::with_capacity(self.output_schema(), n);
            for _ in 0..n {
                b.push_row(vec![Value::Float(rng.next_f64())])?;
            }
            Ok(b.finish())
        }
    }

    fn registry() -> VgRegistry {
        let mut r = VgRegistry::new();
        r.register(Arc::new(UniformRows));
        r
    }

    #[test]
    fn register_lookup_invoke() {
        let r = registry();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.get("UniformRows").is_ok());
        assert!(r.get("Missing").is_err());

        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        let t = r.invoke("UniformRows", &[Value::Int(5)], &mut rng).unwrap();
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn arity_is_validated() {
        let r = registry();
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        let err = r.invoke("UniformRows", &[], &mut rng).unwrap_err();
        assert!(err.to_string().contains("expects 1 parameters"));
    }

    #[test]
    fn invocations_are_counted_and_resettable() {
        let r = registry();
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..3 {
            r.invoke("UniformRows", &[Value::Int(1)], &mut rng).unwrap();
        }
        assert_eq!(r.stats("UniformRows").unwrap().invocations, 3);
        assert_eq!(r.total_invocations(), 3);
        r.reset_stats();
        assert_eq!(r.total_invocations(), 0);
        assert!(r.stats("Missing").is_none());
    }

    #[test]
    fn hot_swap_replaces_implementation() {
        #[derive(Debug)]
        struct Empty;
        impl VgFunction for Empty {
            fn name(&self) -> &str {
                "UniformRows"
            }
            fn arity(&self) -> usize {
                0
            }
            fn output_schema(&self) -> Schema {
                Schema::empty()
            }
            fn invoke(&self, _: &[Value], _: &mut dyn Rng64) -> DataResult<Table> {
                Ok(Table::empty(Schema::empty()))
            }
        }

        let mut r = registry();
        r.register(Arc::new(Empty));
        assert_eq!(r.len(), 1, "same name replaces, not duplicates");
        assert_eq!(r.get("UniformRows").unwrap().arity(), 0);
    }

    #[test]
    fn same_seed_same_output() {
        let r = registry();
        let mut a = crate::rng::Xoshiro256StarStar::seed_from_u64(9);
        let mut b = crate::rng::Xoshiro256StarStar::seed_from_u64(9);
        let ta = r.invoke("UniformRows", &[Value::Int(16)], &mut a).unwrap();
        let tb = r.invoke("UniformRows", &[Value::Int(16)], &mut b).unwrap();
        assert_eq!(ta, tb);
    }
}
