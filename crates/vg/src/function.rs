//! The VG-Function framework.
//!
//! MCDB and PIP — and Fuzzy Prophet after them — let analysts plug arbitrary
//! *variable-generation functions* into queries: black-box stochastic
//! procedures that take parameters and a PRNG and return a relation. The
//! engine never looks inside a VG-Function; everything it learns about one
//! comes from invoking it (this opacity is exactly why fingerprinting, rather
//! than static analysis, is the paper's route to detecting correlation).
//!
//! The paper stores table-generating functions *in the database*:
//!
//! > "If an analyst develops a better model, she can update all Fuzzy Prophet
//! > instances using the model by simply modifying the function definitions."
//!
//! [`VgRegistry`] is that catalog: names → implementations, hot-swappable,
//! with per-function invocation counters that the experiments use to measure
//! how much work fingerprinting avoids.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prophet_data::{DataError, DataResult, Schema, Table, Value};

use crate::rng::{Rng64, Xoshiro256StarStar};

/// Extract the single cell of a VG function's output relation when the
/// function was used in *scalar position* (the only position the scenario
/// dialect has). Both execution tiers route their misuse diagnostics
/// through here, so a malformed model reports the identical error class
/// and message whether worlds were walked one at a time or as a block.
pub fn extract_scalar_cell(name: &str, table: &Table) -> DataResult<Value> {
    if table.num_rows() != 1 || table.schema().len() != 1 {
        return Err(DataError::SchemaMismatch(format!(
            "VG function `{name}` used as a scalar must return exactly one cell, got {}x{}",
            table.num_rows(),
            table.schema().len()
        )));
    }
    let column = &table.schema().fields()[0].name;
    table.cell(0, column)
}

/// One logical per-world invocation inside a batched VG call: the concrete
/// argument values for that world plus the world's derived substream.
///
/// The vectorized SQL executor hands the whole block to
/// [`VgRegistry::invoke_batch`] so a model sees every world of a block at
/// once and can amortize per-call setup, while each world still draws from
/// its own generator (the possible-worlds seed discipline is untouched).
pub struct VgCall<'a> {
    /// Argument values for this world.
    pub params: &'a [Value],
    /// The world's derived random stream.
    pub rng: &'a mut dyn Rng64,
}

/// One logical per-world invocation inside the typed columnar tier's `f64`
/// batch lane ([`VgFunction::invoke_batch_f64`]).
///
/// Unlike [`VgCall`], the stream is the *concrete* generator that per-call
/// substream derivation always produces ([`crate::SeedManager::rng_for`]),
/// not a `dyn Rng64`. That is the lane's whole point: a model's sampling
/// loop monomorphizes over `Xoshiro256StarStar`, so every draw inlines the
/// generator's state update instead of paying a virtual call — while the
/// draws themselves (and therefore the samples) stay bit-identical to the
/// `dyn` paths, which run the exact same arithmetic behind a vtable.
pub struct VgCallF64<'a> {
    /// Argument values for this world.
    pub params: &'a [Value],
    /// The world's derived random stream, concretely typed.
    pub rng: &'a mut Xoshiro256StarStar,
}

/// A black-box table-generating stochastic function.
///
/// Implementations must be **deterministic given `(params, rng stream)`**:
/// two invocations with equal parameters and identically seeded generators
/// must return identical tables. The fingerprint machinery and the whole
/// possible-worlds semantics rest on this contract, and
/// `tests/determinism.rs` enforces it for every bundled model.
pub trait VgFunction: Send + Sync {
    /// Catalog name, as referenced from scenario SQL (e.g. `DemandModel`).
    fn name(&self) -> &str;

    /// Number of parameters the function expects.
    fn arity(&self) -> usize;

    /// Schema of the generated relation.
    fn output_schema(&self) -> Schema;

    /// Generate one sample relation for one possible world.
    fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table>;

    /// Generate one relation per world of a block, in call order.
    ///
    /// The default loops over [`VgFunction::invoke`], so existing models
    /// are batch-capable unchanged; implementations may override to hoist
    /// per-call setup (schema construction, parameter decoding) out of the
    /// world loop. Overrides must return exactly `calls.len()` tables and
    /// must produce, for each world, the bit-identical table `invoke` would
    /// have produced with the same `(params, rng)` — callers (and the
    /// scalar-vs-vector differential tests) rely on it.
    fn invoke_batch(&self, calls: &mut [VgCall<'_>]) -> DataResult<Vec<Table>> {
        calls
            .iter_mut()
            .map(|call| self.invoke(call.params, call.rng))
            .collect()
    }

    /// Batched invocation in *scalar position*: one output cell per world.
    ///
    /// Scenario SELECTs use VG functions as scalars — each world's
    /// invocation must produce a 1×1 relation whose single cell is the
    /// world's sample. The default routes through
    /// [`VgFunction::invoke_batch`] and extracts (validating) that cell;
    /// single-cell models override to return the values directly and skip
    /// relation construction entirely, which is where the vectorized
    /// executor's per-world overhead lives. Overrides must produce, per
    /// world, the bit-identical value the default extraction would.
    fn invoke_batch_scalar(&self, calls: &mut [VgCall<'_>]) -> DataResult<Vec<Value>> {
        let tables = self.invoke_batch(calls)?;
        tables
            .into_iter()
            .map(|table| extract_scalar_cell(self.name(), &table))
            .collect()
    }

    /// Batched invocation in scalar position straight into an `f64` lane:
    /// one raw sample per world, no `Value` boxing, no `dyn` rng.
    ///
    /// This is the typed columnar tier's fast path. The default returns
    /// `Ok(None)`, meaning "no f64 lane — use
    /// [`VgFunction::invoke_batch_scalar`]"; models whose scalar output is
    /// always `Value::Float` override it to write draws directly (and,
    /// because [`VgCallF64`] carries the concrete generator, their sampling
    /// loops monomorphize — see the distributions' `sample_with`). An
    /// override returning `Some(samples)` promises, per world, that
    /// `samples[i]` is bit-identical to the float inside the `Value::Float`
    /// that `invoke_batch_scalar` (and hence `invoke`) would have produced
    /// for the same `(params, rng)` — including consuming the *same number
    /// of draws* from each world's stream, since the `(world, function,
    /// call index)` seed derivation must be preserved exactly.
    fn invoke_batch_f64(&self, calls: &mut [VgCallF64<'_>]) -> DataResult<Option<Vec<f64>>> {
        let _ = calls;
        Ok(None)
    }
}

/// Output of [`VgRegistry::invoke_batch_columnar`]: the raw `f64` lane when
/// the model provides one, the boxed scalar column otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchSamples {
    /// One raw `f64` sample per world (the model's scalar output is always
    /// `Value::Float`; no per-world boxing happened).
    F64(Vec<f64>),
    /// One boxed scalar per world, from [`VgFunction::invoke_batch_scalar`].
    Values(Vec<Value>),
}

/// Snapshot of invocation accounting for one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvocationStats {
    /// Total number of logical per-world invocations (a batched call of
    /// `n` worlds counts `n`, so this number is comparable across the
    /// scalar and vectorized execution tiers).
    pub invocations: u64,
    /// Number of physical `invoke_batch` calls that produced those logical
    /// invocations (0 when every call went through the scalar path).
    pub batched_calls: u64,
}

struct Entry {
    function: Arc<dyn VgFunction>,
    invocations: AtomicU64,
    batched_calls: AtomicU64,
}

/// The function catalog ("stored in the database" in the paper).
///
/// Thread-safe for reads after setup: registration happens during scenario
/// preparation; simulation threads only `invoke`.
#[derive(Default)]
pub struct VgRegistry {
    entries: HashMap<String, Entry>,
}

impl VgRegistry {
    /// Empty catalog.
    pub fn new() -> Self {
        VgRegistry::default()
    }

    /// Register (or hot-swap) a function under its own name.
    pub fn register(&mut self, function: Arc<dyn VgFunction>) {
        self.entries.insert(
            function.name().to_owned(),
            Entry {
                function,
                invocations: AtomicU64::new(0),
                batched_calls: AtomicU64::new(0),
            },
        );
    }

    /// Look up a function by name.
    pub fn get(&self, name: &str) -> DataResult<&Arc<dyn VgFunction>> {
        self.entries
            .get(name)
            .map(|e| &e.function)
            .ok_or_else(|| DataError::UnknownColumn(format!("VG function `{name}`")))
    }

    /// Invoke by name, validating arity and counting the call.
    pub fn invoke(&self, name: &str, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| DataError::UnknownColumn(format!("VG function `{name}`")))?;
        if params.len() != entry.function.arity() {
            return Err(DataError::SchemaMismatch(format!(
                "VG function `{name}` expects {} parameters, got {}",
                entry.function.arity(),
                params.len()
            )));
        }
        entry.invocations.fetch_add(1, Ordering::Relaxed);
        entry.function.invoke(params, rng)
    }

    /// Resolve the entry for a batched call: validates arity per call and
    /// records `calls.len()` logical invocations plus one physical batch
    /// call. Shared by both batch entry points so the two paths' accounting
    /// and validation can never drift apart.
    fn claim_batch(
        &self,
        name: &str,
        param_lens: impl ExactSizeIterator<Item = usize>,
    ) -> DataResult<&Entry> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| DataError::UnknownColumn(format!("VG function `{name}`")))?;
        let calls = param_lens.len() as u64;
        for len in param_lens {
            if len != entry.function.arity() {
                return Err(DataError::SchemaMismatch(format!(
                    "VG function `{name}` expects {} parameters, got {len}",
                    entry.function.arity(),
                )));
            }
        }
        entry.invocations.fetch_add(calls, Ordering::Relaxed);
        entry.batched_calls.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// A batched implementation must hand back one output per world.
    fn expect_batch_len<T>(name: &str, outputs: Vec<T>, calls: usize) -> DataResult<Vec<T>> {
        if outputs.len() != calls {
            return Err(DataError::SchemaMismatch(format!(
                "VG function `{name}` returned {} outputs for a batch of {calls}",
                outputs.len()
            )));
        }
        Ok(outputs)
    }

    /// Invoke by name over a whole world-block, validating arity and
    /// counting every *logical* per-world invocation — `invoke_batch` with
    /// `n` calls bumps the counter by `n`, so invocation accounting stays
    /// comparable whether the executor walked worlds one at a time or as a
    /// block. `batched_calls` additionally counts the physical batch calls,
    /// making the amortization itself observable.
    pub fn invoke_batch(&self, name: &str, calls: &mut [VgCall<'_>]) -> DataResult<Vec<Table>> {
        let entry = self.claim_batch(name, calls.iter().map(|c| c.params.len()))?;
        let tables = entry.function.invoke_batch(calls)?;
        Self::expect_batch_len(name, tables, calls.len())
    }

    /// Scalar-position variant of [`VgRegistry::invoke_batch`]: one cell
    /// per world, same arity validation and logical-invocation accounting.
    pub fn invoke_batch_scalar(
        &self,
        name: &str,
        calls: &mut [VgCall<'_>],
    ) -> DataResult<Vec<Value>> {
        let entry = self.claim_batch(name, calls.iter().map(|c| c.params.len()))?;
        let values = entry.function.invoke_batch_scalar(calls)?;
        Self::expect_batch_len(name, values, calls.len())
    }

    /// Columnar variant of [`VgRegistry::invoke_batch_scalar`]: same arity
    /// validation and logical-invocation accounting (claimed exactly once),
    /// but asks the model for its raw `f64` lane first and only falls back
    /// to boxed scalars when the model declines. The typed columnar
    /// executor keys its `column_fallbacks` accounting off which variant
    /// comes back. Fallback calls reborrow the concrete streams as `dyn`,
    /// so a declining model consumes exactly the draws the scalar batch
    /// path would have.
    pub fn invoke_batch_columnar(
        &self,
        name: &str,
        calls: &mut [VgCallF64<'_>],
    ) -> DataResult<BatchSamples> {
        let entry = self.claim_batch(name, calls.iter().map(|c| c.params.len()))?;
        if let Some(samples) = entry.function.invoke_batch_f64(calls)? {
            let samples = Self::expect_batch_len(name, samples, calls.len())?;
            return Ok(BatchSamples::F64(samples));
        }
        let n = calls.len();
        let mut dyn_calls: Vec<VgCall<'_>> = calls
            .iter_mut()
            .map(|c| VgCall {
                params: c.params,
                rng: c.rng as &mut dyn Rng64,
            })
            .collect();
        let values = entry.function.invoke_batch_scalar(&mut dyn_calls)?;
        let values = Self::expect_batch_len(name, values, n)?;
        Ok(BatchSamples::Values(values))
    }

    /// Invocation statistics for one function.
    pub fn stats(&self, name: &str) -> Option<InvocationStats> {
        self.entries.get(name).map(|e| InvocationStats {
            invocations: e.invocations.load(Ordering::Relaxed),
            batched_calls: e.batched_calls.load(Ordering::Relaxed),
        })
    }

    /// Total invocations across the whole catalog.
    pub fn total_invocations(&self) -> u64 {
        self.entries
            // analysis:allow(map-iter): integer sum — associative and commutative, order cannot reach the result
            .values()
            .map(|e| e.invocations.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset all counters (benchmarks call this between configurations).
    pub fn reset_stats(&self) {
        // analysis:allow(map-iter): every entry is zeroed identically — visit order is unobservable
        for e in self.entries.values() {
            e.invocations.store(0, Ordering::Relaxed);
            e.batched_calls.store(0, Ordering::Relaxed);
        }
    }

    /// Names of all registered functions, sorted (deterministic listings).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for VgRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VgRegistry")
            .field("functions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_data::{DataType, TableBuilder};

    /// Minimal test function: emits `n` rows of `U[0,1)` draws.
    #[derive(Debug)]
    struct UniformRows;

    impl VgFunction for UniformRows {
        fn name(&self) -> &str {
            "UniformRows"
        }

        fn arity(&self) -> usize {
            1
        }

        fn output_schema(&self) -> Schema {
            Schema::of(&[("u", DataType::Float)])
        }

        fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
            let n = params[0].as_i64()? as usize;
            let mut b = TableBuilder::with_capacity(self.output_schema(), n);
            for _ in 0..n {
                b.push_row(vec![Value::Float(rng.next_f64())])?;
            }
            Ok(b.finish())
        }
    }

    fn registry() -> VgRegistry {
        let mut r = VgRegistry::new();
        r.register(Arc::new(UniformRows));
        r
    }

    #[test]
    fn register_lookup_invoke() {
        let r = registry();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.get("UniformRows").is_ok());
        assert!(r.get("Missing").is_err());

        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        let t = r.invoke("UniformRows", &[Value::Int(5)], &mut rng).unwrap();
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn arity_is_validated() {
        let r = registry();
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        let err = r.invoke("UniformRows", &[], &mut rng).unwrap_err();
        assert!(err.to_string().contains("expects 1 parameters"));
    }

    #[test]
    fn invocations_are_counted_and_resettable() {
        let r = registry();
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..3 {
            r.invoke("UniformRows", &[Value::Int(1)], &mut rng).unwrap();
        }
        assert_eq!(r.stats("UniformRows").unwrap().invocations, 3);
        assert_eq!(r.total_invocations(), 3);
        r.reset_stats();
        assert_eq!(r.total_invocations(), 0);
        assert!(r.stats("Missing").is_none());
    }

    #[test]
    fn hot_swap_replaces_implementation() {
        #[derive(Debug)]
        struct Empty;
        impl VgFunction for Empty {
            fn name(&self) -> &str {
                "UniformRows"
            }
            fn arity(&self) -> usize {
                0
            }
            fn output_schema(&self) -> Schema {
                Schema::empty()
            }
            fn invoke(&self, _: &[Value], _: &mut dyn Rng64) -> DataResult<Table> {
                Ok(Table::empty(Schema::empty()))
            }
        }

        let mut r = registry();
        r.register(Arc::new(Empty));
        assert_eq!(r.len(), 1, "same name replaces, not duplicates");
        assert_eq!(r.get("UniformRows").unwrap().arity(), 0);
    }

    #[test]
    fn batch_invoke_counts_logical_invocations_and_matches_scalar() {
        let r = registry();
        // Batch of 3 worlds, distinct rngs.
        let mut rngs: Vec<_> = (0..3u64)
            .map(crate::rng::Xoshiro256StarStar::seed_from_u64)
            .collect();
        let params = vec![Value::Int(4)];
        let mut calls: Vec<VgCall<'_>> = rngs
            .iter_mut()
            .map(|rng| VgCall {
                params: &params,
                rng,
            })
            .collect();
        let tables = r.invoke_batch("UniformRows", &mut calls).unwrap();
        assert_eq!(tables.len(), 3);
        let stats = r.stats("UniformRows").unwrap();
        assert_eq!(stats.invocations, 3, "one logical invocation per world");
        assert_eq!(stats.batched_calls, 1, "one physical batch call");

        // The default fallback must be bit-identical to scalar invocation.
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        let scalar = r.invoke("UniformRows", &[Value::Int(4)], &mut rng).unwrap();
        assert_eq!(tables[1], scalar);
    }

    #[test]
    fn batch_scalar_extracts_single_cells_and_rejects_relations() {
        // UniformRows(1) is a 1x1 relation: the default scalar batch path
        // must extract exactly the cell scalar invocation produces.
        let r = registry();
        let mut a = crate::rng::Xoshiro256StarStar::seed_from_u64(3);
        let mut b = crate::rng::Xoshiro256StarStar::seed_from_u64(3);
        let params = vec![Value::Int(1)];
        let mut calls = vec![VgCall {
            params: &params,
            rng: &mut a,
        }];
        let cells = r.invoke_batch_scalar("UniformRows", &mut calls).unwrap();
        let table = r.invoke("UniformRows", &[Value::Int(1)], &mut b).unwrap();
        assert_eq!(cells, vec![table.cell(0, "u").unwrap()]);

        // A multi-row result must be rejected with the scalar-misuse error.
        let mut c = crate::rng::Xoshiro256StarStar::seed_from_u64(3);
        let params = vec![Value::Int(2)];
        let mut calls = vec![VgCall {
            params: &params,
            rng: &mut c,
        }];
        let err = r
            .invoke_batch_scalar("UniformRows", &mut calls)
            .unwrap_err();
        assert!(err.to_string().contains("exactly one cell"), "{err}");
    }

    #[test]
    fn batch_invoke_validates_arity_per_call() {
        let r = registry();
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        let good = vec![Value::Int(1)];
        let bad: Vec<Value> = vec![];
        let mut calls = vec![VgCall {
            params: &good,
            rng: &mut rng,
        }];
        assert!(r.invoke_batch("UniformRows", &mut calls).is_ok());
        let mut rng2 = crate::rng::Xoshiro256StarStar::seed_from_u64(1);
        let mut calls = vec![VgCall {
            params: &bad,
            rng: &mut rng2,
        }];
        let err = r.invoke_batch("UniformRows", &mut calls).unwrap_err();
        assert!(err.to_string().contains("expects 1 parameters"));
        assert!(r.invoke_batch("Missing", &mut []).is_err());
    }

    /// Single-cell uniform draw with a raw `f64` batch lane.
    #[derive(Debug)]
    struct UniformCell;

    impl VgFunction for UniformCell {
        fn name(&self) -> &str {
            "UniformCell"
        }

        fn arity(&self) -> usize {
            0
        }

        fn output_schema(&self) -> Schema {
            Schema::of(&[("u", DataType::Float)])
        }

        fn invoke(&self, _: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
            let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
            b.push_row(vec![Value::Float(rng.next_f64())])?;
            Ok(b.finish())
        }

        fn invoke_batch_f64(&self, calls: &mut [VgCallF64<'_>]) -> DataResult<Option<Vec<f64>>> {
            Ok(Some(calls.iter_mut().map(|c| c.rng.next_f64()).collect()))
        }
    }

    #[test]
    fn columnar_batch_prefers_the_f64_lane_and_matches_invoke() {
        let mut r = VgRegistry::new();
        r.register(Arc::new(UniformCell));
        let mut rngs: Vec<_> = (0..4u64)
            .map(crate::rng::Xoshiro256StarStar::seed_from_u64)
            .collect();
        let mut calls: Vec<VgCallF64<'_>> = rngs
            .iter_mut()
            .map(|rng| VgCallF64 { params: &[], rng })
            .collect();
        let BatchSamples::F64(samples) =
            r.invoke_batch_columnar("UniformCell", &mut calls).unwrap()
        else {
            panic!("UniformCell provides an f64 lane");
        };
        assert_eq!(samples.len(), 4);
        let stats = r.stats("UniformCell").unwrap();
        assert_eq!(stats.invocations, 4, "one logical invocation per world");
        assert_eq!(stats.batched_calls, 1, "one physical batch call");

        // The lane must be bit-identical to the scalar invoke's cell.
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(2);
        let table = r.invoke("UniformCell", &[], &mut rng).unwrap();
        assert_eq!(Value::Float(samples[2]), table.cell(0, "u").unwrap());
    }

    #[test]
    fn columnar_batch_falls_back_to_boxed_scalars() {
        // UniformRows has no f64 lane: the columnar entry point must come
        // back with boxed values matching the scalar batch path bit for bit.
        let r = registry();
        let mut a = crate::rng::Xoshiro256StarStar::seed_from_u64(7);
        let mut b = crate::rng::Xoshiro256StarStar::seed_from_u64(7);
        let params = vec![Value::Int(1)];
        let mut calls = vec![VgCallF64 {
            params: &params,
            rng: &mut a,
        }];
        let BatchSamples::Values(values) =
            r.invoke_batch_columnar("UniformRows", &mut calls).unwrap()
        else {
            panic!("UniformRows has no f64 lane");
        };
        let mut calls = vec![VgCall {
            params: &params,
            rng: &mut b,
        }];
        let scalar = r.invoke_batch_scalar("UniformRows", &mut calls).unwrap();
        assert_eq!(values, scalar);
        let stats = r.stats("UniformRows").unwrap();
        assert_eq!(stats.invocations, 2, "claimed exactly once per entry point");
        assert_eq!(stats.batched_calls, 2);
    }

    #[test]
    fn same_seed_same_output() {
        let r = registry();
        let mut a = crate::rng::Xoshiro256StarStar::seed_from_u64(9);
        let mut b = crate::rng::Xoshiro256StarStar::seed_from_u64(9);
        let ta = r.invoke("UniformRows", &[Value::Int(16)], &mut a).unwrap();
        let tb = r.invoke("UniformRows", &[Value::Int(16)], &mut b).unwrap();
        assert_eq!(ta, tb);
    }
}
