//! Deterministic seed derivation for possible worlds.
//!
//! Every random draw in a simulation must be attributable to a *world*: the
//! MCDB possible-worlds semantics requires that re-running world `w` of a
//! scenario reproduces exactly the same sample, and the fingerprint engine
//! requires that the same world seed fed to two different parameterizations
//! uses "the same randomness" so differences are attributable to parameters,
//! not noise (this is the paper's common-random-numbers trick).
//!
//! [`SeedManager`] derives a generator per `(world, function, step)` by
//! hash-mixing the components with SplitMix64 finalizers. Streams for
//! distinct coordinates are statistically independent, and no global state
//! is involved, so simulation is embarrassingly parallel.

use crate::rng::{SplitMix64, Xoshiro256StarStar};

/// Derives per-(world, function, step) generators from one root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedManager {
    root: u64,
}

impl SeedManager {
    /// Create with an explicit root (scenario-level configuration).
    pub fn new(root: u64) -> Self {
        SeedManager { root }
    }

    /// Stable FNV-1a hash of a function name. Not security-relevant; only
    /// needs to be stable across runs and well-spread.
    fn hash_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Raw derived seed for `(world, function, step)`.
    pub fn seed_for(&self, world: u64, function: &str, step: u64) -> u64 {
        // Three rounds of strong mixing; each component is pre-whitened so
        // that adjacent worlds / steps land far apart in seed space.
        let a = SplitMix64::mix(self.root ^ world.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let b = SplitMix64::mix(a ^ Self::hash_name(function));
        SplitMix64::mix(b ^ step.wrapping_mul(0xBF58_476D_1CE4_E5B9))
    }

    /// Generator for `(world, function, step)`.
    pub fn rng_for(&self, world: u64, function: &str, step: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(self.seed_for(world, function, step))
    }

    /// Generator for a world's top-level scenario evaluation.
    pub fn world_rng(&self, world: u64) -> Xoshiro256StarStar {
        self.rng_for(world, "<scenario>", 0)
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn derivation_is_deterministic() {
        let m = SeedManager::new(7);
        assert_eq!(
            m.seed_for(3, "DemandModel", 1),
            m.seed_for(3, "DemandModel", 1)
        );
        assert_eq!(m.root(), 7);
    }

    #[test]
    fn coordinates_are_separated() {
        let m = SeedManager::new(7);
        let base = m.seed_for(3, "DemandModel", 1);
        assert_ne!(base, m.seed_for(4, "DemandModel", 1), "world must matter");
        assert_ne!(
            base,
            m.seed_for(3, "CapacityModel", 1),
            "function must matter"
        );
        assert_ne!(base, m.seed_for(3, "DemandModel", 2), "step must matter");
        assert_ne!(
            base,
            SeedManager::new(8).seed_for(3, "DemandModel", 1),
            "root must matter"
        );
    }

    #[test]
    fn no_seed_collisions_over_a_grid() {
        let m = SeedManager::new(0xABCD);
        let mut seeds = Vec::new();
        for world in 0..50u64 {
            for step in 0..50u64 {
                seeds.push(m.seed_for(world, "CapacityModel", step));
            }
        }
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "2500 derived seeds must be distinct");
    }

    #[test]
    fn derived_streams_look_independent() {
        let m = SeedManager::new(1);
        let mut a = m.rng_for(0, "f", 0);
        let mut b = m.rng_for(1, "f", 0);
        let xs: Vec<f64> = (0..20_000).map(|_| a.next_f64()).collect();
        let ys: Vec<f64> = (0..20_000).map(|_| b.next_f64()).collect();
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / xs.len() as f64;
        assert!(cov.abs() < 0.002, "cross-stream covariance {cov}");
    }

    #[test]
    fn world_rng_is_a_plain_alias() {
        let m = SeedManager::new(5);
        let mut a = m.world_rng(9);
        let mut b = m.rng_for(9, "<scenario>", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
