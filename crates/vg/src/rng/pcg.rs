//! PCG32 (XSH-RR 64/32) — O'Neill's permuted congruential generator.
//!
//! Included alongside xoshiro for *stream independence*: the seed manager
//! hands auxiliary decisions (event-type selection, deployment-lag draws) a
//! structurally different generator family so that correlated-stream
//! artifacts cannot masquerade as model correlation in fingerprint tests.

use super::Rng64;

const MULTIPLIER: u64 = 6_364_136_223_846_793_005;

/// Reference PCG32 with a selectable stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Create with an initial state and stream selector, following the
    /// reference `pcg32_srandom_r` initialization.
    pub fn new(initstate: u64, initseq: u64) -> Self {
        let mut pcg = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(initstate);
        pcg.step();
        pcg
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
    }

    /// One 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng64 for Pcg32 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Two 32-bit outputs, high word first (fixed order = fixed stream).
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_demo_vector() {
        // First outputs of the canonical pcg32 demo: seed 42, sequence 54.
        let mut rng = Pcg32::new(42, 54);
        let expected: [u32; 6] = [
            0xa15c_02b7,
            0x7b47_f409,
            0xba1d_3330,
            0x83d2_f293,
            0xbfa4_784b,
            0xcbed_606e,
        ];
        for e in expected {
            assert_eq!(rng.next_u32(), e);
        }
    }

    #[test]
    fn distinct_streams_from_same_state() {
        let mut a = Pcg32::new(1, 1);
        let mut b = Pcg32::new(1, 2);
        let equal = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            equal < 4,
            "streams should be essentially uncorrelated, {equal} collisions"
        );
    }

    #[test]
    fn u64_composition_is_deterministic() {
        let mut a = Pcg32::new(7, 9);
        let mut b = Pcg32::new(7, 9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
