//! The fixed seed sequences that define fingerprints.
//!
//! The paper (§2, "Fingerprinting"):
//!
//! > "the fingerprint of a parameterized stochastic function is simply a
//! > sequence of its outputs under a fixed sequence of random inputs (i.e.,
//! > seed of its pseudorandom number generator). The use of a fixed set of
//! > random seeds ensures a deterministic relationship between correlated
//! > outputs of the stochastic functions."
//!
//! [`SeedSequence`] is that fixed set. Two call sites matter:
//!
//! * **fingerprinting** uses [`SeedSequence::fingerprint_default`] — a
//!   process-wide constant sequence, so that fingerprints computed at any
//!   time for any parameter point are comparable;
//! * **estimation** uses per-run sequences ([`SeedSequence::from_root`]) so
//!   production Monte Carlo estimates do not reuse fingerprint worlds.

use super::splitmix::SplitMix64;
use super::Rng64;

/// Root constant for the canonical fingerprint sequence. Changing this value
/// invalidates every stored fingerprint, so it is fixed for the lifetime of
/// the project (digits of pi in hex).
const FINGERPRINT_ROOT: u64 = 0x243F_6A88_85A3_08D3;

/// A reproducible, arbitrarily long sequence of world seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
    seeds: Vec<u64>,
}

impl SeedSequence {
    /// The canonical fixed sequence used for fingerprinting, with `len`
    /// seeds. Prefixes agree: `fingerprint_default(8)` is the first half of
    /// `fingerprint_default(16)`, which lets fingerprints of different
    /// lengths be compared on their common prefix.
    pub fn fingerprint_default(len: usize) -> Self {
        SeedSequence::from_root(FINGERPRINT_ROOT, len)
    }

    /// A sequence derived from an arbitrary root.
    pub fn from_root(root: u64, len: usize) -> Self {
        let mut sm = SplitMix64::new(root);
        let seeds = (0..len).map(|_| sm.next_u64()).collect();
        SeedSequence { root, seeds }
    }

    /// The root this sequence was expanded from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The seeds.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Number of seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Extend (or truncate) to exactly `len` seeds, preserving the prefix.
    pub fn resized(&self, len: usize) -> Self {
        SeedSequence::from_root(self.root, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sequence_is_stable() {
        let a = SeedSequence::fingerprint_default(16);
        let b = SeedSequence::fingerprint_default(16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn prefix_property() {
        let short = SeedSequence::fingerprint_default(8);
        let long = SeedSequence::fingerprint_default(32);
        assert_eq!(short.seeds(), &long.seeds()[..8]);
        assert_eq!(long.resized(8), short);
    }

    #[test]
    fn distinct_roots_give_distinct_sequences() {
        let a = SeedSequence::from_root(1, 8);
        let b = SeedSequence::from_root(2, 8);
        assert_ne!(a.seeds(), b.seeds());
        assert_eq!(a.root(), 1);
    }

    #[test]
    fn seeds_are_distinct_within_sequence() {
        let s = SeedSequence::fingerprint_default(256);
        let mut v = s.seeds().to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 256);
    }

    #[test]
    fn empty_sequence() {
        let s = SeedSequence::from_root(5, 0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
