//! Deterministic pseudo-random number generation.
//!
//! All generators implement [`Rng64`], a minimal trait with provided
//! combinators for floats, ranges and booleans. Streams are bit-for-bit
//! reproducible: the fingerprint store persists only seeds, never samples.

mod pcg;
mod seedseq;
mod splitmix;
mod xoshiro;

pub use pcg::Pcg32;
pub use seedseq::SeedSequence;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// A deterministic 64-bit random source.
///
/// The provided methods define the *only* sanctioned conversions from raw
/// bits to floats/ranges; every model must go through them so that two
/// invocations with the same seed consume the stream identically.
pub trait Rng64 {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; (1 << 53) as f64 is exact.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`. `lo` must be `<= hi`.
    fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive) via unbiased rejection.
    ///
    /// # Panics
    /// Panics if `lo > hi` — caller bug, not data-dependent.
    fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range_i64: lo ({lo}) > hi ({hi})");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span == 1 {
            return lo;
        }
        // Rejection sampling over the widest multiple of `span` that fits in
        // u64 keeps the draw unbiased for any span.
        let span64 = span as u64; // span <= u64::MAX + 1; span==2^64 handled below
        if span > u64::MAX as u128 {
            return lo.wrapping_add(self.next_u64() as i64);
        }
        let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + (v % span64) as i64;
            }
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher–Yates shuffle of a slice.
    ///
    /// `Self: Sized` keeps the trait object-safe — trait objects can still
    /// shuffle through [`shuffle_via`].
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_i64(0, i as i64) as usize;
            slice.swap(i, j);
        }
    }
}

/// Fisher–Yates shuffle usable with `&mut dyn Rng64`.
pub fn shuffle_via<T>(rng: &mut dyn Rng64, slice: &mut [T]) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range_i64(0, i as i64) as usize;
        slice.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v} out of [0,1)");
        }
    }

    #[test]
    fn gen_range_i64_bounds_and_coverage() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range_i64(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values in a small range should appear"
        );
    }

    #[test]
    fn gen_range_i64_degenerate_span() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        assert_eq!(rng.gen_range_i64(42, 42), 42);
    }

    #[test]
    #[should_panic(expected = "lo (3) > hi (2)")]
    fn gen_range_i64_panics_on_inverted_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        rng.gen_range_i64(3, 2);
    }

    #[test]
    fn gen_range_i64_full_domain_does_not_hang() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        // span == 2^64: exercised the special path
        let _ = rng.gen_range_i64(i64::MIN, i64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-0.5));
        assert!(rng.gen_bool(1.5));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move something"
        );
    }
}
