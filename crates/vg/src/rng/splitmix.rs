//! SplitMix64 — Steele, Lea & Flood's fast splittable generator.
//!
//! Used in two roles: as the canonical *seed expander* (turning one `u64`
//! seed into the state vectors of larger generators, as recommended by the
//! xoshiro authors) and as a cheap standalone stream for auxiliary choices
//! that must not perturb a model's main stream.

use super::Rng64;

/// Reference SplitMix64. Passes through every `u64` exactly once over its
/// 2^64 period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment from the reference implementation.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Create from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// One output step (also usable as a standalone mixing function).
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        Self::mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference outputs for seed = 1234567 from the public-domain C
        // implementation (Vigna's splitmix64.c).
        let mut rng = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6_457_827_717_110_365_317,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(99);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(99);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix_is_a_bijection_probe() {
        // Not a proof, but distinct inputs in a small window must stay
        // distinct (collisions would break seed derivation).
        let outs: Vec<u64> = (0u64..1_000).map(SplitMix64::mix).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }
}
