//! xoshiro256** — Blackman & Vigna's all-purpose 64-bit generator.
//!
//! This is the workhorse generator for model simulation: 256 bits of state,
//! period 2^256 − 1, and excellent statistical quality. State is expanded
//! from a single `u64` seed with SplitMix64, exactly as the xoshiro authors
//! recommend, so a world id alone pins the entire stream.

use super::splitmix::SplitMix64;
use super::Rng64;

/// Reference xoshiro256**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed from four raw state words.
    ///
    /// # Panics
    /// Panics if all words are zero (the all-zero state is a fixed point).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must not be all zero"
        );
        Xoshiro256StarStar { s }
    }

    /// Seed from a single `u64` by SplitMix64 expansion (the canonical way
    /// the engine creates per-world generators).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output can theoretically be all zeros only with
        // astronomically small probability; guard anyway.
        if s.iter().all(|&w| w == 0) {
            Xoshiro256StarStar {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            }
        } else {
            Xoshiro256StarStar { s }
        }
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector_via_splitmix_seeding() {
        // Golden values computed from the published reference algorithms
        // (splitmix64 expansion of seed 42, then xoshiro256**).
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let expected: [u64; 5] = [
            1_546_998_764_402_558_742,
            6_990_951_692_964_543_102,
            12_544_586_762_248_559_009,
            17_057_574_109_182_124_193,
            18_295_552_978_065_317_476,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn streams_with_same_seed_are_identical() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "must not be all zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn mean_of_unit_floats_is_centred() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn no_trivial_serial_correlation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(123);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.next_f64()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let num: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let den: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
        let lag1 = num / den;
        assert!(lag1.abs() < 0.02, "lag-1 autocorrelation {lag1}");
    }
}
