//! Parametric probability distributions with closed-form moments.
//!
//! Every distribution documents how many draws it consumes from the PRNG
//! stream per sample — the stream-alignment discipline the models build on
//! (see `prophet-models`): samplers with a *fixed* draw count keep common
//! random numbers aligned when parameters change; samplers with a
//! data-dependent draw count (Poisson) say so, and callers isolate them on
//! sub-streams where alignment matters.
//!
//! Moments are closed-form so tests can check Monte Carlo estimates against
//! exact values rather than against other estimates.

use std::f64::consts::TAU;

use crate::rng::Rng64;

/// A univariate distribution that can be sampled from an [`Rng64`] stream
/// and knows its first two moments in closed form.
///
/// Every concrete distribution also exposes an inherent `sample_with`
/// generic over the rng type; `sample` delegates to it with `R = dyn
/// Rng64`. Monomorphic callers (the typed columnar tier's f64 batch lane,
/// which owns concrete per-world `Xoshiro256StarStar` substreams) call
/// `sample_with` directly so the generator's state update inlines into the
/// sampling loop — same arithmetic, same draw count, bit-identical samples,
/// no virtual dispatch per draw.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn Rng64) -> f64;

    /// Exact expectation.
    fn mean(&self) -> f64;

    /// Exact variance.
    fn variance(&self) -> f64;

    /// Exact standard deviation.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Gaussian `N(mean, std²)`.
///
/// Stream discipline: exactly **two** uniform draws per sample (Box–Muller,
/// cosine branch; the sine partner is intentionally discarded so the draw
/// count stays fixed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// A normal with the given mean and standard deviation.
    /// Returns `None` unless `std` is finite and positive.
    pub fn new(mean: f64, std: f64) -> Option<Self> {
        (std.is_finite() && std > 0.0 && mean.is_finite()).then_some(Normal { mean, std })
    }

    /// Draw a standard-normal variate (two uniforms, Box–Muller).
    #[inline]
    fn standard<R: Rng64 + ?Sized>(rng: &mut R) -> f64 {
        // next_f64 ∈ [0,1) ⇒ 1-u ∈ (0,1], so the log is finite.
        let u1 = 1.0 - rng.next_f64();
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
    }

    /// [`Distribution::sample`], monomorphic over the rng type.
    #[inline]
    pub fn sample_with<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * Normal::standard(rng)
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut dyn Rng64) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std * self.std
    }
}

/// Log-normal: `exp(N(mu, sigma²))`, parameterized by the *underlying*
/// normal's moments (so `mu` is the log of the median).
///
/// Stream discipline: exactly two uniform draws per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// A log-normal whose logarithm is `N(mu, sigma²)`.
    /// Returns `None` unless `sigma` is finite and positive.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (sigma.is_finite() && sigma > 0.0 && mu.is_finite()).then_some(LogNormal { mu, sigma })
    }

    /// The median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// [`Distribution::sample`], monomorphic over the rng type.
    #[inline]
    pub fn sample_with<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut dyn Rng64) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

/// Poisson with rate `lambda`; samples are non-negative integer counts
/// returned as `f64`.
///
/// Stream discipline: the draw count is **data-dependent** (expected
/// `lambda + chunks` uniforms, Knuth's product method over chunks of at most
/// `Poisson::CHUNK`); callers that need stream alignment must sample on an
/// isolated sub-stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
    /// Full [`Poisson::CHUNK`]-rate sub-draws per sample.
    chunks: u32,
    /// Knuth limit `exp(-remaining)` for the final sub-draw (`remaining`
    /// is the rate left after the full chunks). Precomputed at
    /// construction so the per-sample hot loop never re-evaluates `exp`.
    tail_limit: f64,
    /// Knuth limit `exp(-CHUNK)` for the full chunks.
    chunk_limit: f64,
}

impl Poisson {
    /// Largest rate handled by a single Knuth product loop: `exp(-CHUNK)`
    /// must stay a normal f64 (`exp(-500) ≈ 7e-218`).
    const CHUNK: f64 = 500.0;

    /// A Poisson with the given event rate.
    /// Returns `None` unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Option<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return None;
        }
        // Poisson(a + b) = Poisson(a) + Poisson(b): split large rates into
        // chunks each safely representable by the product method. The
        // remaining rate is reduced by *repeated subtraction* (not one
        // multiply) so samples stay bit-identical to the historical
        // per-sample chunking loop.
        let mut remaining = lambda;
        let mut chunks = 0u32;
        while remaining > Poisson::CHUNK {
            chunks += 1;
            remaining -= Poisson::CHUNK;
        }
        Some(Poisson {
            lambda,
            chunks,
            tail_limit: (-remaining).exp(),
            chunk_limit: (-Poisson::CHUNK).exp(),
        })
    }

    /// Knuth's method for one rate chunk: count uniforms whose running
    /// product stays above the chunk's precomputed `exp(-rate)` limit.
    #[inline]
    fn knuth<R: Rng64 + ?Sized>(limit: f64, rng: &mut R) -> u64 {
        let mut product = 1.0;
        let mut count = 0u64;
        loop {
            product *= rng.next_f64();
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }

    /// [`Distribution::sample`], monomorphic over the rng type.
    #[inline]
    pub fn sample_with<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut total = 0u64;
        for _ in 0..self.chunks {
            total += Poisson::knuth(self.chunk_limit, rng);
        }
        total += Poisson::knuth(self.tail_limit, rng);
        total as f64
    }
}

impl Distribution for Poisson {
    fn sample(&self, rng: &mut dyn Rng64) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

/// Triangular on `[min, max]` with the given mode.
///
/// Stream discipline: exactly **one** uniform draw per sample (inverse CDF).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    min: f64,
    mode: f64,
    max: f64,
}

impl Triangular {
    /// A triangle satisfying `min <= mode <= max` with `min < max`.
    /// Returns `None` otherwise (or on non-finite corners).
    pub fn new(min: f64, mode: f64, max: f64) -> Option<Self> {
        let finite = min.is_finite() && mode.is_finite() && max.is_finite();
        (finite && min <= mode && mode <= max && min < max).then_some(Triangular { min, mode, max })
    }

    /// [`Distribution::sample`], monomorphic over the rng type.
    #[inline]
    pub fn sample_with<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        let (a, c, b) = (self.min, self.mode, self.max);
        let u = rng.next_f64();
        let pivot = (c - a) / (b - a);
        if u < pivot {
            a + (u * (b - a) * (c - a)).sqrt()
        } else {
            b - ((1.0 - u) * (b - a) * (b - c)).sqrt()
        }
    }
}

impl Distribution for Triangular {
    fn sample(&self, rng: &mut dyn Rng64) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        (self.min + self.mode + self.max) / 3.0
    }

    fn variance(&self) -> f64 {
        let (a, c, b) = (self.min, self.mode, self.max);
        (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn moments(dist: &impl Distribution, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        (mean, var)
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, 0.0).is_none());
        assert!(Normal::new(0.0, -1.0).is_none());
        assert!(Normal::new(f64::NAN, 1.0).is_none());
        assert!(LogNormal::new(0.0, 0.0).is_none());
        assert!(Poisson::new(0.0).is_none());
        assert!(Poisson::new(f64::INFINITY).is_none());
        assert!(
            Triangular::new(0.0, 0.0, 0.0).is_none(),
            "degenerate triangle"
        );
        assert!(Triangular::new(2.0, 1.0, 3.0).is_none(), "mode below min");
        assert!(Triangular::new(0.0, 4.0, 3.0).is_none(), "mode above max");
    }

    #[test]
    fn normal_moments_match_closed_form() {
        let d = Normal::new(12.0, 3.0).unwrap();
        assert_eq!(d.mean(), 12.0);
        assert_eq!(d.variance(), 9.0);
        assert_eq!(d.std_dev(), 3.0);
        let (m, v) = moments(&d, 1, 200_000);
        assert!((m - 12.0).abs() < 0.05, "sample mean {m}");
        assert!((v - 9.0).abs() < 0.15, "sample variance {v}");
    }

    #[test]
    fn normal_consumes_exactly_two_draws() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = Xoshiro256StarStar::seed_from_u64(5);
        let _ = d.sample(&mut a);
        b.next_u64();
        b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64(), "sampling must consume two u64s");
    }

    #[test]
    fn lognormal_moments_match_closed_form() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let exact_mean = (1.0f64 + 0.125).exp();
        assert!((d.mean() - exact_mean).abs() < 1e-12);
        assert!((d.median() - 1.0f64.exp()).abs() < 1e-12);
        let (m, v) = moments(&d, 2, 400_000);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.01,
            "sample mean {m} vs {}",
            d.mean()
        );
        assert!(
            (v - d.variance()).abs() / d.variance() < 0.08,
            "sample var {v}"
        );
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(-2.0, 1.5).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn poisson_moments_match_closed_form() {
        for lambda in [0.4, 3.0, 25.0] {
            let d = Poisson::new(lambda).unwrap();
            let (m, v) = moments(&d, 7, 100_000);
            assert!(
                (m - lambda).abs() < 0.05 * (1.0 + lambda),
                "λ={lambda}: mean {m}"
            );
            assert!(
                (v - lambda).abs() < 0.08 * (1.0 + lambda),
                "λ={lambda}: var {v}"
            );
        }
    }

    #[test]
    fn poisson_samples_are_integral_counts() {
        let d = Poisson::new(6.5).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0 && x.fract() == 0.0, "{x} is not a count");
        }
    }

    #[test]
    fn poisson_large_rate_uses_chunking() {
        let d = Poisson::new(1_800.0).unwrap();
        let (m, v) = moments(&d, 13, 20_000);
        assert!((m - 1_800.0).abs() < 2.0, "chunked mean {m}");
        assert!((v - 1_800.0).abs() < 60.0, "chunked var {v}");
    }

    #[test]
    fn triangular_moments_and_support() {
        let d = Triangular::new(1.0, 2.0, 5.0).unwrap();
        assert!((d.mean() - 8.0 / 3.0).abs() < 1e-12);
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=5.0).contains(&x), "{x} outside support");
        }
        let (m, v) = moments(&d, 19, 200_000);
        assert!((m - d.mean()).abs() < 0.01, "sample mean {m}");
        assert!((v - d.variance()).abs() < 0.02, "sample var {v}");
    }

    #[test]
    fn triangular_with_mode_at_a_corner() {
        // mode == min and mode == max are valid (right and left triangles)
        let right = Triangular::new(0.0, 0.0, 4.0).unwrap();
        let left = Triangular::new(0.0, 4.0, 4.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        for _ in 0..1_000 {
            assert!((0.0..=4.0).contains(&right.sample(&mut rng)));
            assert!((0.0..=4.0).contains(&left.sample(&mut rng)));
        }
        assert!(right.mean() < left.mean());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
