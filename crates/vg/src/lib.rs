//! # prophet-vg
//!
//! The stochastic substrate of the Fuzzy Prophet reproduction: deterministic
//! pseudo-random number generation, parametric probability distributions, and
//! the **VG-Function** (variable-generation function) framework in the MCDB /
//! PIP tradition the paper builds on.
//!
//! ## Determinism is load-bearing
//!
//! Fuzzy Prophet's fingerprinting technique is defined as
//!
//! > "the fingerprint of a parameterized stochastic function is simply a
//! > sequence of its outputs under a fixed sequence of random inputs (i.e.,
//! > seed of its pseudorandom number generator)" — §2
//!
//! so the *exact* random stream for a given seed must be stable across runs,
//! platforms and library upgrades. For that reason the generators here
//! ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`], [`rng::Pcg32`]) are
//! implemented in-crate from their published reference algorithms rather than
//! delegating to the `rand` crate, whose `StdRng` stream is explicitly *not*
//! stability-guaranteed.
//!
//! ## Layers
//!
//! * [`rng`] — raw generators + the [`rng::SeedSequence`] that defines the
//!   fixed fingerprint seed set,
//! * [`dist`] — parametric distributions with closed-form moments (tested
//!   against their Monte Carlo estimates),
//! * [`function`] — the black-box [`function::VgFunction`] trait, the
//!   [`function::VgRegistry`] catalog, and invocation accounting used to
//!   *measure* the work fingerprints save,
//! * [`seeded`] — the deterministic (world, function, step) → seed mapping.

pub mod dist;
pub mod function;
pub mod rng;
pub mod seeded;

pub use dist::Distribution;
pub use function::{
    extract_scalar_cell, BatchSamples, InvocationStats, VgCall, VgCallF64, VgFunction, VgRegistry,
};
pub use rng::{Rng64, SeedSequence, SplitMix64, Xoshiro256StarStar};
pub use seeded::SeedManager;
