//! Seeded-inversion fixture: `inverted` acquires `LOW` (rank 10) while
//! holding `HIGH` (rank 90). The analyzer must report exactly one
//! lock-order finding, on the `self.low.lock()` line.

pub const LOW: LockRank = LockRank::new(10, "fixture low");
pub const HIGH: LockRank = LockRank::new(90, "fixture high");

pub struct Pair {
    low: OrderedMutex<u32>,
    high: OrderedMutex<u32>,
}

impl Pair {
    pub fn fresh() -> Self {
        Pair {
            low: OrderedMutex::new(LOW, 0),
            high: OrderedMutex::new(HIGH, 0),
        }
    }

    /// Legal nesting: ascending ranks.
    pub fn ascending(&self) -> u32 {
        let g = self.low.lock();
        let h = self.high.lock();
        *g + *h
    }

    /// The seeded bug: descending acquisition.
    pub fn inverted(&self) -> u32 {
        let h = self.high.lock();
        let g = self.low.lock(); // line 31: the one expected finding
        *h + *g
    }
}
