//! Drifted-rank-table fixture: the docs block below says rank 11, the
//! source says 10. The analyzer must report exactly one rank-table
//! drift finding inside `docs/CONCURRENCY.md`.

pub const ONLY: LockRank = LockRank::new(10, "fixture only");
