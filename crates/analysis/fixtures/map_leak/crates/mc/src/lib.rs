//! Unsorted-map-leak fixture: `listing` publishes `HashMap` key order
//! without sorting. The analyzer must report exactly one map-iter
//! finding, on the `.keys()` line.

use std::collections::HashMap;

/// Deterministic: the collected keys are sorted in the next statement.
pub fn sorted_listing(m: &HashMap<String, u64>) -> Vec<String> {
    let mut names: Vec<String> = m.keys().cloned().collect();
    names.sort();
    names
}

/// The seeded leak: hash order escapes into the result.
pub fn listing(m: &HashMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect() // line 16: the one expected finding
}
