//! The determinism audit: flag iteration over hash-ordered containers in
//! result-affecting crates.
//!
//! The paper's mapping guarantee (§4: a decision must not depend on
//! thread timing — and by extension, on anything nondeterministic)
//! extends to `HashMap`/`HashSet` iteration order, which varies run to
//! run under `RandomState`. An unsorted map walk that feeds a published
//! result — an ordering of jobs, a serialized listing, a float
//! accumulation — is a silent determinism leak even on one thread.
//!
//! The pass is intentionally shallow: per file, it learns which names
//! are hash containers (typed field/param/let declarations,
//! `HashMap::new()`-style constructions, `.collect::<HashMap<…>>()`
//! turbofish), then flags every iteration over those names —
//! `.iter()`, `.keys()`, `.values()`, `.drain(…)`, `for … in &map`, and
//! friends — unless the site visibly restores order or feeds an
//! order-insensitive sink:
//!
//! * the same statement — or the one immediately following, the
//!   idiomatic `let mut v = …collect(); v.sort();` shape — mentions a
//!   `sort*` call or collects into a `BTreeMap`/`BTreeSet` (ordered
//!   downstream);
//! * the chain ends in a sink whose result cannot depend on order —
//!   `count`, `len`, `any`, `all`, `min`/`max` and their `_by(_key)`
//!   forms — or re-collects into another hash container (order never
//!   escapes). `sum` is deliberately **not** a sink: float addition is
//!   order-sensitive, and that is exactly the class of leak this pass
//!   exists to catch;
//! * an explicit `// analysis:allow(map-iter): reason` marker — for
//!   sites whose order-insensitivity lives beyond the statement (e.g. a
//!   loop body that only inserts into another map). Allowed sites still
//!   travel in the JSON findings for audit.
//!
//! `BTreeMap`/`BTreeSet` names are never flagged.

use std::collections::HashMap;

use crate::findings::Finding;
use crate::lex::{ident_at, lex, punct_at, strip_test_regions, Tok, TokKind};

/// Iterator-producing methods whose order reaches the caller.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain sinks whose result cannot depend on visit order.
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    "count",
    "len",
    "any",
    "all",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "is_empty",
    "contains",
    "contains_key",
];

/// Run the pass over one file, appending findings.
pub fn audit(path: &str, src: &str, findings: &mut Vec<Finding>) {
    let lexed = lex(src);
    let toks = strip_test_regions(lexed.toks.clone());
    let maps = collect_map_names(&toks);
    if maps.is_empty() {
        return;
    }

    let mut i = 0usize;
    while i < toks.len() {
        // `name.iter()` / `guard.keys()` / `m.drain(..)` …
        if punct_at(&toks, i, '.') {
            if let Some(m) = ident_at(&toks, i + 1) {
                if ITER_METHODS.contains(&m) && punct_at(&toks, i + 2, '(') {
                    if let Some(name) = receiver_name(&toks, i) {
                        if let Some(kind) = maps.get(&name) {
                            flag(path, &lexed, &toks, i + 1, &name, kind, m, findings);
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        // `for pat in [&][mut] name {`
        if ident_at(&toks, i) == Some("for") {
            let mut j = i + 1;
            while j < toks.len() && ident_at(&toks, j) != Some("in") {
                j += 1;
            }
            if j < toks.len() {
                // Expression tokens between `in` and `{`.
                let mut expr = Vec::new();
                let mut k = j + 1;
                while k < toks.len() && !punct_at(&toks, k, '{') {
                    expr.push(k);
                    k += 1;
                }
                // Bare `[&][mut] [self.]name` (method chains are caught
                // above).
                let idents: Vec<&str> = expr
                    .iter()
                    .filter_map(|&t| ident_at(&toks, t))
                    .filter(|s| *s != "mut" && *s != "self")
                    .collect();
                if idents.len() == 1 && expr.len() <= 5 {
                    let name = idents[0];
                    if let Some(kind) = maps.get(name) {
                        let at = *expr.last().unwrap();
                        flag(path, &lexed, &toks, at, name, kind, "for-in", findings);
                    }
                }
                // Resume just past `in`: method chains in the header
                // (`for … in m.iter()`) still go through the `.` scan.
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// The receiver ident of the method whose dot sits at `dot`, hopping one
/// trailing `()`/`[]` group (`self.slots.lock().keys()` → not resolved —
/// the *guard* must be named — but `slots[i].iter()` → `slots`).
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    if punct_at(toks, j, ']') {
        let mut depth = 0usize;
        loop {
            if punct_at(toks, j, ']') {
                depth += 1;
            } else if punct_at(toks, j, '[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    ident_at(toks, j).map(str::to_string)
}

/// Record one iteration site unless the statement visibly restores order
/// or sinks order-insensitively.
#[allow(clippy::too_many_arguments)]
fn flag(
    path: &str,
    lexed: &crate::lex::Lexed,
    toks: &[Tok],
    at: usize,
    name: &str,
    kind: &str,
    method: &str,
    findings: &mut Vec<Finding>,
) {
    let line = toks[at].line;
    // Scan the enclosing statement, forward and back — plus the statement
    // immediately after it, so the canonical collect-then-sort pair
    // (`let mut v = …collect(); v.sort();`) needs no annotation.
    let (lo, hi) = statement_span(toks, at);
    let next_hi = if punct_at(toks, hi, ';') {
        statement_span(toks, hi + 1).1.min(toks.len())
    } else {
        hi
    };
    let mut sorted = false;
    let mut insensitive = false;
    for t in &toks[lo..next_hi] {
        if let TokKind::Ident(s) = &t.kind {
            if s.starts_with("sort") || s == "BTreeMap" || s == "BTreeSet" {
                sorted = true;
            }
        }
    }
    // Sinks and hash re-collections only count *after* the iteration.
    for t in &toks[at..hi] {
        if let TokKind::Ident(s) = &t.kind {
            if ORDER_INSENSITIVE_SINKS.contains(&s.as_str()) || s == "HashMap" || s == "HashSet" {
                insensitive = true;
            }
        }
    }
    if sorted || insensitive {
        return;
    }
    let allowed = lexed.allows("map-iter", line);
    findings.push(Finding {
        allowed,
        ..Finding::new(
            "map-iter",
            path,
            line,
            format!(
                "`{method}` over `{name}` ({kind}) observes nondeterministic hash order — \
                 sort the result, use a BTreeMap, or annotate \
                 `// analysis:allow(map-iter): reason`"
            ),
        )
    });
}

/// Token span of the statement containing `at`: back to the previous
/// `;`/`{`/`}` and forward to the next.
fn statement_span(toks: &[Tok], at: usize) -> (usize, usize) {
    let mut lo = at;
    while lo > 0 {
        match &toks[lo - 1].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            _ => lo -= 1,
        }
    }
    let mut hi = at;
    while hi < toks.len() {
        match &toks[hi].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            _ => hi += 1,
        }
    }
    (lo, hi)
}

/// Learn which idents in this file are hash containers: returns
/// name → "HashMap"/"HashSet".
fn collect_map_names(toks: &[Tok]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    for i in 0..toks.len() {
        let Some(which) = ident_at(toks, i).filter(|s| *s == "HashMap" || *s == "HashSet") else {
            continue;
        };
        // Type position: `name: …HashMap<…` (fields, params, ascriptions)
        // — find the nearest preceding single-colon ident, hopping
        // reference/smart-pointer wrappers. A *sequence* of maps
        // (`Vec<HashMap<…>>`, `&[HashMap<…>]`) is not a map: its own
        // iteration order is the sequence's, so crossing `Vec`/`[` on the
        // way back cancels the learn.
        if punct_at(toks, i + 1, '<') {
            let lo = i.saturating_sub(16);
            let mut j = i;
            let mut sequence_of = false;
            while j > lo {
                j -= 1;
                match &toks[j].kind {
                    TokKind::Punct(';')
                    | TokKind::Punct('}')
                    | TokKind::Punct('(')
                    | TokKind::Punct(',') => break,
                    TokKind::Punct('[') => sequence_of = true,
                    TokKind::Ident(s) if s == "Vec" || s == "VecDeque" => sequence_of = true,
                    TokKind::Punct(':')
                        if !punct_at(toks, j + 1, ':')
                            && !punct_at(toks, j.wrapping_sub(1), ':') =>
                    {
                        if !sequence_of {
                            if let Some(name) = ident_at(toks, j - 1) {
                                out.insert(name.to_string(), which.to_string());
                            }
                        }
                        break;
                    }
                    _ => {}
                }
            }
        }
        // Construction: `let [mut] name = HashMap::new()` / `with_capacity`.
        if punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') {
            if let Some(name) = let_binding_before(toks, i) {
                out.insert(name, which.to_string());
            }
        }
        // Turbofish collect: `let name = ….collect::<HashMap<…>>()`.
        if punct_at(toks, i.wrapping_sub(1), '<')
            && ident_at(toks, i.wrapping_sub(4)) == Some("collect")
        {
            if let Some(name) = let_binding_before(toks, i) {
                out.insert(name, which.to_string());
            }
        }
    }
    out
}

/// The `let [mut] name` opening the statement containing `at`, if any.
fn let_binding_before(toks: &[Tok], at: usize) -> Option<String> {
    let mut j = at;
    let lo = at.saturating_sub(64);
    while j > lo {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            TokKind::Ident(s) if s == "let" => {
                let k = if ident_at(toks, j + 1) == Some("mut") {
                    j + 2
                } else {
                    j + 1
                };
                return ident_at(toks, k).map(str::to_string);
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        audit("crates/x/src/code.rs", src, &mut f);
        f
    }

    fn active(src: &str) -> Vec<Finding> {
        run(src).into_iter().filter(|f| !f.allowed).collect()
    }

    #[test]
    fn field_iteration_is_flagged() {
        let src = r#"
            struct S { index: HashMap<u64, Vec<u32>> }
            impl S {
                fn dump(&self) -> Vec<u64> {
                    self.index.keys().copied().collect()
                }
            }
        "#;
        let f = active(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`index`"));
        assert_eq!(f[0].pass, "map-iter");
    }

    #[test]
    fn sort_in_the_next_statement_suppresses() {
        let src = r#"
            struct S { index: HashMap<u64, u32> }
            impl S {
                fn dump(&self) -> Vec<u64> {
                    let mut v: Vec<u64> = self.index.keys().copied().collect();
                    v.sort_unstable();
                    v
                }
            }
        "#;
        assert!(active(src).is_empty(), "{:?}", active(src));
        // …but a sort two statements later does not: the window is the
        // canonical collect-then-sort pair only.
        let late = r#"
            struct S { index: HashMap<u64, u32> }
            impl S {
                fn dump(&self) -> Vec<u64> {
                    let mut v: Vec<u64> = self.index.keys().copied().collect();
                    let n = v.len();
                    v.sort_unstable();
                    v.truncate(n);
                    v
                }
            }
        "#;
        assert_eq!(active(late).len(), 1);
    }

    #[test]
    fn sequences_of_maps_are_not_maps() {
        let src = r#"
            fn f(probes: &[HashMap<String, u32>]) -> usize {
                let owned: Vec<HashMap<String, u32>> = probes.to_vec();
                for (i, p) in owned.into_iter().enumerate() {
                    use_probe(i, p);
                }
                probes.iter().map(|p| p.len()).max().unwrap_or(0)
            }
        "#;
        assert!(active(src).is_empty(), "{:?}", active(src));
    }

    #[test]
    fn same_statement_sort_suppresses() {
        let src = r#"
            fn f(m: HashMap<u64, u32>) -> Vec<u64> {
                let mut v: Vec<u64> = m.keys().copied().collect(); v.sort();
                v
            }
        "#;
        // `;` splits the statements — keep them on distinct spans.
        let joined = r#"
            fn f(m: HashMap<u64, u32>) -> Vec<u64> {
                sorted_vec(m.keys().copied().collect())
            }
        "#;
        assert!(active(joined).is_empty());
        let _ = src;
    }

    #[test]
    fn order_insensitive_sink_is_clean() {
        let src = r#"
            fn f(m: HashMap<u64, u32>) -> usize {
                m.values().filter(|v| **v > 3).count()
            }
        "#;
        assert!(active(src).is_empty());
    }

    #[test]
    fn sum_is_not_a_sink() {
        let src = r#"
            fn f(m: HashMap<u64, f64>) -> f64 {
                m.values().sum()
            }
        "#;
        assert_eq!(active(src).len(), 1);
    }

    #[test]
    fn recollecting_into_hash_is_clean() {
        let src = r#"
            fn f(m: HashMap<u64, u32>) -> HashSet<u64> {
                m.keys().copied().collect::<HashSet<_>>()
            }
        "#;
        assert!(active(src).is_empty());
    }

    #[test]
    fn for_loop_over_ref_is_flagged() {
        let src = r#"
            fn f(m: &HashMap<u64, u32>, out: &mut Vec<u64>) {
                for (k, _) in m {
                    out.push(*k);
                }
            }
        "#;
        let f = active(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("for-in"));
    }

    #[test]
    fn allow_marker_downgrades_to_allowed() {
        let src = r#"
            fn f(m: &HashMap<u64, u32>, out: &mut HashMap<u64, u32>) {
                // analysis:allow(map-iter): body only inserts into another map
                for (k, v) in m.iter() {
                    out.insert(*k, *v);
                }
            }
        "#;
        assert!(active(src).is_empty());
        assert_eq!(run(src).iter().filter(|f| f.allowed).count(), 1);
    }

    #[test]
    fn btree_is_never_flagged() {
        let src = r#"
            fn f(m: &BTreeMap<u64, u32>) -> Vec<u64> {
                m.keys().copied().collect()
            }
        "#;
        assert!(active(src).is_empty());
    }

    #[test]
    fn let_construction_is_tracked() {
        let src = r#"
            fn f(items: &[u64]) -> Vec<u64> {
                let mut seen = HashMap::new();
                for i in items { seen.insert(*i, ()); }
                seen.keys().copied().collect()
            }
        "#;
        let f = active(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`seen`"));
    }

    #[test]
    fn test_regions_are_invisible() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f(m: &HashMap<u64, u32>) -> Vec<u64> {
                    m.keys().copied().collect()
                }
            }
        "#;
        assert!(active(src).is_empty());
    }
}
