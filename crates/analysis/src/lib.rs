//! Token-level concurrency-conformance lint over the workspace source.
//!
//! `cargo run -p analysis --` walks every `.rs` file under `crates/*/src`
//! and `src/`, tokenizes it with the same hand-rolled discipline as
//! `prophet-sql`'s lexer (comments, strings — cooked, raw, byte — char
//! literals and lifetimes are all handled, so a forbidden pattern inside
//! a string never fires), strips `#[cfg(test)]` / `#[test]` regions, and
//! checks five rules:
//!
//! | rule | forbids | except in |
//! |------|---------|-----------|
//! | `thread-spawn` | `thread::spawn` / `thread::scope` | `scheduler.rs`, `executor.rs` |
//! | `raw-sync` | raw `Mutex`/`RwLock`/`Condvar` construction | `sync.rs` (the instrumented module) |
//! | `unwrap` | `.unwrap()` / `.expect("…")` in `crates/core`, `crates/fingerprint` | messages containing `invariant` |
//! | `wall-clock` | `Instant::now()` / `SystemTime` | `metrics.rs`, `trace.rs`, `crates/bench` |
//! | `typed-kernel` | `Value` inside the typed-kernel module (`crates/sql/src/column.rs`); `std::simd` / `unsafe` anywhere else | `crates/sql/src/simd.rs` (the simd-gated kernel file) |
//!
//! Two escape hatches, both explicit and reviewable:
//!
//! * an inline `// lint:allow(rule): reason` comment suppresses the rule
//!   on its own line and on the next line that carries code (so a marker
//!   can sit at the end of a multi-line explanatory comment);
//! * a checked-in allowlist file (`lint-allow.txt`) grants a rule for a
//!   whole file. Entries that no longer suppress anything are **stale**
//!   and fail the run, so grants cannot outlive the code they excused.
//!
//! The `unwrap` rule only fires on `.expect(` when the first argument is
//! a string literal: `Result::expect` takes a message, whereas the
//! domain methods named `expect` (Monte Carlo expectation on `SampleSet`
//! and `Engine`) take a column expression — a token-level pass can tell
//! those apart by the argument's shape.

use std::collections::{HashMap, HashSet};
use std::fmt;

// ---------------------------------------------------------------- rules

/// The five conformance rules. See the module docs for the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    ThreadSpawn,
    RawSync,
    Unwrap,
    WallClock,
    /// The typed-columnar boundary (`crates/sql`): the kernel module
    /// (`column.rs`) must never name `Value` — typed kernels see only
    /// primitive slices — and `std::simd` / `unsafe` may appear only in
    /// the feature-gated `simd.rs` kernel file.
    TypedKernel,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::ThreadSpawn,
        Rule::RawSync,
        Rule::Unwrap,
        Rule::WallClock,
        Rule::TypedKernel,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::ThreadSpawn => "thread-spawn",
            Rule::RawSync => "raw-sync",
            Rule::Unwrap => "unwrap",
            Rule::WallClock => "wall-clock",
            Rule::TypedKernel => "typed-kernel",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether `path` (workspace-relative, `/`-separated) is exempt from
    /// this rule wholesale.
    fn exempt_file(self, path: &str) -> bool {
        let base = path.rsplit('/').next().unwrap_or(path);
        match self {
            Rule::ThreadSpawn => base == "scheduler.rs" || base == "executor.rs",
            Rule::RawSync => base == "sync.rs",
            // Scoped *in*: the burndown applies to the engine and the
            // fingerprint layer; other crates are out of scope.
            Rule::Unwrap => {
                !(path.starts_with("crates/core/src") || path.starts_with("crates/fingerprint/src"))
            }
            // `trace.rs` is the flight recorder's clock shim (`TraceClock`):
            // the one additional sanctioned `Instant` reading, pinned so
            // trace timestamps cannot leak into deterministic code paths.
            Rule::WallClock => {
                base == "metrics.rs" || base == "trace.rs" || path.starts_with("crates/bench/")
            }
            // Scoping is pattern-specific (the `Value` check applies *only*
            // inside the kernel module, the `std::simd`/`unsafe` checks
            // everywhere outside `simd.rs`), so `scan_rules` decides per
            // violation and nothing is exempt wholesale here.
            Rule::TypedKernel => false,
        }
    }
}

/// The typed-kernel module: straight-line kernels over primitive slices,
/// forbidden from naming `Value`.
const TYPED_KERNEL_MODULE: &str = "crates/sql/src/column.rs";

/// The only file allowed to use `std::simd` (and `unsafe`, should a
/// kernel ever need it): the feature-gated explicit-SIMD twin of the
/// kernel module.
const SIMD_KERNEL_FILE: &str = "crates/sql/src/simd.rs";

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule.name(), self.message)
    }
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum TokKind {
    Ident(String),
    /// A string literal's raw contents (escapes unprocessed).
    Str(String),
    Punct(char),
    /// Numbers, char literals, lifetimes: present so adjacency checks
    /// see real neighbours, otherwise inert.
    Other,
}

#[derive(Debug, Clone, PartialEq)]
struct Tok {
    kind: TokKind,
    line: usize,
}

/// Lexer output: the token stream plus, per rule, the set of lines an
/// inline `lint:allow` marker covers.
struct Lexed {
    toks: Vec<Tok>,
    allowed: HashMap<Rule, HashSet<usize>>,
}

fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut toks = Vec::new();
    let mut allowed: HashMap<Rule, HashSet<usize>> = HashMap::new();
    // Allows whose "next code line" hasn't been seen yet.
    let mut pending: Vec<Rule> = Vec::new();

    macro_rules! bump {
        () => {{
            if bytes[pos] == b'\n' {
                line += 1;
            }
            pos += 1;
        }};
    }

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' | b' ' | b'\t' | b'\r' => bump!(),
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                let start = pos;
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                let comment = &src[start..pos];
                if let Some(idx) = comment.find("lint:allow(") {
                    let rest = &comment[idx + "lint:allow(".len()..];
                    if let Some(end) = rest.find(')') {
                        if let Some(rule) = Rule::from_name(rest[..end].trim()) {
                            allowed.entry(rule).or_default().insert(line);
                            pending.push(rule);
                        }
                    }
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                bump!();
                bump!();
                while pos < bytes.len() && depth > 0 {
                    if bytes[pos] == b'/' && bytes.get(pos + 1) == Some(&b'*') {
                        depth += 1;
                        bump!();
                    } else if bytes[pos] == b'*' && bytes.get(pos + 1) == Some(&b'/') {
                        depth -= 1;
                        bump!();
                    }
                    bump!();
                }
            }
            b'"' => {
                let s = lex_cooked_string(bytes, &mut pos, &mut line);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Str(s), line);
            }
            b'r' | b'b' if raw_string_hashes(bytes, pos).is_some() => {
                let (prefix, hashes) = raw_string_hashes(bytes, pos).unwrap();
                pos += prefix; // consume r / br / rb prefix and the hashes
                let s = lex_raw_string(bytes, &mut pos, &mut line, hashes);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Str(s), line);
            }
            b'b' if bytes.get(pos + 1) == Some(&b'"') => {
                pos += 1;
                let s = lex_cooked_string(bytes, &mut pos, &mut line);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Str(s), line);
            }
            b'\'' => {
                lex_quote(bytes, &mut pos, &mut line);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Other, line);
            }
            b'0'..=b'9' => {
                pos += 1;
                while pos < bytes.len() {
                    let c = bytes[pos];
                    let numeric = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit));
                    if !numeric {
                        break;
                    }
                    pos += 1;
                }
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Other, line);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let ident = src[start..pos].to_string();
                push_tok(
                    &mut toks,
                    &mut pending,
                    &mut allowed,
                    TokKind::Ident(ident),
                    line,
                );
            }
            c => {
                bump!();
                if c.is_ascii() {
                    push_tok(
                        &mut toks,
                        &mut pending,
                        &mut allowed,
                        TokKind::Punct(c as char),
                        line,
                    );
                } else {
                    // Non-ASCII outside strings/comments: skip the byte.
                }
            }
        }
    }
    Lexed { toks, allowed }
}

/// Emit a token, attaching any pending inline allows to its line.
fn push_tok(
    toks: &mut Vec<Tok>,
    pending: &mut Vec<Rule>,
    allowed: &mut HashMap<Rule, HashSet<usize>>,
    kind: TokKind,
    line: usize,
) {
    for rule in pending.drain(..) {
        allowed.entry(rule).or_default().insert(line);
    }
    toks.push(Tok { kind, line });
}

/// At `pos` on `"`: consume the literal, returning its raw contents.
fn lex_cooked_string(bytes: &[u8], pos: &mut usize, line: &mut usize) -> String {
    let start = *pos + 1;
    *pos += 1;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'\\' => *pos += 2,
            b'"' => break,
            b'\n' => {
                *line += 1;
                *pos += 1;
            }
            _ => *pos += 1,
        }
    }
    let end = (*pos).min(bytes.len());
    if *pos < bytes.len() {
        *pos += 1; // closing quote
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// If `pos` starts a raw-string prefix (`r"`, `r#"`, `br"`, `br#"`…),
/// return `(prefix_len_through_opening_quote, hash_count)`.
fn raw_string_hashes(bytes: &[u8], pos: usize) -> Option<(usize, usize)> {
    let mut i = pos;
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        Some((i + 1 - pos, hashes))
    } else {
        None
    }
}

/// `pos` just past the opening quote: consume to `"` + `hashes` hashes.
fn lex_raw_string(bytes: &[u8], pos: &mut usize, line: &mut usize, hashes: usize) -> String {
    let start = *pos;
    while *pos < bytes.len() {
        if bytes[*pos] == b'\n' {
            *line += 1;
        }
        if bytes[*pos] == b'"' {
            let tail = &bytes[*pos + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                let content = String::from_utf8_lossy(&bytes[start..*pos]).into_owned();
                *pos += 1 + hashes;
                return content;
            }
        }
        *pos += 1;
    }
    String::from_utf8_lossy(&bytes[start..]).into_owned()
}

/// At `'`: char literal or lifetime — consume either.
fn lex_quote(bytes: &[u8], pos: &mut usize, line: &mut usize) {
    let next = bytes.get(*pos + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: scan to the closing quote.
            *pos += 2;
            while *pos < bytes.len() && bytes[*pos] != b'\'' {
                if bytes[*pos] == b'\\' {
                    *pos += 1;
                }
                *pos += 1;
            }
            *pos += 1;
        }
        Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
            if bytes.get(*pos + 2) == Some(&b'\'') {
                *pos += 3; // 'x'
            } else {
                // Lifetime: consume the ident, no closing quote.
                *pos += 2;
                while *pos < bytes.len()
                    && (bytes[*pos].is_ascii_alphanumeric() || bytes[*pos] == b'_')
                {
                    *pos += 1;
                }
            }
        }
        _ => {
            // `'('`-style literal (possibly multibyte): bounded scan.
            let limit = (*pos + 8).min(bytes.len());
            *pos += 1;
            while *pos < limit && bytes[*pos] != b'\'' {
                if bytes[*pos] == b'\n' {
                    *line += 1;
                }
                *pos += 1;
            }
            *pos += 1;
        }
    }
}

// ------------------------------------------------- test-region stripping

/// Drop tokens inside `#[cfg(test)]` / `#[test]` items (and everything,
/// if the file opens with `#![cfg(test)]`).
fn strip_test_regions(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct('#') {
            if let Some((idents, inner, j)) = parse_attr(&toks, i) {
                let testish = idents.first().map(String::as_str) == Some("test")
                    || (idents.first().map(String::as_str) == Some("cfg")
                        && idents.iter().any(|s| s == "test"));
                if testish && inner {
                    return out; // `#![cfg(test)]`: the whole file is test code
                }
                if testish {
                    i = skip_item(&toks, j);
                    continue;
                }
                out.extend_from_slice(&toks[i..j]);
                i = j;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Parse an attribute at `i` (`#` or `#!` then `[...]`), returning its
/// identifiers, whether it was an inner attribute, and the index past it.
fn parse_attr(toks: &[Tok], i: usize) -> Option<(Vec<String>, bool, usize)> {
    let mut j = i + 1;
    let inner = toks.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('!'));
    if inner {
        j += 1;
    }
    if toks.get(j).map(|t| &t.kind) != Some(&TokKind::Punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut idents = Vec::new();
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((idents, inner, j + 1));
                }
            }
            TokKind::Ident(name) => idents.push(name.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

/// From `i` (just past a test-ish attribute), consume any further
/// attributes and then one item: through its matching `{…}` or to `;`.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('#') => {
                if let Some((_, _, j)) = parse_attr(toks, i) {
                    i = j;
                } else {
                    i += 1;
                }
            }
            TokKind::Punct('{') => {
                let mut depth = 0usize;
                while i < toks.len() {
                    match &toks[i].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            TokKind::Punct(';') => return i + 1,
            _ => i += 1,
        }
    }
    i
}

// ----------------------------------------------------------- rule scan

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(c))
}

/// `toks[i]` follows a `::` path segment whose head is `head`.
fn pathed_from(toks: &[Tok], i: usize, head: &str) -> bool {
    i >= 3
        && punct_at(toks, i - 1, ':')
        && punct_at(toks, i - 2, ':')
        && ident_at(toks, i - 3) == Some(head)
}

fn scan_rules(path: &str, toks: &[Tok]) -> Vec<Violation> {
    let mut found = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        let line = toks[i].line;
        match name {
            "spawn" | "scope" if pathed_from(toks, i, "thread") => {
                found.push(Violation {
                    rule: Rule::ThreadSpawn,
                    line,
                    message: format!(
                        "`thread::{name}` outside scheduler.rs/executor.rs — route work \
                         through the scheduler's pool"
                    ),
                });
            }
            "Mutex" | "RwLock" | "Condvar"
                if (ident_at(toks, i + 3) == Some("new")
                    || ident_at(toks, i + 3) == Some("default"))
                    && punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':') =>
            {
                found.push(Violation {
                    rule: Rule::RawSync,
                    line,
                    message: format!(
                        "raw `{name}` construction outside the instrumented sync module — \
                         use the rank-ordered wrapper from `sync`"
                    ),
                });
            }
            "unwrap" if i >= 1 && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(') => {
                found.push(Violation {
                    rule: Rule::Unwrap,
                    line,
                    message: "`.unwrap()` in non-test engine code — return a typed \
                              ProphetError or `.expect(\"invariant: …\")`"
                        .into(),
                });
            }
            "expect" if i >= 1 && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(') => {
                // Only `Result::expect`-shaped calls: first argument is a
                // string literal. `SampleSet::expect(column)` is a domain
                // method and passes an expression.
                if let Some(TokKind::Str(msg)) = toks.get(i + 2).map(|t| &t.kind) {
                    if !msg.contains("invariant") {
                        found.push(Violation {
                            rule: Rule::Unwrap,
                            line,
                            message: format!(
                                "`.expect({msg:?})` in non-test engine code — either return \
                                 a typed ProphetError or state the invariant in the message"
                            ),
                        });
                    }
                }
            }
            "now" if pathed_from(toks, i, "Instant") => {
                found.push(Violation {
                    rule: Rule::WallClock,
                    line,
                    message: "`Instant::now()` outside metrics.rs/trace.rs/bench — time through \
                              `metrics::Stopwatch` or the trace clock"
                        .into(),
                });
            }
            "SystemTime" => {
                found.push(Violation {
                    rule: Rule::WallClock,
                    line,
                    message: "`SystemTime` outside metrics.rs/trace.rs/bench — wall-clock reads \
                              belong to the metrics or trace layer"
                        .into(),
                });
            }
            "Value" if path == TYPED_KERNEL_MODULE => {
                found.push(Violation {
                    rule: Rule::TypedKernel,
                    line,
                    message: "`Value` inside the typed-kernel module — kernels operate on \
                              primitive slices; boxing belongs to `columnar.rs`"
                        .into(),
                });
            }
            "simd" if pathed_from(toks, i, "std") && path != SIMD_KERNEL_FILE => {
                found.push(Violation {
                    rule: Rule::TypedKernel,
                    line,
                    message: "`std::simd` outside the feature-gated kernel file — explicit \
                              SIMD lives in crates/sql/src/simd.rs only"
                        .into(),
                });
            }
            "unsafe" if path != SIMD_KERNEL_FILE => {
                found.push(Violation {
                    rule: Rule::TypedKernel,
                    line,
                    message: "`unsafe` outside the feature-gated kernel file — the typed \
                              tier is safe Rust; justify any exception in simd.rs"
                        .into(),
                });
            }
            _ => {}
        }
    }
    found.retain(|v| !v.rule.exempt_file(path));
    found
}

/// Lint one file's source. `path` is workspace-relative with `/`
/// separators; it drives per-rule file scoping.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let Lexed { toks, allowed } = lex(src);
    let toks = strip_test_regions(toks);
    scan_rules(path, &toks)
        .into_iter()
        .filter(|v| {
            !allowed
                .get(&v.rule)
                .is_some_and(|lines| lines.contains(&v.line))
        })
        .collect()
}

// ----------------------------------------------------------- allowlist

/// One checked-in file-level grant: `rule path [reason…]`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub used: bool,
}

/// The checked-in allowlist (`lint-allow.txt`).
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist format: one `rule path [reason…]` per line,
    /// `#` comments and blank lines ignored. Unknown rule names are
    /// errors — a typo must not silently grant nothing.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let rule_name = parts.next().unwrap_or_default();
            let rule = Rule::from_name(rule_name).ok_or_else(|| {
                format!(
                    "lint-allow.txt:{}: unknown rule `{}` (expected one of {})",
                    idx + 1,
                    rule_name,
                    Rule::ALL.map(Rule::name).join(", ")
                )
            })?;
            let path = parts
                .next()
                .ok_or_else(|| format!("lint-allow.txt:{}: missing path after rule", idx + 1))?;
            entries.push(AllowEntry {
                rule,
                path: path.to_string(),
                line: idx + 1,
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Whether this violation is granted; marks the entry used.
    pub fn allows(&mut self, path: &str, v: &Violation) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == v.rule && e.path == path {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that suppressed nothing this run: stale grants.
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(path: &str, src: &str) -> Vec<Rule> {
        lint_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    // ---- each rule fires (the lint's own negative tests)

    #[test]
    fn thread_spawn_fires_outside_the_scheduler() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_fired("crates/core/src/service.rs", src),
            [Rule::ThreadSpawn]
        );
        let src = "fn f() { std::thread::scope(|s| {}); }";
        assert_eq!(
            rules_fired("crates/mc/src/store.rs", src),
            [Rule::ThreadSpawn]
        );
    }

    #[test]
    fn thread_spawn_is_allowed_in_scheduler_and_executor() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/core/src/scheduler.rs", src).is_empty());
        assert!(rules_fired("crates/core/src/executor.rs", src).is_empty());
    }

    #[test]
    fn raw_sync_construction_fires_outside_sync_module() {
        let src = "fn f() { let m = std::sync::Mutex::new(0); }";
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", src),
            [Rule::RawSync]
        );
        let src = "fn f() { let c = Condvar::new(); }";
        assert_eq!(rules_fired("crates/core/src/job.rs", src), [Rule::RawSync]);
        let src = "fn f() { let l: RwLock<u8> = RwLock::default(); }";
        assert_eq!(
            rules_fired("crates/fingerprint/src/basis.rs", src),
            [Rule::RawSync]
        );
    }

    #[test]
    fn raw_sync_is_allowed_in_the_sync_module() {
        let src = "fn f() { let m = Mutex::new(0); }";
        assert!(rules_fired("crates/mc/src/sync.rs", src).is_empty());
    }

    #[test]
    fn ordered_wrappers_do_not_fire_raw_sync() {
        let src = "fn f(r: LockRank) { let m = OrderedMutex::new(r, 0); }";
        assert!(rules_fired("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn unwrap_fires_in_core_and_fingerprint_only() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(
            rules_fired("crates/core/src/session.rs", src),
            [Rule::Unwrap]
        );
        assert_eq!(
            rules_fired("crates/fingerprint/src/mapping.rs", src),
            [Rule::Unwrap]
        );
        assert!(rules_fired("crates/sql/src/lexer.rs", src).is_empty());
    }

    #[test]
    fn expect_with_invariant_message_is_permitted() {
        let flagged = r#"fn f(x: Option<u8>) { x.expect("value present"); }"#;
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", flagged),
            [Rule::Unwrap]
        );
        let ok = r#"fn f(x: Option<u8>) { x.expect("invariant: pre-inserted above"); }"#;
        assert!(rules_fired("crates/core/src/engine.rs", ok).is_empty());
    }

    #[test]
    fn domain_expect_methods_are_not_flagged() {
        // `SampleSet::expect(column)`: argument is an expression, not a
        // message literal.
        let src = "fn f(s: &SampleSet, col: &str) { s.expect(col); }";
        assert!(rules_fired("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_metrics_and_bench() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", src),
            [Rule::WallClock]
        );
        assert!(rules_fired("crates/core/src/metrics.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/experiments.rs", src).is_empty());
        let src = "fn f() { let t = SystemTime::now(); }";
        assert_eq!(
            rules_fired("crates/core/src/session.rs", src),
            [Rule::WallClock]
        );
    }

    /// The flight recorder's clock shim is the one extra sanctioned
    /// `Instant` site — and *only* it: the rule must keep firing in every
    /// other scheduler/store/engine file, or trace timestamps could start
    /// leaking into deterministic code paths unnoticed.
    #[test]
    fn wall_clock_exempts_the_trace_clock_shim_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(rules_fired("crates/mc/src/trace.rs", src).is_empty());
        // Negative: the exemption is by basename, not by crate — the rest
        // of `prophet-mc` (and the scheduler next door) still trip it.
        assert_eq!(
            rules_fired("crates/mc/src/store.rs", src),
            [Rule::WallClock]
        );
        assert_eq!(
            rules_fired("crates/core/src/scheduler.rs", src),
            [Rule::WallClock]
        );
        assert_eq!(rules_fired("crates/mc/src/sync.rs", src), [Rule::WallClock]);
    }

    #[test]
    fn typed_kernel_forbids_value_in_the_kernel_module_only() {
        let src = "pub fn from(values: &[Value]) -> Vec<f64> { Vec::new() }";
        assert_eq!(
            rules_fired("crates/sql/src/column.rs", src),
            [Rule::TypedKernel]
        );
        let src = "pub fn build() -> Vec<Value> { Vec::new() }";
        assert_eq!(
            rules_fired("crates/sql/src/column.rs", src),
            [Rule::TypedKernel]
        );
        // Boxing is columnar.rs's job — `Value` is fine there (and anywhere
        // else outside the kernel module).
        assert!(rules_fired("crates/sql/src/columnar.rs", src).is_empty());
        assert!(rules_fired("crates/sql/src/vector.rs", src).is_empty());
    }

    #[test]
    fn typed_kernel_confines_std_simd_and_unsafe_to_the_simd_file() {
        let src = "use std::simd::f64x8;";
        assert_eq!(
            rules_fired("crates/sql/src/column.rs", src),
            [Rule::TypedKernel]
        );
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", src),
            [Rule::TypedKernel]
        );
        assert!(rules_fired("crates/sql/src/simd.rs", src).is_empty());

        let src = "fn f(p: *const f64) -> f64 { unsafe { *p } }";
        assert_eq!(
            rules_fired("crates/sql/src/columnar.rs", src),
            [Rule::TypedKernel]
        );
        assert!(rules_fired("crates/sql/src/simd.rs", src).is_empty());
        // `crate::simd` re-exports and the word in strings stay invisible.
        let src = "pub use crate::simd::add_f64; fn f() { let s = \"std::simd\"; }";
        assert!(rules_fired("crates/sql/src/column.rs", src).is_empty());
    }

    // ---- escape hatches

    #[test]
    fn inline_allow_covers_its_line_and_the_next_code_line() {
        let src = "fn f() { std::thread::spawn(|| {}); } // lint:allow(thread-spawn)";
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
        let src = "// lint:allow(thread-spawn): pool-free by design\n\
                   fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
        // The marker may close a multi-line comment block.
        let src = "// A longer explanation of why this is fine,\n\
                   // spanning lines.\n\
                   // lint:allow(thread-spawn): reasoned above\n\
                   fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_is_rule_specific_and_line_bounded() {
        // Wrong rule: no grant.
        let src = "// lint:allow(unwrap)\nfn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_fired("crates/core/src/service.rs", src),
            [Rule::ThreadSpawn]
        );
        // Two code lines below the marker: the second is not covered.
        let src = "// lint:allow(thread-spawn)\n\
                   fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_fired("crates/core/src/service.rs", src),
            [Rule::ThreadSpawn]
        );
    }

    #[test]
    fn allowlist_grants_per_file_and_tracks_staleness() {
        let mut list =
            Allowlist::parse("# grants\nraw-sync crates/x/src/a.rs  legacy store\n").unwrap();
        let v = Violation {
            rule: Rule::RawSync,
            line: 1,
            message: String::new(),
        };
        assert!(!list.allows("crates/x/src/b.rs", &v));
        assert_eq!(list.stale().len(), 1);
        assert!(list.allows("crates/x/src/a.rs", &v));
        assert!(list.stale().is_empty());
    }

    #[test]
    fn allowlist_rejects_unknown_rules_and_missing_paths() {
        assert!(Allowlist::parse("no-such-rule crates/x.rs").is_err());
        assert!(Allowlist::parse("unwrap").is_err());
    }

    // ---- the lexer does not fire inside non-code regions

    #[test]
    fn strings_comments_and_test_code_are_invisible() {
        let src = r##"
            fn f() {
                let s = "thread::spawn(Instant::now())";
                let r = r#"Mutex::new(".unwrap()")"#;
                // thread::spawn in a comment
                /* SystemTime in a block /* nested */ comment */
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { std::thread::spawn(|| {}).join().unwrap(); }
            }
        "##;
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
    }

    #[test]
    fn test_attribute_skips_only_that_item() {
        let src = "#[test]\n\
                   fn t() { x.unwrap(); }\n\
                   fn live() { y.unwrap(); }";
        let v = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn lifetimes_and_char_literals_do_not_derail_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = '('; 'label: loop { break 'label; } }\n\
                   fn g(o: Option<u8>) { o.unwrap(); }";
        let v = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cfg_test_inner_attribute_skips_the_whole_file() {
        let src = "#![cfg(test)]\nfn helper(o: Option<u8>) { o.unwrap(); }";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }
}
