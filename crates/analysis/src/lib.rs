//! Multi-pass static analyzer for the workspace: the conformance lint,
//! the static lock-order verifier, the determinism audit, and the
//! rank-table extractor. See `docs/ANALYSIS.md` for the architecture.
//!
//! `cargo run -p analysis --` walks every `.rs` file under `crates/*/src`
//! and `src/`, tokenizes it once through [`mod@lex`] (comments, strings —
//! cooked, raw, byte — char literals and lifetimes are all handled, so a
//! forbidden pattern inside a string never fires), strips
//! `#[cfg(test)]` / `#[test]` regions, and runs four passes:
//!
//! * **lint** (this module) — five token-level conformance rules:
//!
//!   | rule | forbids | except in |
//!   |------|---------|-----------|
//!   | `thread-spawn` | `thread::spawn` / `thread::scope` | `scheduler.rs`, `executor.rs` |
//!   | `raw-sync` | raw `Mutex`/`RwLock`/`Condvar` construction | `sync.rs` (the instrumented module) |
//!   | `unwrap` | `.unwrap()` / `.expect("…")` in `crates/core`, `crates/fingerprint`, `crates/mc` | messages containing `invariant` |
//!   | `wall-clock` | `Instant::now()` / `SystemTime` | `metrics.rs`, `trace.rs`, `crates/bench` |
//!   | `typed-kernel` | `Value` inside the typed-kernel module (`crates/sql/src/column.rs`); `std::simd` / `unsafe` anywhere else | `crates/sql/src/simd.rs` (the simd-gated kernel file) |
//!
//! * **lock-order** ([`lockgraph`]) — the inter-procedural may-hold-lock
//!   fixpoint proving the rank discipline over all source paths;
//! * **map-iter** ([`determinism`]) — flags hash-ordered iteration in
//!   result-affecting crates;
//! * **rank-table** ([`ranktable`]) — regenerates the lock-rank table in
//!   `docs/CONCURRENCY.md` from source and fails on drift.
//!
//! Escape hatches, all explicit and reviewable:
//!
//! * an inline `// lint:allow(rule): reason` comment suppresses a lint
//!   rule on its own line and on the next line that carries code (so a
//!   marker can sit at the end of a multi-line explanatory comment);
//! * the analyzer passes use the same grammar spelled
//!   `// analysis:allow(pass): reason`;
//! * a checked-in allowlist file (`lint-allow.txt`) grants a lint rule
//!   for a whole file. Entries that no longer suppress anything are
//!   **stale** and fail the run, so grants cannot outlive the code they
//!   excused.
//!
//! The `unwrap` rule only fires on `.expect(` when the first argument is
//! a string literal: `Result::expect` takes a message, whereas the
//! domain methods named `expect` (Monte Carlo expectation on `SampleSet`
//! and `Engine`) take a column expression — a token-level pass can tell
//! those apart by the argument's shape.

pub mod determinism;
pub mod findings;
pub mod lex;
pub mod lockgraph;
pub mod ranktable;

use std::fmt;

use lex::{ident_at, lex, pathed_from, punct_at, strip_test_regions, Tok, TokKind};

// ---------------------------------------------------------------- rules

/// The five conformance rules. See the module docs for the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    ThreadSpawn,
    RawSync,
    Unwrap,
    WallClock,
    /// The typed-columnar boundary (`crates/sql`): the kernel module
    /// (`column.rs`) must never name `Value` — typed kernels see only
    /// primitive slices — and `std::simd` / `unsafe` may appear only in
    /// the feature-gated `simd.rs` kernel file.
    TypedKernel,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::ThreadSpawn,
        Rule::RawSync,
        Rule::Unwrap,
        Rule::WallClock,
        Rule::TypedKernel,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::ThreadSpawn => "thread-spawn",
            Rule::RawSync => "raw-sync",
            Rule::Unwrap => "unwrap",
            Rule::WallClock => "wall-clock",
            Rule::TypedKernel => "typed-kernel",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether `path` (workspace-relative, `/`-separated) is exempt from
    /// this rule wholesale.
    fn exempt_file(self, path: &str) -> bool {
        let base = path.rsplit('/').next().unwrap_or(path);
        match self {
            Rule::ThreadSpawn => base == "scheduler.rs" || base == "executor.rs",
            Rule::RawSync => base == "sync.rs",
            // Scoped *in*: the burndown applies to the engine, the
            // fingerprint layer, and (since the PR 9 store growth) the
            // Monte Carlo crate; other crates are out of scope.
            Rule::Unwrap => {
                !(path.starts_with("crates/core/src")
                    || path.starts_with("crates/fingerprint/src")
                    || path.starts_with("crates/mc/src"))
            }
            // `trace.rs` is the flight recorder's clock shim (`TraceClock`):
            // the one additional sanctioned `Instant` reading, pinned so
            // trace timestamps cannot leak into deterministic code paths.
            Rule::WallClock => {
                base == "metrics.rs" || base == "trace.rs" || path.starts_with("crates/bench/")
            }
            // Scoping is pattern-specific (the `Value` check applies *only*
            // inside the kernel module, the `std::simd`/`unsafe` checks
            // everywhere outside `simd.rs`), so `scan_rules` decides per
            // violation and nothing is exempt wholesale here.
            Rule::TypedKernel => false,
        }
    }
}

/// The typed-kernel module: straight-line kernels over primitive slices,
/// forbidden from naming `Value`.
const TYPED_KERNEL_MODULE: &str = "crates/sql/src/column.rs";

/// The only file allowed to use `std::simd` (and `unsafe`, should a
/// kernel ever need it): the feature-gated explicit-SIMD twin of the
/// kernel module.
const SIMD_KERNEL_FILE: &str = "crates/sql/src/simd.rs";

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule.name(), self.message)
    }
}

// ----------------------------------------------------------- rule scan

fn scan_rules(path: &str, toks: &[Tok]) -> Vec<Violation> {
    let mut found = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        let line = toks[i].line;
        match name {
            "spawn" | "scope" if pathed_from(toks, i, "thread") => {
                found.push(Violation {
                    rule: Rule::ThreadSpawn,
                    line,
                    message: format!(
                        "`thread::{name}` outside scheduler.rs/executor.rs — route work \
                         through the scheduler's pool"
                    ),
                });
            }
            "Mutex" | "RwLock" | "Condvar"
                if (ident_at(toks, i + 3) == Some("new")
                    || ident_at(toks, i + 3) == Some("default"))
                    && punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':') =>
            {
                found.push(Violation {
                    rule: Rule::RawSync,
                    line,
                    message: format!(
                        "raw `{name}` construction outside the instrumented sync module — \
                         use the rank-ordered wrapper from `sync`"
                    ),
                });
            }
            "unwrap" if i >= 1 && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(') => {
                found.push(Violation {
                    rule: Rule::Unwrap,
                    line,
                    message: "`.unwrap()` in non-test engine code — return a typed \
                              ProphetError or `.expect(\"invariant: …\")`"
                        .into(),
                });
            }
            "expect" if i >= 1 && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(') => {
                // Only `Result::expect`-shaped calls: first argument is a
                // string literal. `SampleSet::expect(column)` is a domain
                // method and passes an expression.
                if let Some(TokKind::Str(msg)) = toks.get(i + 2).map(|t| &t.kind) {
                    if !msg.contains("invariant") {
                        found.push(Violation {
                            rule: Rule::Unwrap,
                            line,
                            message: format!(
                                "`.expect({msg:?})` in non-test engine code — either return \
                                 a typed ProphetError or state the invariant in the message"
                            ),
                        });
                    }
                }
            }
            "now" if pathed_from(toks, i, "Instant") => {
                found.push(Violation {
                    rule: Rule::WallClock,
                    line,
                    message: "`Instant::now()` outside metrics.rs/trace.rs/bench — time through \
                              `metrics::Stopwatch` or the trace clock"
                        .into(),
                });
            }
            "SystemTime" => {
                found.push(Violation {
                    rule: Rule::WallClock,
                    line,
                    message: "`SystemTime` outside metrics.rs/trace.rs/bench — wall-clock reads \
                              belong to the metrics or trace layer"
                        .into(),
                });
            }
            "Value" if path == TYPED_KERNEL_MODULE => {
                found.push(Violation {
                    rule: Rule::TypedKernel,
                    line,
                    message: "`Value` inside the typed-kernel module — kernels operate on \
                              primitive slices; boxing belongs to `columnar.rs`"
                        .into(),
                });
            }
            "simd" if pathed_from(toks, i, "std") && path != SIMD_KERNEL_FILE => {
                found.push(Violation {
                    rule: Rule::TypedKernel,
                    line,
                    message: "`std::simd` outside the feature-gated kernel file — explicit \
                              SIMD lives in crates/sql/src/simd.rs only"
                        .into(),
                });
            }
            "unsafe" if path != SIMD_KERNEL_FILE => {
                found.push(Violation {
                    rule: Rule::TypedKernel,
                    line,
                    message: "`unsafe` outside the feature-gated kernel file — the typed \
                              tier is safe Rust; justify any exception in simd.rs"
                        .into(),
                });
            }
            _ => {}
        }
    }
    found.retain(|v| !v.rule.exempt_file(path));
    found
}

/// Lint one file's source. `path` is workspace-relative with `/`
/// separators; it drives per-rule file scoping.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let toks = strip_test_regions(lexed.toks.clone());
    scan_rules(path, &toks)
        .into_iter()
        .filter(|v| !lexed.allows(v.rule.name(), v.line))
        .collect()
}

// ----------------------------------------------------------- allowlist

/// One checked-in file-level grant: `rule path [reason…]`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub used: bool,
}

/// The checked-in allowlist (`lint-allow.txt`).
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist format: one `rule path [reason…]` per line,
    /// `#` comments and blank lines ignored. Unknown rule names are
    /// errors — a typo must not silently grant nothing.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let rule_name = parts.next().unwrap_or_default();
            let rule = Rule::from_name(rule_name).ok_or_else(|| {
                format!(
                    "lint-allow.txt:{}: unknown rule `{}` (expected one of {})",
                    idx + 1,
                    rule_name,
                    Rule::ALL.map(Rule::name).join(", ")
                )
            })?;
            let path = parts
                .next()
                .ok_or_else(|| format!("lint-allow.txt:{}: missing path after rule", idx + 1))?;
            entries.push(AllowEntry {
                rule,
                path: path.to_string(),
                line: idx + 1,
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Whether this violation is granted; marks the entry used.
    pub fn allows(&mut self, path: &str, v: &Violation) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == v.rule && e.path == path {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that suppressed nothing this run: stale grants.
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(path: &str, src: &str) -> Vec<Rule> {
        lint_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    // ---- each rule fires (the lint's own negative tests)

    #[test]
    fn thread_spawn_fires_outside_the_scheduler() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_fired("crates/core/src/service.rs", src),
            [Rule::ThreadSpawn]
        );
        let src = "fn f() { std::thread::scope(|s| {}); }";
        assert_eq!(
            rules_fired("crates/mc/src/store.rs", src),
            [Rule::ThreadSpawn]
        );
    }

    #[test]
    fn thread_spawn_is_allowed_in_scheduler_and_executor() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/core/src/scheduler.rs", src).is_empty());
        assert!(rules_fired("crates/core/src/executor.rs", src).is_empty());
    }

    #[test]
    fn raw_sync_construction_fires_outside_sync_module() {
        let src = "fn f() { let m = std::sync::Mutex::new(0); }";
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", src),
            [Rule::RawSync]
        );
        let src = "fn f() { let c = Condvar::new(); }";
        assert_eq!(rules_fired("crates/core/src/job.rs", src), [Rule::RawSync]);
        let src = "fn f() { let l: RwLock<u8> = RwLock::default(); }";
        assert_eq!(
            rules_fired("crates/fingerprint/src/basis.rs", src),
            [Rule::RawSync]
        );
    }

    #[test]
    fn raw_sync_is_allowed_in_the_sync_module() {
        let src = "fn f() { let m = Mutex::new(0); }";
        assert!(rules_fired("crates/mc/src/sync.rs", src).is_empty());
    }

    #[test]
    fn ordered_wrappers_do_not_fire_raw_sync() {
        let src = "fn f(r: LockRank) { let m = OrderedMutex::new(r, 0); }";
        assert!(rules_fired("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn unwrap_fires_in_core_fingerprint_and_mc_only() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(
            rules_fired("crates/core/src/session.rs", src),
            [Rule::Unwrap]
        );
        assert_eq!(
            rules_fired("crates/fingerprint/src/mapping.rs", src),
            [Rule::Unwrap]
        );
        // Since the PR 9 store growth, the Monte Carlo crate is in scope
        // of the burndown too.
        assert_eq!(rules_fired("crates/mc/src/store.rs", src), [Rule::Unwrap]);
        assert!(rules_fired("crates/sql/src/lexer.rs", src).is_empty());
    }

    #[test]
    fn expect_with_invariant_message_is_permitted() {
        let flagged = r#"fn f(x: Option<u8>) { x.expect("value present"); }"#;
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", flagged),
            [Rule::Unwrap]
        );
        let ok = r#"fn f(x: Option<u8>) { x.expect("invariant: pre-inserted above"); }"#;
        assert!(rules_fired("crates/core/src/engine.rs", ok).is_empty());
    }

    #[test]
    fn domain_expect_methods_are_not_flagged() {
        // `SampleSet::expect(column)`: argument is an expression, not a
        // message literal.
        let src = "fn f(s: &SampleSet, col: &str) { s.expect(col); }";
        assert!(rules_fired("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_metrics_and_bench() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", src),
            [Rule::WallClock]
        );
        assert!(rules_fired("crates/core/src/metrics.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/experiments.rs", src).is_empty());
        let src = "fn f() { let t = SystemTime::now(); }";
        assert_eq!(
            rules_fired("crates/core/src/session.rs", src),
            [Rule::WallClock]
        );
    }

    /// The flight recorder's clock shim is the one extra sanctioned
    /// `Instant` site — and *only* it: the rule must keep firing in every
    /// other scheduler/store/engine file, or trace timestamps could start
    /// leaking into deterministic code paths unnoticed.
    #[test]
    fn wall_clock_exempts_the_trace_clock_shim_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(rules_fired("crates/mc/src/trace.rs", src).is_empty());
        // Negative: the exemption is by basename, not by crate — the rest
        // of `prophet-mc` (and the scheduler next door) still trip it.
        assert_eq!(
            rules_fired("crates/mc/src/store.rs", src),
            [Rule::WallClock]
        );
        assert_eq!(
            rules_fired("crates/core/src/scheduler.rs", src),
            [Rule::WallClock]
        );
        assert_eq!(rules_fired("crates/mc/src/sync.rs", src), [Rule::WallClock]);
    }

    #[test]
    fn typed_kernel_forbids_value_in_the_kernel_module_only() {
        let src = "pub fn from(values: &[Value]) -> Vec<f64> { Vec::new() }";
        assert_eq!(
            rules_fired("crates/sql/src/column.rs", src),
            [Rule::TypedKernel]
        );
        let src = "pub fn build() -> Vec<Value> { Vec::new() }";
        assert_eq!(
            rules_fired("crates/sql/src/column.rs", src),
            [Rule::TypedKernel]
        );
        // Boxing is columnar.rs's job — `Value` is fine there (and anywhere
        // else outside the kernel module).
        assert!(rules_fired("crates/sql/src/columnar.rs", src).is_empty());
        assert!(rules_fired("crates/sql/src/vector.rs", src).is_empty());
    }

    #[test]
    fn typed_kernel_confines_std_simd_and_unsafe_to_the_simd_file() {
        let src = "use std::simd::f64x8;";
        assert_eq!(
            rules_fired("crates/sql/src/column.rs", src),
            [Rule::TypedKernel]
        );
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", src),
            [Rule::TypedKernel]
        );
        assert!(rules_fired("crates/sql/src/simd.rs", src).is_empty());

        let src = "fn f(p: *const f64) -> f64 { unsafe { *p } }";
        assert_eq!(
            rules_fired("crates/sql/src/columnar.rs", src),
            [Rule::TypedKernel]
        );
        assert!(rules_fired("crates/sql/src/simd.rs", src).is_empty());
        // `crate::simd` re-exports and the word in strings stay invisible.
        let src = "pub use crate::simd::add_f64; fn f() { let s = \"std::simd\"; }";
        assert!(rules_fired("crates/sql/src/column.rs", src).is_empty());
    }

    // ---- escape hatches

    #[test]
    fn inline_allow_covers_its_line_and_the_next_code_line() {
        let src = "fn f() { std::thread::spawn(|| {}); } // lint:allow(thread-spawn)";
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
        let src = "// lint:allow(thread-spawn): pool-free by design\n\
                   fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
        // The marker may close a multi-line comment block.
        let src = "// A longer explanation of why this is fine,\n\
                   // spanning lines.\n\
                   // lint:allow(thread-spawn): reasoned above\n\
                   fn f() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_is_rule_specific_and_line_bounded() {
        // Wrong rule: no grant.
        let src = "// lint:allow(unwrap)\nfn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_fired("crates/core/src/service.rs", src),
            [Rule::ThreadSpawn]
        );
        // Two code lines below the marker: the second is not covered.
        let src = "// lint:allow(thread-spawn)\n\
                   fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_fired("crates/core/src/service.rs", src),
            [Rule::ThreadSpawn]
        );
    }

    #[test]
    fn allowlist_grants_per_file_and_tracks_staleness() {
        let mut list =
            Allowlist::parse("# grants\nraw-sync crates/x/src/a.rs  legacy store\n").unwrap();
        let v = Violation {
            rule: Rule::RawSync,
            line: 1,
            message: String::new(),
        };
        assert!(!list.allows("crates/x/src/b.rs", &v));
        assert_eq!(list.stale().len(), 1);
        assert!(list.allows("crates/x/src/a.rs", &v));
        assert!(list.stale().is_empty());
    }

    #[test]
    fn allowlist_rejects_unknown_rules_and_missing_paths() {
        assert!(Allowlist::parse("no-such-rule crates/x.rs").is_err());
        assert!(Allowlist::parse("unwrap").is_err());
    }

    // ---- the lexer does not fire inside non-code regions

    #[test]
    fn strings_comments_and_test_code_are_invisible() {
        let src = r##"
            fn f() {
                let s = "thread::spawn(Instant::now())";
                let r = r#"Mutex::new(".unwrap()")"#;
                // thread::spawn in a comment
                /* SystemTime in a block /* nested */ comment */
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { std::thread::spawn(|| {}).join().unwrap(); }
            }
        "##;
        assert!(rules_fired("crates/core/src/service.rs", src).is_empty());
    }

    #[test]
    fn test_attribute_skips_only_that_item() {
        let src = "#[test]\n\
                   fn t() { x.unwrap(); }\n\
                   fn live() { y.unwrap(); }";
        let v = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn lifetimes_and_char_literals_do_not_derail_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = '('; 'label: loop { break 'label; } }\n\
                   fn g(o: Option<u8>) { o.unwrap(); }";
        let v = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cfg_test_inner_attribute_skips_the_whole_file() {
        let src = "#![cfg(test)]\nfn helper(o: Option<u8>) { o.unwrap(); }";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }
}
